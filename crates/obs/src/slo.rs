//! Declarative SLO alerting over collected time-series.
//!
//! Rules are evaluated in-process on every collector tick — no
//! external alertmanager, no wall-clock scheduling. Three condition
//! shapes cover the standard monitoring playbook:
//!
//! * [`Condition::Threshold`] — the latest sample is above/below a
//!   bound ("queue depth > 100").
//! * [`Condition::RateOfChange`] — the first-to-last slope over a
//!   window is above/below a per-second bound ("errors climbing
//!   faster than 5/s").
//! * [`Condition::BurnRate`] — multi-window burn rate: the slope over
//!   *both* a long and a short window exceeds `factor ×
//!   budget_per_second`. The long window proves the burn is sustained,
//!   the short window proves it is still happening — the classic
//!   fast-burn page condition, without the flappiness of either window
//!   alone.
//!
//! Each rule walks the usual state machine with since-timestamps:
//! `Inactive → Pending` (condition holds, waiting out
//! [`Rule::for_duration`]) `→ Firing → Resolved` (informational until
//! the next violation). A rule whose selector matches several series
//! (a family name matching every labelled series) fires if **any** of
//! them violates.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::metrics::Gauge;
use crate::series::SeriesStore;
use crate::trace::{fields, TraceId, Tracer};

/// Which side of the bound violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compare {
    /// Violated when the observed value is strictly above the bound.
    Above,
    /// Violated when the observed value is strictly below the bound.
    Below,
}

impl Compare {
    fn violates(self, observed: f64, bound: f64) -> bool {
        match self {
            Compare::Above => observed > bound,
            Compare::Below => observed < bound,
        }
    }
}

/// What a rule checks about its series.
#[derive(Debug, Clone)]
pub enum Condition {
    /// The latest sample versus a fixed bound.
    Threshold {
        /// The bound.
        value: f64,
        /// Which side violates.
        compare: Compare,
    },
    /// The first-to-last slope over `window`, in value units per
    /// second, versus a bound. Needs at least two samples in the
    /// window spanning a non-zero time.
    RateOfChange {
        /// The per-second bound.
        per_second: f64,
        /// How far back to look.
        window: Duration,
        /// Which side violates.
        compare: Compare,
    },
    /// Multi-window burn rate: violated when the per-second rate over
    /// **both** windows exceeds `factor * budget_per_second`.
    BurnRate {
        /// The budgeted per-second rate (e.g. allowed errors/s).
        budget_per_second: f64,
        /// The burn multiplier that pages (e.g. 14.4 for a fast burn).
        factor: f64,
        /// The sustained window.
        long_window: Duration,
        /// The still-happening window.
        short_window: Duration,
    },
}

/// One declarative alerting rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name, surfaced in `/v1/alerts`, the dashboard and traces.
    pub name: String,
    /// Series selector: an exact series key, or a family name matching
    /// every labelled series (`m` matches `m` and `m{worker="w0"}`).
    pub series: String,
    /// The violation condition.
    pub condition: Condition,
    /// How long the condition must hold before Pending becomes Firing
    /// (zero fires immediately).
    pub for_duration: Duration,
}

impl Rule {
    /// A threshold rule with no pending delay.
    pub fn threshold(name: &str, series: &str, compare: Compare, value: f64) -> Rule {
        Rule {
            name: name.to_string(),
            series: series.to_string(),
            condition: Condition::Threshold { value, compare },
            for_duration: Duration::ZERO,
        }
    }

    /// Sets the pending delay.
    pub fn for_duration(mut self, d: Duration) -> Rule {
        self.for_duration = d;
        self
    }
}

/// Alert lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Never violated (or violation cleared while still pending).
    Inactive,
    /// Violating, waiting out `for_duration`.
    Pending,
    /// Violating past `for_duration` — the alert is live.
    Firing,
    /// Previously firing, currently back within bounds.
    Resolved,
}

impl AlertState {
    /// The state's lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One rule's externally visible status.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertStatus {
    /// The rule name.
    pub rule: String,
    /// The rule's series selector.
    pub series: String,
    /// Current state.
    pub state: AlertState,
    /// When (store milliseconds) the current state was entered.
    pub since_ms: u64,
    /// The most recent observed value driving the decision (threshold:
    /// the sample; rates: the per-second rate), if any was computable.
    pub value: Option<f64>,
}

/// A state-machine transition, reported so callers can emit trace
/// instant-events exactly once per edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// The rule name.
    pub rule: String,
    /// The state left.
    pub from: AlertState,
    /// The state entered.
    pub to: AlertState,
    /// The observed value at the transition, if computable.
    pub value: Option<f64>,
}

#[derive(Debug)]
struct RuleState {
    state: AlertState,
    since_ms: u64,
    pending_since_ms: u64,
    last_value: Option<f64>,
}

/// Evaluates a fixed rule set against a [`SeriesStore`].
#[derive(Debug)]
pub struct Evaluator {
    rules: Vec<Rule>,
    states: Vec<RuleState>,
}

impl Evaluator {
    /// A fresh evaluator; every rule starts Inactive at time zero.
    pub fn new(rules: Vec<Rule>) -> Evaluator {
        let states = rules
            .iter()
            .map(|_| RuleState {
                state: AlertState::Inactive,
                since_ms: 0,
                pending_since_ms: 0,
                last_value: None,
            })
            .collect();
        Evaluator { rules, states }
    }

    /// The rule set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Runs one evaluation pass at `now_ms`, advancing every rule's
    /// state machine; returns the transitions that happened.
    pub fn evaluate(&mut self, store: &SeriesStore, now_ms: u64) -> Vec<Transition> {
        let mut transitions = Vec::new();
        for (rule, st) in self.rules.iter().zip(self.states.iter_mut()) {
            let observed = worst_observation(rule, store, now_ms);
            let violated = observed.is_some_and(|v| condition_violated(&rule.condition, v));
            st.last_value = observed;
            let next = match (st.state, violated) {
                (AlertState::Inactive | AlertState::Resolved, true) => {
                    st.pending_since_ms = now_ms;
                    if now_ms.saturating_sub(st.pending_since_ms) >= duration_ms(rule.for_duration)
                    {
                        AlertState::Firing
                    } else {
                        AlertState::Pending
                    }
                }
                (AlertState::Pending, true) => {
                    if now_ms.saturating_sub(st.pending_since_ms) >= duration_ms(rule.for_duration)
                    {
                        AlertState::Firing
                    } else {
                        AlertState::Pending
                    }
                }
                (AlertState::Firing, true) => AlertState::Firing,
                (AlertState::Firing, false) => AlertState::Resolved,
                (AlertState::Pending, false) => AlertState::Inactive,
                (state @ (AlertState::Inactive | AlertState::Resolved), false) => state,
            };
            if next != st.state {
                transitions.push(Transition {
                    rule: rule.name.clone(),
                    from: st.state,
                    to: next,
                    value: observed,
                });
                st.state = next;
                st.since_ms = now_ms;
            }
        }
        transitions
    }

    /// Every rule's current status, in rule order.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.rules
            .iter()
            .zip(self.states.iter())
            .map(|(rule, st)| AlertStatus {
                rule: rule.name.clone(),
                series: rule.series.clone(),
                state: st.state,
                since_ms: st.since_ms,
                value: st.last_value,
            })
            .collect()
    }

    /// How many rules are currently Firing.
    pub fn firing(&self) -> u64 {
        self.states
            .iter()
            .filter(|s| s.state == AlertState::Firing)
            .count() as u64
    }
}

/// The worst observation across every series the rule's selector
/// matches ("worst" = the one most likely to violate), or `None` when
/// nothing is computable yet.
fn worst_observation(rule: &Rule, store: &SeriesStore, now_ms: u64) -> Option<f64> {
    let keys = store.keys_matching(&rule.series);
    let mut worst: Option<f64> = None;
    for key in &keys {
        let observed = match &rule.condition {
            Condition::Threshold { .. } => store.latest(key).map(|(_, v)| v.as_f64()),
            Condition::RateOfChange { window, .. } => {
                rate_per_second(store, key, duration_ms(*window), now_ms)
            }
            Condition::BurnRate {
                long_window,
                short_window,
                ..
            } => {
                let long = rate_per_second(store, key, duration_ms(*long_window), now_ms)?;
                let short = rate_per_second(store, key, duration_ms(*short_window), now_ms)?;
                // Both windows must burn; the weaker one gates.
                Some(long.min(short))
            }
        };
        let Some(v) = observed else { continue };
        let more_violating = match condition_compare(&rule.condition) {
            Compare::Above => worst.is_none_or(|w| v > w),
            Compare::Below => worst.is_none_or(|w| v < w),
        };
        if more_violating {
            worst = Some(v);
        }
    }
    worst
}

/// Which direction the condition treats as "worse".
fn condition_compare(c: &Condition) -> Compare {
    match c {
        Condition::Threshold { compare, .. } | Condition::RateOfChange { compare, .. } => *compare,
        Condition::BurnRate { .. } => Compare::Above,
    }
}

/// Whether observation `v` violates the condition.
fn condition_violated(c: &Condition, v: f64) -> bool {
    match c {
        Condition::Threshold { value, compare } => compare.violates(v, *value),
        Condition::RateOfChange {
            per_second,
            compare,
            ..
        } => compare.violates(v, *per_second),
        Condition::BurnRate {
            budget_per_second,
            factor,
            ..
        } => v > budget_per_second * factor,
    }
}

/// First-to-last slope of `key` over the window, per second.
fn rate_per_second(store: &SeriesStore, key: &str, window_ms: u64, now_ms: u64) -> Option<f64> {
    let samples = store.window(key, window_ms, now_ms);
    let (t0, v0) = *samples.first()?;
    let (t1, v1) = *samples.last()?;
    if t1 <= t0 {
        return None;
    }
    Some((v1 - v0) / ((t1 - t0) as f64 / 1000.0))
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// The shareable alerting runtime: a locked [`Evaluator`] ticked by
/// the collector thread and read by the `/v1/alerts` endpoint, with
/// optional side-effects — a firing-count gauge
/// (`predllc_alerts_firing`) and trace instant-events on every state
/// transition.
pub struct SloRuntime {
    evaluator: Mutex<Evaluator>,
    firing_gauge: Option<Gauge>,
    tracer: Option<(Arc<Tracer>, TraceId)>,
}

impl std::fmt::Debug for SloRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloRuntime").finish_non_exhaustive()
    }
}

impl SloRuntime {
    /// A runtime over `rules`, with no side-channels attached.
    pub fn new(rules: Vec<Rule>) -> SloRuntime {
        SloRuntime {
            evaluator: Mutex::new(Evaluator::new(rules)),
            firing_gauge: None,
            tracer: None,
        }
    }

    /// Attaches the gauge updated with the firing-rule count after
    /// every tick.
    pub fn with_gauge(mut self, gauge: Gauge) -> SloRuntime {
        self.firing_gauge = Some(gauge);
        self
    }

    /// Attaches a tracer: every state transition emits an
    /// `slo.transition` instant event on `trace`.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>, trace: TraceId) -> SloRuntime {
        self.tracer = Some((tracer, trace));
        self
    }

    /// One evaluation tick at the store's current time. Returns the
    /// transitions (also traced, when a tracer is attached).
    pub fn tick(&self, store: &SeriesStore) -> Vec<Transition> {
        let now_ms = store.now_ms();
        let mut evaluator = self.evaluator.lock().unwrap();
        let transitions = evaluator.evaluate(store, now_ms);
        if let Some(gauge) = &self.firing_gauge {
            gauge.set(evaluator.firing());
        }
        drop(evaluator);
        if let Some((tracer, trace)) = &self.tracer {
            for t in &transitions {
                tracer.instant(
                    *trace,
                    "slo.transition",
                    fields(&[
                        ("rule", t.rule.as_str().into()),
                        ("from", t.from.as_str().into()),
                        ("to", t.to.as_str().into()),
                    ]),
                );
            }
        }
        transitions
    }

    /// Every rule's current status.
    pub fn statuses(&self) -> Vec<AlertStatus> {
        self.evaluator.lock().unwrap().statuses()
    }

    /// How many rules are currently Firing.
    pub fn firing(&self) -> u64 {
        self.evaluator.lock().unwrap().firing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SampleValue;

    fn store_with(samples: &[(u64, u64)]) -> SeriesStore {
        let store = SeriesStore::new(256, 8);
        for &(t, v) in samples {
            store.record_at(t, &[("m".to_string(), SampleValue::U64(v))]);
        }
        store
    }

    #[test]
    fn threshold_walks_inactive_pending_firing_resolved() {
        let rule = Rule::threshold("depth", "m", Compare::Above, 10.0)
            .for_duration(Duration::from_millis(100));
        let mut ev = Evaluator::new(vec![rule]);
        let store = store_with(&[(0, 5)]);
        assert!(ev.evaluate(&store, 0).is_empty(), "within bounds");
        assert_eq!(ev.statuses()[0].state, AlertState::Inactive);

        store.record_at(50, &[("m".to_string(), SampleValue::U64(20))]);
        let t = ev.evaluate(&store, 50);
        assert_eq!(t.len(), 1);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Inactive, AlertState::Pending)
        );

        // Still violating but for_duration not yet served.
        assert!(ev.evaluate(&store, 100).is_empty());
        // Served: Pending -> Firing.
        let t = ev.evaluate(&store, 160);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Pending, AlertState::Firing)
        );
        assert_eq!(ev.firing(), 1);
        let status = &ev.statuses()[0];
        assert_eq!(status.since_ms, 160);
        assert_eq!(status.value, Some(20.0));

        // Back within bounds: Firing -> Resolved, and firing() drops.
        store.record_at(200, &[("m".to_string(), SampleValue::U64(3))]);
        let t = ev.evaluate(&store, 200);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Firing, AlertState::Resolved)
        );
        assert_eq!(ev.firing(), 0);

        // Re-violation from Resolved goes Pending again.
        store.record_at(250, &[("m".to_string(), SampleValue::U64(30))]);
        let t = ev.evaluate(&store, 250);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Resolved, AlertState::Pending)
        );
    }

    #[test]
    fn pending_clears_back_to_inactive_without_firing() {
        let rule = Rule::threshold("depth", "m", Compare::Above, 10.0)
            .for_duration(Duration::from_millis(500));
        let mut ev = Evaluator::new(vec![rule]);
        let store = store_with(&[(0, 20)]);
        ev.evaluate(&store, 0);
        assert_eq!(ev.statuses()[0].state, AlertState::Pending);
        store.record_at(100, &[("m".to_string(), SampleValue::U64(1))]);
        let t = ev.evaluate(&store, 100);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Pending, AlertState::Inactive)
        );
    }

    #[test]
    fn zero_for_duration_fires_on_first_violation() {
        let rule = Rule::threshold("depth", "m", Compare::Above, 10.0);
        let mut ev = Evaluator::new(vec![rule]);
        let store = store_with(&[(0, 11)]);
        let t = ev.evaluate(&store, 0);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Inactive, AlertState::Firing)
        );
    }

    #[test]
    fn rate_of_change_uses_window_slope() {
        let rule = Rule {
            name: "climb".to_string(),
            series: "m".to_string(),
            condition: Condition::RateOfChange {
                per_second: 5.0,
                window: Duration::from_secs(1),
                compare: Compare::Above,
            },
            for_duration: Duration::ZERO,
        };
        let mut ev = Evaluator::new(vec![rule]);
        // 2 per 500ms = 4/s: under the bound.
        let store = store_with(&[(0, 0), (500, 2)]);
        assert!(ev.evaluate(&store, 500).is_empty());
        // 10 more in the next 500ms: 12/500ms ≈ 24/s within the 1s window...
        store.record_at(1000, &[("m".to_string(), SampleValue::U64(12))]);
        let t = ev.evaluate(&store, 1000);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Firing);
        assert!(t[0].value.unwrap() > 5.0);
    }

    #[test]
    fn burn_rate_requires_both_windows() {
        let rule = Rule {
            name: "burn".to_string(),
            series: "m".to_string(),
            condition: Condition::BurnRate {
                budget_per_second: 1.0,
                factor: 2.0,
                long_window: Duration::from_secs(10),
                short_window: Duration::from_secs(1),
            },
            for_duration: Duration::ZERO,
        };
        let mut ev = Evaluator::new(vec![rule]);
        // Long window burns hot (100 over 10s = 10/s) but the short
        // window has cooled (flat over the last second): no fire.
        let store = store_with(&[(0, 0), (9_000, 100), (9_500, 100), (10_000, 100)]);
        assert!(
            ev.evaluate(&store, 10_000).is_empty(),
            "short window cooled"
        );
        // Both windows hot: fires.
        let store = store_with(&[(0, 0), (9_000, 90), (9_500, 95), (10_000, 100)]);
        let t = ev.evaluate(&store, 10_000);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Firing);
    }

    #[test]
    fn family_selector_fires_on_any_labelled_series() {
        let rule = Rule::threshold("rtt", "m", Compare::Above, 10.0);
        let mut ev = Evaluator::new(vec![rule]);
        let store = SeriesStore::new(16, 8);
        store.record_at(
            0,
            &[
                ("m{worker=\"w0\"}".to_string(), SampleValue::U64(1)),
                ("m{worker=\"w1\"}".to_string(), SampleValue::U64(99)),
            ],
        );
        let t = ev.evaluate(&store, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, AlertState::Firing);
        assert_eq!(t[0].value, Some(99.0), "worst series drives the value");
    }

    #[test]
    fn runtime_sets_gauge_and_reports_statuses() {
        let reg = crate::metrics::Registry::new();
        let gauge = reg.gauge("predllc_alerts_firing", "Firing rules");
        let runtime = SloRuntime::new(vec![Rule::threshold("depth", "m", Compare::Above, 10.0)])
            .with_gauge(gauge.clone());
        let store = store_with(&[(0, 50)]);
        let transitions = runtime.tick(&store);
        assert_eq!(transitions.len(), 1);
        assert_eq!(gauge.get(), 1);
        assert_eq!(runtime.statuses()[0].state, AlertState::Firing);
        assert_eq!(runtime.firing(), 1);
    }
}
