//! Continuous time-series collection over a metric [`Registry`]:
//! a background [`Collector`] thread snapshots the registry at a fixed
//! interval into per-series ring buffers ([`SeriesStore`]), giving
//! every process a bounded-memory local history that `/v1/metrics/
//! history`, the SLO evaluator ([`crate::slo`]) and the dashboard
//! renderer ([`crate::dash`]) all read from.
//!
//! Design points, in keeping with the crate's read-only rule:
//!
//! * **Exact samples.** Counter and gauge readings are stored as the
//!   `u64` they are; only derived values (histogram percentiles) are
//!   `f64`. Nothing is averaged at collection time — downsampling
//!   happens at query time ([`SeriesStore::history`]) by picking the
//!   last sample per step, so what you see is a value that existed.
//! * **Bounded memory.** Every series is a fixed-capacity ring
//!   (drop-oldest) and the store caps the number of series; a
//!   label-cardinality explosion degrades history, never memory.
//! * **Handle-owned lifecycle.** Dropping the [`Collector`] (or
//!   calling [`Collector::stop`]) wakes and joins the thread — no
//!   detached threads, no sleeps on the shutdown path.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::metrics::{Registry, SnapshotValue};
use crate::slo::SloRuntime;

/// One collected sample value: exact where the source is exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleValue {
    /// An exact counter/gauge/count reading.
    U64(u64),
    /// A derived floating-point reading (e.g. a percentile).
    F64(f64),
}

impl SampleValue {
    /// The value as a lossy `f64` (exact below 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            SampleValue::U64(v) => v as f64,
            SampleValue::F64(f) => f,
        }
    }
}

/// One series' queried history: the key plus `(t_ms, value)` samples
/// in increasing time order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesHistory {
    /// The exposition-style series key (`name` or `name{k="v",...}`).
    pub key: String,
    /// `(milliseconds since the store's epoch, value)` samples.
    pub samples: Vec<(u64, SampleValue)>,
}

/// Ring-buffer storage for collected series, keyed by exposition-style
/// series name. Timestamps are milliseconds since the store's creation
/// ([`SeriesStore::now_ms`]), which keeps every stored number small,
/// monotonic, and wall-clock-free.
#[derive(Debug)]
pub struct SeriesStore {
    epoch: Instant,
    inner: Mutex<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    capacity: usize,
    max_series: usize,
    /// Insertion order of keys (stable display order).
    order: Vec<String>,
    series: HashMap<String, VecDeque<(u64, SampleValue)>>,
    /// Samples refused because `max_series` was reached.
    overflow: u64,
}

impl SeriesStore {
    /// A fresh store: at most `max_series` series of `capacity`
    /// samples each (both floored at 1).
    pub fn new(capacity: usize, max_series: usize) -> SeriesStore {
        SeriesStore {
            epoch: Instant::now(),
            inner: Mutex::new(StoreInner {
                capacity: capacity.max(1),
                max_series: max_series.max(1),
                order: Vec::new(),
                series: HashMap::new(),
                overflow: 0,
            }),
        }
    }

    /// Milliseconds since the store was created.
    pub fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Records one batch of samples at the current time.
    pub fn record(&self, samples: &[(String, SampleValue)]) {
        self.record_at(self.now_ms(), samples);
    }

    /// Records one batch at an explicit timestamp (tests drive time
    /// directly through this).
    pub fn record_at(&self, t_ms: u64, samples: &[(String, SampleValue)]) {
        let mut inner = self.inner.lock().unwrap();
        for (key, value) in samples {
            if !inner.series.contains_key(key) {
                if inner.series.len() >= inner.max_series {
                    inner.overflow += 1;
                    continue;
                }
                let cap = inner.capacity;
                inner.order.push(key.clone());
                inner
                    .series
                    .insert(key.clone(), VecDeque::with_capacity(cap));
            }
            let cap = inner.capacity;
            let ring = inner.series.get_mut(key).expect("just ensured");
            if ring.len() == cap {
                ring.pop_front();
            }
            ring.push_back((t_ms, *value));
        }
    }

    /// Number of distinct series currently stored.
    pub fn series_count(&self) -> usize {
        self.inner.lock().unwrap().series.len()
    }

    /// Samples refused because the series cap was hit.
    pub fn overflow(&self) -> u64 {
        self.inner.lock().unwrap().overflow
    }

    /// The most recent `(t_ms, value)` sample of `key`, if any.
    pub fn latest(&self, key: &str) -> Option<(u64, SampleValue)> {
        let inner = self.inner.lock().unwrap();
        inner.series.get(key).and_then(|r| r.back().copied())
    }

    /// All stored keys matching `selector`: either the key itself, or
    /// a family name that matches every labelled series of that family
    /// (`selector == "m"` matches `m` and `m{worker="w0"}`).
    pub fn keys_matching(&self, selector: &str) -> Vec<String> {
        let prefix = format!("{selector}{{");
        let inner = self.inner.lock().unwrap();
        inner
            .order
            .iter()
            .filter(|k| k.as_str() == selector || k.starts_with(&prefix))
            .cloned()
            .collect()
    }

    /// The `(t_ms, value as f64)` samples of `key` within the last
    /// `window_ms` before `now_ms`, oldest first.
    pub fn window(&self, key: &str, window_ms: u64, now_ms: u64) -> Vec<(u64, f64)> {
        let start = now_ms.saturating_sub(window_ms);
        let inner = self.inner.lock().unwrap();
        match inner.series.get(key) {
            Some(ring) => ring
                .iter()
                .filter(|&&(t, _)| t >= start && t <= now_ms)
                .map(|&(t, v)| (t, v.as_f64()))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Every series' history over the last `window_ms`, downsampled to
    /// at most one sample (the last) per `step_ms` bucket. Returns
    /// `(now_ms, histories)`; series with no samples in the window are
    /// returned with an empty sample list (a *gap*, not an absence —
    /// the caller can tell "stale" from "never existed").
    pub fn history(&self, window_ms: u64, step_ms: u64) -> (u64, Vec<SeriesHistory>) {
        self.history_at(window_ms, step_ms, self.now_ms())
    }

    /// [`SeriesStore::history`] at an explicit `now` (tests drive time
    /// directly through this).
    pub fn history_at(&self, window_ms: u64, step_ms: u64, now: u64) -> (u64, Vec<SeriesHistory>) {
        let step = step_ms.max(1);
        let start = now.saturating_sub(window_ms);
        let inner = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(inner.order.len());
        for key in &inner.order {
            let ring = &inner.series[key];
            let mut samples: Vec<(u64, SampleValue)> = Vec::new();
            for &(t, v) in ring.iter() {
                if t < start || t > now {
                    continue;
                }
                let bucket = (t - start) / step;
                match samples.last_mut() {
                    // Same step bucket: keep only the last sample.
                    Some(last) if (last.0 - start) / step == bucket => *last = (t, v),
                    _ => samples.push((t, v)),
                }
            }
            out.push(SeriesHistory {
                key: key.clone(),
                samples,
            });
        }
        (now, out)
    }
}

/// Flattens a registry snapshot into collector samples: counters and
/// gauges as exact `u64`s under their exposition key; each histogram
/// series as three derived sub-series — `{name}_count` (`u64`),
/// `{name}_sum` (`u64`) and `{name}_p99` (`f64`, the log-bucket p99).
pub fn registry_samples(registry: &Registry) -> Vec<(String, SampleValue)> {
    let mut out = Vec::new();
    for snap in registry.snapshot_series() {
        match &snap.value {
            SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => {
                out.push((snap.key(), SampleValue::U64(*v)));
            }
            SnapshotValue::Histogram(h) => {
                let count =
                    crate::metrics::series_key(&format!("{}_count", snap.name), &snap.labels);
                let sum = crate::metrics::series_key(&format!("{}_sum", snap.name), &snap.labels);
                let p99 = crate::metrics::series_key(&format!("{}_p99", snap.name), &snap.labels);
                out.push((count, SampleValue::U64(h.count)));
                out.push((sum, SampleValue::U64(h.sum)));
                out.push((p99, SampleValue::F64(h.percentile(99.0) as f64)));
            }
        }
    }
    out
}

/// Collector configuration: how often to sample and how much to keep.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Snapshot interval.
    pub interval: Duration,
    /// Ring capacity per series (samples kept).
    pub capacity: usize,
    /// Maximum distinct series.
    pub max_series: usize,
}

impl Default for CollectorConfig {
    /// One sample per second, ten minutes of history, 512 series.
    fn default() -> Self {
        CollectorConfig {
            interval: Duration::from_secs(1),
            capacity: 600,
            max_series: 512,
        }
    }
}

/// A background collection thread. Samples are produced by a caller-
/// supplied closure (usually wrapping [`registry_samples`], possibly
/// preceded by refresh work like mirroring the tracer's drop count),
/// recorded into the owned [`SeriesStore`], and — when an
/// [`SloRuntime`] is attached — fed straight to alert evaluation on
/// the same tick.
pub struct Collector {
    store: Arc<SeriesStore>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("series", &self.store.series_count())
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Starts the collection thread. The first sample is taken
    /// immediately, then every `config.interval` until the handle is
    /// stopped or dropped.
    pub fn start(
        config: CollectorConfig,
        mut sampler: impl FnMut() -> Vec<(String, SampleValue)> + Send + 'static,
        slo: Option<Arc<SloRuntime>>,
    ) -> Collector {
        let store = Arc::new(SeriesStore::new(config.capacity, config.max_series));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let interval = config.interval;
            thread::Builder::new()
                .name("obs-collector".to_string())
                .spawn(move || {
                    // Ticks run on absolute deadlines: a relative sleep
                    // after each sample would add the sampler's own
                    // runtime to every step, drifting the series clock
                    // by (cost × ticks) over a run.
                    let mut next = Instant::now();
                    loop {
                        let samples = sampler();
                        store.record(&samples);
                        if let Some(slo) = &slo {
                            slo.tick(&store);
                        }
                        next += interval;
                        if next < Instant::now() {
                            // The sampler overran the whole interval:
                            // re-anchor and skip the missed ticks rather
                            // than firing a burst to catch up.
                            next = Instant::now();
                        }
                        let (lock, cond) = &*stop;
                        let mut stopped = lock.lock().unwrap();
                        loop {
                            if *stopped {
                                return;
                            }
                            let now = Instant::now();
                            if now >= next {
                                break;
                            }
                            let (guard, _) = cond.wait_timeout(stopped, next - now).unwrap();
                            stopped = guard;
                        }
                    }
                })
                .expect("spawn obs-collector")
        };
        Collector {
            store,
            stop,
            thread: Some(thread),
        }
    }

    /// The store the collector records into (shared: endpoints read it
    /// while collection continues).
    pub fn store(&self) -> Arc<SeriesStore> {
        Arc::clone(&self.store)
    }

    /// Stops and joins the collection thread. Idempotent; also runs on
    /// drop.
    pub fn stop(&mut self) {
        let (lock, cond) = &*self.stop;
        *lock.lock().unwrap() = true;
        cond.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_drop_oldest_at_capacity() {
        let store = SeriesStore::new(3, 8);
        for t in 0..5u64 {
            store.record_at(t * 10, &[("m".to_string(), SampleValue::U64(t))]);
        }
        let (_, histories) = store.history_at(u64::MAX, 1, 40);
        let m = &histories[0];
        assert_eq!(m.key, "m");
        let times: Vec<u64> = m.samples.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![20, 30, 40], "first two samples dropped");
    }

    #[test]
    fn series_cap_bounds_memory_and_counts_overflow() {
        let store = SeriesStore::new(4, 2);
        store.record_at(
            0,
            &[
                ("a".to_string(), SampleValue::U64(1)),
                ("b".to_string(), SampleValue::U64(2)),
                ("c".to_string(), SampleValue::U64(3)),
            ],
        );
        assert_eq!(store.series_count(), 2);
        assert_eq!(store.overflow(), 1);
        // Existing series still record fine.
        store.record_at(5, &[("a".to_string(), SampleValue::U64(9))]);
        assert_eq!(store.latest("a"), Some((5, SampleValue::U64(9))));
        assert_eq!(store.latest("c"), None);
    }

    #[test]
    fn history_downsamples_to_last_sample_per_step() {
        let store = SeriesStore::new(64, 4);
        for t in [0u64, 40, 80, 120, 160, 199] {
            store.record_at(t, &[("m".to_string(), SampleValue::U64(t))]);
        }
        // Query before any further time passes: the window covers all.
        let samples = store.window("m", u64::MAX, 199);
        assert_eq!(samples.len(), 6);
        let (_, histories) = store.history_at(u64::MAX, 100, 199);
        let m = &histories[0];
        // Step buckets relative to window start: last-of-bucket wins.
        let values: Vec<u64> = m
            .samples
            .iter()
            .map(|&(_, v)| match v {
                SampleValue::U64(v) => v,
                SampleValue::F64(_) => unreachable!(),
            })
            .collect();
        assert!(values.len() < 6, "downsampled: {values:?}");
        assert_eq!(*values.last().unwrap(), 199, "last sample survives");
    }

    #[test]
    fn keys_matching_selects_family_and_exact_keys() {
        let store = SeriesStore::new(4, 8);
        store.record_at(
            0,
            &[
                ("m".to_string(), SampleValue::U64(1)),
                ("m{worker=\"w0\"}".to_string(), SampleValue::U64(2)),
                ("m_total".to_string(), SampleValue::U64(3)),
            ],
        );
        assert_eq!(store.keys_matching("m"), vec!["m", "m{worker=\"w0\"}"]);
        assert_eq!(store.keys_matching("m_total"), vec!["m_total"]);
        assert!(store.keys_matching("absent").is_empty());
    }

    #[test]
    fn collector_ticks_on_absolute_deadlines_despite_slow_samplers() {
        // A sampler that costs 3/4 of the interval: with relative
        // sleeps every step would stretch to interval + cost (~35ms
        // here); absolute deadlines keep the mean spacing at the
        // configured interval.
        let config = CollectorConfig {
            interval: Duration::from_millis(20),
            capacity: 600,
            max_series: 8,
        };
        let mut collector = Collector::start(
            config,
            || {
                thread::sleep(Duration::from_millis(15));
                vec![("drift".to_string(), SampleValue::U64(1))]
            },
            None,
        );
        let store = collector.store();
        thread::sleep(Duration::from_millis(800));
        collector.stop();
        let (_, histories) = store.history(u64::MAX, 1);
        let samples = &histories
            .iter()
            .find(|h| h.key == "drift")
            .expect("the collector recorded")
            .samples;
        assert!(samples.len() >= 2, "collector barely ticked");
        let span = samples.last().unwrap().0 - samples.first().unwrap().0;
        let mean = span as f64 / (samples.len() - 1) as f64;
        // 30ms splits the regimes: drifting ticks average >= 35ms no
        // matter the machine, absolute ones hover at 20ms with room
        // for scheduler noise.
        assert!(
            mean < 30.0,
            "mean tick spacing {mean:.1}ms drifted past the 20ms interval \
             ({} samples over {span}ms)",
            samples.len(),
        );
    }

    #[test]
    fn collector_samples_records_and_stops_cleanly() {
        let n = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let sampler = {
            let n = Arc::clone(&n);
            move || {
                let v = n.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                vec![("ticks".to_string(), SampleValue::U64(v))]
            }
        };
        let config = CollectorConfig {
            interval: Duration::from_millis(5),
            capacity: 128,
            max_series: 8,
        };
        let mut collector = Collector::start(config, sampler, None);
        let store = collector.store();
        let deadline = Instant::now() + Duration::from_secs(5);
        while store.latest("ticks").is_none_or(|(_, v)| v.as_f64() < 2.0) {
            assert!(Instant::now() < deadline, "collector never ticked");
            thread::sleep(Duration::from_millis(2));
        }
        collector.stop();
        let after = store.latest("ticks");
        thread::sleep(Duration::from_millis(20));
        assert_eq!(store.latest("ticks"), after, "no ticks after stop");
        collector.stop(); // idempotent
    }

    #[test]
    fn registry_samples_flatten_histograms_into_derived_series() {
        let reg = Registry::new();
        reg.counter("predllc_c_total", "c").add(3);
        let h = reg.histogram_with("predllc_h_ns", "h", "endpoint", "x");
        h.record_ns(100);
        h.record_ns(200);
        let samples = registry_samples(&reg);
        let get = |key: &str| {
            samples
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing series {key} in {samples:?}"))
        };
        assert_eq!(get("predllc_c_total"), SampleValue::U64(3));
        assert_eq!(
            get("predllc_h_ns_count{endpoint=\"x\"}"),
            SampleValue::U64(2)
        );
        assert_eq!(
            get("predllc_h_ns_sum{endpoint=\"x\"}"),
            SampleValue::U64(300)
        );
        match get("predllc_h_ns_p99{endpoint=\"x\"}") {
            SampleValue::F64(p) => assert!(p >= 200.0, "p99 {p} below max"),
            other => panic!("p99 should be F64, got {other:?}"),
        }
    }
}
