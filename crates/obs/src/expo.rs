//! In-tree validator **and parser** for the Prometheus text exposition
//! format (`text/plain; version=0.0.4`), so smoke tests and CI can
//! prove every `/metrics` line parses without an external Prometheus —
//! and so the fleet coordinator can scrape its workers' expositions
//! back into structured data with [`parse`].
//!
//! The validator checks structure, not semantics: line grammar, label
//! syntax, numeric sample values, `# TYPE` declared before (and at most
//! once per) family, histogram series completeness (`_bucket` with an
//! `le` label, cumulative non-decreasing bucket counts, a `+Inf` bucket
//! equal to `_count`), and the trailing-newline guarantee.
//!
//! [`parse`] is the validator's inverse: it accepts exactly the
//! expositions [`validate`] accepts (it runs the same grammar) and
//! returns an [`Exposition`] whose [`Exposition::render`] reproduces
//! the input byte-for-byte for anything the workspace [`Registry`]
//! renders — integer samples stay exact `u64`s, label order and escape
//! sequences are preserved.
//!
//! [`Registry`]: crate::metrics::Registry

use std::collections::HashMap;

/// What [`validate`] learned about a well-formed exposition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExpoSummary {
    /// Families with a `# TYPE` declaration.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
}

/// Per-family bookkeeping during validation.
#[derive(Debug, Default)]
struct FamilyState {
    kind: String,
    saw_sample: bool,
    /// For histograms, per-label-set bucket/count state.
    hist: HashMap<String, HistState>,
}

#[derive(Debug, Default)]
struct HistState {
    last_le: Option<f64>,
    last_cum: Option<f64>,
    inf: Option<f64>,
    count: Option<f64>,
}

/// Validates `text` as Prometheus text exposition. Returns a summary
/// on success, or a message naming the first offending line.
pub fn validate(text: &str) -> Result<ExpoSummary, String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition does not end with a newline".to_string());
    }
    let mut families: HashMap<String, FamilyState> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in TYPE: '{name}'"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown TYPE kind '{kind}'"));
                }
                let state = families.entry(name.to_string()).or_default();
                if !state.kind.is_empty() {
                    return Err(format!("line {n}: duplicate TYPE for '{name}'"));
                }
                if state.saw_sample {
                    return Err(format!("line {n}: TYPE for '{name}' after its samples"));
                }
                state.kind = kind.to_string();
                order.push(name.to_string());
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in HELP: '{name}'"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        samples += 1;
        let (family, suffix) = family_of(&sample.name, |stem| {
            families.get(stem).is_some_and(|f| !f.kind.is_empty())
        });
        let state = families.entry(family.clone()).or_default();
        state.saw_sample = true;
        if state.kind == "histogram" {
            let key = sample.labels_key_without_le();
            let hist = state.hist.entry(key).or_default();
            let value = sample.value.as_f64();
            match suffix {
                "_bucket" => {
                    let le = sample
                        .label("le")
                        .ok_or_else(|| format!("line {n}: histogram bucket without le label"))?;
                    let le =
                        parse_le(le).ok_or_else(|| format!("line {n}: bad le bound '{le}'"))?;
                    if let Some(prev) = hist.last_le {
                        if le <= prev {
                            return Err(format!("line {n}: le bounds not increasing"));
                        }
                    }
                    if let Some(prev) = hist.last_cum {
                        if value < prev {
                            return Err(format!("line {n}: bucket counts not cumulative"));
                        }
                    }
                    hist.last_le = Some(le);
                    hist.last_cum = Some(value);
                    if le.is_infinite() {
                        hist.inf = Some(value);
                    }
                }
                "_count" => hist.count = Some(value),
                "_sum" => {}
                "" => {
                    return Err(format!(
                        "line {n}: bare sample '{}' for histogram family",
                        sample.name
                    ));
                }
                _ => unreachable!("family_of returns known suffixes"),
            }
        } else if !suffix.is_empty() && state.kind.is_empty() {
            // An undeclared family whose name merely ends in _sum /
            // _count / _bucket: treat it as its own untyped family.
            let state = families.entry(sample.name.clone()).or_default();
            state.saw_sample = true;
        }
    }
    // Histogram closure: every labelled series needs +Inf == _count.
    for name in &order {
        let state = &families[name];
        if state.kind != "histogram" {
            continue;
        }
        if state.hist.is_empty() {
            return Err(format!("histogram '{name}' has no samples"));
        }
        for (labels, hist) in &state.hist {
            let what = if labels.is_empty() {
                name.clone()
            } else {
                format!("{name}{{{labels}}}")
            };
            let inf = hist
                .inf
                .ok_or_else(|| format!("histogram '{what}' missing +Inf bucket"))?;
            let count = hist
                .count
                .ok_or_else(|| format!("histogram '{what}' missing _count"))?;
            if inf != count {
                return Err(format!(
                    "histogram '{what}': +Inf bucket {inf} != count {count}"
                ));
            }
        }
    }
    Ok(ExpoSummary {
        families: order.len(),
        samples,
    })
}

/// A parsed sample value. Integer tokens stay exact `u64`s (the
/// workspace [`Registry`](crate::metrics::Registry) renders nothing
/// else), so re-rendering them reproduces the input bytes; everything
/// else — floats, negative numbers, `+Inf`, `-Inf`, `NaN` — is carried
/// as an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExpoValue {
    /// An exact non-negative integer sample.
    UInt(u64),
    /// Any other numeric sample.
    Float(f64),
}

impl ExpoValue {
    /// The value as a lossy `f64` (exact below 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            ExpoValue::UInt(v) => v as f64,
            ExpoValue::Float(f) => f,
        }
    }

    /// Renders the value in exposition syntax.
    pub fn render(self) -> String {
        match self {
            ExpoValue::UInt(v) => v.to_string(),
            ExpoValue::Float(f) if f == f64::INFINITY => "+Inf".to_string(),
            ExpoValue::Float(f) if f == f64::NEG_INFINITY => "-Inf".to_string(),
            ExpoValue::Float(f) if f.is_nan() => "NaN".to_string(),
            ExpoValue::Float(f) => format!("{f:?}"),
        }
    }
}

/// A parsed sample line: `name[{labels}] value [timestamp]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpoSample {
    /// The full sample name (including any `_bucket`/`_sum`/`_count`
    /// histogram suffix).
    pub name: String,
    /// Label pairs in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: ExpoValue,
    /// The optional millisecond timestamp.
    pub timestamp: Option<i64>,
}

impl ExpoSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A stable key over the labels, `le` excluded — identifies one
    /// histogram series across its bucket/sum/count lines.
    fn labels_key_without_le(&self) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        pairs.sort();
        pairs.join(",")
    }

    /// Renders the sample as one exposition line (with trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.name.len() + 16);
        out.push_str(&self.name);
        if !self.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_label_value(v));
                out.push('"');
            }
            out.push('}');
        }
        out.push(' ');
        out.push_str(&self.value.render());
        if let Some(ts) = self.timestamp {
            out.push(' ');
            out.push_str(&ts.to_string());
        }
        out.push('\n');
        out
    }
}

/// A parsed metric family: every sample routed to one `# TYPE` (or, for
/// undeclared names, grouped by sample name with `kind == None`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpoFamily {
    /// The family name (histogram suffixes stripped).
    pub name: String,
    /// The raw `# HELP` text as written (escape sequences preserved).
    pub help: Option<String>,
    /// The declared kind (`counter`/`gauge`/`histogram`/`summary`/
    /// `untyped`), or `None` when the family was never declared.
    pub kind: Option<String>,
    /// The family's samples in source order.
    pub samples: Vec<ExpoSample>,
}

impl ExpoFamily {
    /// The first sample with this exact full `name` (suffix included).
    pub fn sample(&self, name: &str) -> Option<&ExpoSample> {
        self.samples.iter().find(|s| s.name == name)
    }
}

/// A fully parsed exposition: the structured inverse of
/// [`Registry::render`](crate::metrics::Registry::render).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Exposition {
    /// Families in declaration (or first-sample) order.
    pub families: Vec<ExpoFamily>,
}

impl Exposition {
    /// The family named `name`, if present.
    pub fn family(&self, name: &str) -> Option<&ExpoFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Every sample across every family, in source order.
    pub fn samples(&self) -> impl Iterator<Item = &ExpoSample> {
        self.families.iter().flat_map(|f| f.samples.iter())
    }

    /// Renders the exposition back to text. For expositions produced by
    /// the workspace registry this reproduces the scraped bytes
    /// exactly; the output always validates and ends with a newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            if let Some(help) = &f.help {
                out.push_str(&format!("# HELP {} {help}\n", f.name));
            }
            if let Some(kind) = &f.kind {
                out.push_str(&format!("# TYPE {} {kind}\n", f.name));
            }
            for s in &f.samples {
                out.push_str(&s.render());
            }
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

/// Parses `text` into an [`Exposition`]. Accepts exactly what
/// [`validate`] accepts — the full validator runs first, so a
/// successful parse implies a structurally valid exposition (and
/// `parse(x).render()` always re-validates).
pub fn parse(text: &str) -> Result<Exposition, String> {
    validate(text)?;
    let mut families: Vec<ExpoFamily> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let family_entry =
        |families: &mut Vec<ExpoFamily>, index: &mut HashMap<String, usize>, name: &str| -> usize {
            if let Some(&i) = index.get(name) {
                return i;
            }
            families.push(ExpoFamily {
                name: name.to_string(),
                help: None,
                kind: None,
                samples: Vec::new(),
            });
            index.insert(name.to_string(), families.len() - 1);
            families.len() - 1
        };
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                let i = family_entry(&mut families, &mut index, name);
                families[i].kind = Some(kind.to_string());
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let mut parts = decl.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let help = parts.next().unwrap_or("");
                let i = family_entry(&mut families, &mut index, name);
                families[i].help = Some(help.to_string());
            }
            continue;
        }
        let sample = parse_sample(line)?;
        let (family, _suffix) = family_of(&sample.name, |stem| {
            index
                .get(stem)
                .is_some_and(|&i| families[i].kind.as_deref() == Some("histogram"))
        });
        let i = family_entry(&mut families, &mut index, &family);
        families[i].samples.push(sample);
    }
    Ok(Exposition { families })
}

/// Splits `name` into its family and histogram suffix; `is_histogram`
/// reports whether a candidate stem is a declared histogram family.
fn family_of(name: &str, is_histogram: impl Fn(&str) -> bool) -> (String, &str) {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if is_histogram(stem) {
                return (stem.to_string(), suffix);
            }
        }
    }
    (name.to_string(), "")
}

/// Parses one `name[{labels}] value [timestamp]` line.
fn parse_sample(line: &str) -> Result<ExpoSample, String> {
    let name_end = line.find(['{', ' ']).ok_or("sample line without value")?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("bad metric name '{name}'"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(body) = rest.strip_prefix('{') {
        let (parsed, after) = parse_labels(body)?;
        labels = parsed;
        rest = after;
    }
    let rest = rest.trim_start();
    let mut parts = rest.split(' ').filter(|p| !p.is_empty());
    let value = parts.next().ok_or("missing sample value")?;
    let value = parse_value(value).ok_or_else(|| format!("bad sample value '{value}'"))?;
    let timestamp = match parts.next() {
        Some(ts) => Some(
            ts.parse::<i64>()
                .map_err(|_| format!("bad timestamp '{ts}'"))?,
        ),
        None => None,
    };
    if parts.next().is_some() {
        return Err("trailing garbage after sample".to_string());
    }
    Ok(ExpoSample {
        name: name.to_string(),
        labels,
        value,
        timestamp,
    })
}

/// Parsed label pairs plus the remainder of the line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses a `key="value",...}` label block; returns the pairs and the
/// remainder of the line after the closing brace.
fn parse_labels(mut body: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    loop {
        body = body.trim_start_matches(',');
        if let Some(rest) = body.strip_prefix('}') {
            return Ok((labels, rest));
        }
        let eq = body.find('=').ok_or("label without '='")?;
        let key = &body[..eq];
        if !valid_metric_name(key) {
            return Err(format!("bad label name '{key}'"));
        }
        body = body[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        let mut value = String::new();
        let mut chars = body.char_indices();
        let close = loop {
            let (i, c) = chars.next().ok_or("unterminated label value")?;
            match c {
                '"' => break i,
                '\\' => {
                    let (_, esc) = chars.next().ok_or("dangling escape")?;
                    match esc {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(format!("bad escape '\\{other}'")),
                    }
                }
                c => value.push(c),
            }
        };
        labels.push((key.to_string(), value));
        body = &body[close + 1..];
    }
}

/// Escapes a label value for rendering (`\`, `"` and newlines) — the
/// inverse of the unescaping in [`parse_labels`].
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Parses a sample value: decimal, float, or the IEEE special names.
/// Plain digit runs stay exact `u64`s.
fn parse_value(s: &str) -> Option<ExpoValue> {
    match s {
        "+Inf" => return Some(ExpoValue::Float(f64::INFINITY)),
        "-Inf" => return Some(ExpoValue::Float(f64::NEG_INFINITY)),
        "NaN" => return Some(ExpoValue::Float(f64::NAN)),
        _ => {}
    }
    if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(v) = s.parse::<u64>() {
            return Some(ExpoValue::UInt(v));
        }
    }
    s.parse::<f64>().ok().map(ExpoValue::Float)
}

/// Parses an `le` bound (a float or `+Inf`).
fn parse_le(s: &str) -> Option<f64> {
    if s == "+Inf" {
        return Some(f64::INFINITY);
    }
    s.parse::<f64>().ok()
}

/// Whether `name` is a legal metric/label name.
fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn registry_output_always_validates() {
        let reg = Registry::new();
        reg.counter("predllc_jobs_total", "Jobs").add(3);
        reg.gauge("predllc_workers_alive", "Live workers").set(2);
        let h = reg.histogram_with("predllc_rtt_ns", "RTT", "worker", "w-0");
        for v in [5u64, 900, 70_000] {
            h.record_ns(v);
        }
        reg.histogram("predllc_empty_ns", "Never recorded");
        let text = reg.render();
        let summary = validate(&text).expect("registry output must validate");
        assert_eq!(summary.families, 4);
        assert!(summary.samples >= 8);
    }

    #[test]
    fn structural_errors_are_caught() {
        assert!(validate("").is_err());
        assert!(validate("predllc_x 1").is_err(), "missing trailing newline");
        assert!(validate("9bad_name 1\n").is_err());
        assert!(validate("predllc_x notanumber\n").is_err());
        assert!(
            validate("# TYPE predllc_h histogram\npredllc_h_bucket{le=\"+Inf\"} 2\npredllc_h_sum 3\npredllc_h_count 1\n")
                .is_err(),
            "+Inf != count"
        );
        assert!(
            validate("# TYPE predllc_h histogram\npredllc_h_sum 3\npredllc_h_count 1\n").is_err(),
            "missing +Inf bucket"
        );
        assert!(
            validate(concat!(
                "# TYPE predllc_h histogram\n",
                "predllc_h_bucket{le=\"10\"} 5\n",
                "predllc_h_bucket{le=\"20\"} 3\n",
                "predllc_h_bucket{le=\"+Inf\"} 5\n",
                "predllc_h_sum 1\npredllc_h_count 5\n"
            ))
            .is_err(),
            "non-cumulative buckets"
        );
        assert!(
            validate("# TYPE predllc_x counter\n# TYPE predllc_x counter\npredllc_x 1\n").is_err()
        );
    }

    #[test]
    fn labels_escapes_and_timestamps_parse() {
        let text = concat!(
            "# HELP predllc_x helpful text\n",
            "# TYPE predllc_x gauge\n",
            "predllc_x{path=\"a\\\\b\",msg=\"say \\\"hi\\\"\\n\"} 4.5 1712000000\n"
        );
        let summary = validate(text).expect("labelled sample must parse");
        assert_eq!(summary.samples, 1);
    }

    #[test]
    fn parse_is_structured_and_rejects_what_validate_rejects() {
        let text = concat!(
            "# HELP predllc_x helpful text\n",
            "# TYPE predllc_x gauge\n",
            "predllc_x{path=\"a\\\\b\"} 4.5 1712000000\n",
            "predllc_y_total 7\n"
        );
        let expo = parse(text).expect("must parse");
        assert_eq!(expo.families.len(), 2);
        let x = expo.family("predllc_x").expect("family x");
        assert_eq!(x.help.as_deref(), Some("helpful text"));
        assert_eq!(x.kind.as_deref(), Some("gauge"));
        assert_eq!(x.samples[0].label("path"), Some("a\\b"));
        assert_eq!(x.samples[0].value, ExpoValue::Float(4.5));
        assert_eq!(x.samples[0].timestamp, Some(1_712_000_000));
        let y = expo.family("predllc_y_total").expect("undeclared family");
        assert_eq!(y.kind, None);
        assert_eq!(y.samples[0].value, ExpoValue::UInt(7));
        assert!(parse("predllc_x 1").is_err(), "no trailing newline");
        assert!(parse("9bad 1\n").is_err());
    }

    #[test]
    fn parse_groups_histogram_suffixes_under_their_family() {
        let reg = Registry::new();
        let h = reg.histogram_with("predllc_rtt_ns", "RTT", "worker", "w-0");
        h.record_ns(7);
        h.record_ns(900);
        let text = reg.render();
        let expo = parse(&text).expect("histogram exposition parses");
        let fam = expo.family("predllc_rtt_ns").expect("histogram family");
        assert_eq!(fam.kind.as_deref(), Some("histogram"));
        assert!(fam.sample("predllc_rtt_ns_sum").is_some());
        assert!(fam.sample("predllc_rtt_ns_count").is_some());
        assert!(fam
            .samples
            .iter()
            .any(|s| s.name == "predllc_rtt_ns_bucket" && s.label("le") == Some("+Inf")));
    }

    #[test]
    fn parse_render_is_byte_identical_for_registry_output() {
        let reg = Registry::new();
        reg.counter("predllc_jobs_total", "Jobs").add(41);
        reg.gauge("predllc_depth", "Queue depth").set(3);
        reg.counter_with("predllc_by_worker", "Per worker", "worker", "127.0.0.1:1")
            .add(9);
        let h = reg.histogram_with("predllc_rtt_ns", "RTT", "worker", "w \"q\"\n\\x");
        for v in [0u64, 5, 5, 70_000, u64::MAX / 7] {
            h.record_ns(v);
        }
        let text = reg.render();
        let expo = parse(&text).expect("parses");
        assert_eq!(expo.render(), text, "parse∘render must be identity");
    }
}
