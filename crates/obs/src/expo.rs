//! In-tree validator for the Prometheus text exposition format
//! (`text/plain; version=0.0.4`), so smoke tests and CI can prove
//! every `/metrics` line parses without an external Prometheus.
//!
//! The validator checks structure, not semantics: line grammar, label
//! syntax, numeric sample values, `# TYPE` declared before (and at most
//! once per) family, histogram series completeness (`_bucket` with an
//! `le` label, cumulative non-decreasing bucket counts, a `+Inf` bucket
//! equal to `_count`), and the trailing-newline guarantee.

use std::collections::HashMap;

/// What [`validate`] learned about a well-formed exposition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExpoSummary {
    /// Families with a `# TYPE` declaration.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
}

/// Per-family bookkeeping during validation.
#[derive(Debug, Default)]
struct FamilyState {
    kind: String,
    saw_sample: bool,
    /// For histograms, per-label-set bucket/count state.
    hist: HashMap<String, HistState>,
}

#[derive(Debug, Default)]
struct HistState {
    last_le: Option<f64>,
    last_cum: Option<f64>,
    inf: Option<f64>,
    count: Option<f64>,
}

/// Validates `text` as Prometheus text exposition. Returns a summary
/// on success, or a message naming the first offending line.
pub fn validate(text: &str) -> Result<ExpoSummary, String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition does not end with a newline".to_string());
    }
    let mut families: HashMap<String, FamilyState> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in TYPE: '{name}'"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown TYPE kind '{kind}'"));
                }
                let state = families.entry(name.to_string()).or_default();
                if !state.kind.is_empty() {
                    return Err(format!("line {n}: duplicate TYPE for '{name}'"));
                }
                if state.saw_sample {
                    return Err(format!("line {n}: TYPE for '{name}' after its samples"));
                }
                state.kind = kind.to_string();
                order.push(name.to_string());
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: bad metric name in HELP: '{name}'"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        samples += 1;
        let (family, suffix) = family_of(&sample.name, &families);
        let state = families.entry(family.clone()).or_default();
        state.saw_sample = true;
        if state.kind == "histogram" {
            let key = sample.labels_key_without_le();
            let hist = state.hist.entry(key).or_default();
            match suffix {
                "_bucket" => {
                    let le = sample
                        .label("le")
                        .ok_or_else(|| format!("line {n}: histogram bucket without le label"))?;
                    let le =
                        parse_le(le).ok_or_else(|| format!("line {n}: bad le bound '{le}'"))?;
                    if let Some(prev) = hist.last_le {
                        if le <= prev {
                            return Err(format!("line {n}: le bounds not increasing"));
                        }
                    }
                    if let Some(prev) = hist.last_cum {
                        if sample.value < prev {
                            return Err(format!("line {n}: bucket counts not cumulative"));
                        }
                    }
                    hist.last_le = Some(le);
                    hist.last_cum = Some(sample.value);
                    if le.is_infinite() {
                        hist.inf = Some(sample.value);
                    }
                }
                "_count" => hist.count = Some(sample.value),
                "_sum" => {}
                "" => {
                    return Err(format!(
                        "line {n}: bare sample '{}' for histogram family",
                        sample.name
                    ));
                }
                _ => unreachable!("family_of returns known suffixes"),
            }
        } else if !suffix.is_empty() && state.kind.is_empty() {
            // An undeclared family whose name merely ends in _sum /
            // _count / _bucket: treat it as its own untyped family.
            let state = families.entry(sample.name.clone()).or_default();
            state.saw_sample = true;
        }
    }
    // Histogram closure: every labelled series needs +Inf == _count.
    for name in &order {
        let state = &families[name];
        if state.kind != "histogram" {
            continue;
        }
        if state.hist.is_empty() {
            return Err(format!("histogram '{name}' has no samples"));
        }
        for (labels, hist) in &state.hist {
            let what = if labels.is_empty() {
                name.clone()
            } else {
                format!("{name}{{{labels}}}")
            };
            let inf = hist
                .inf
                .ok_or_else(|| format!("histogram '{what}' missing +Inf bucket"))?;
            let count = hist
                .count
                .ok_or_else(|| format!("histogram '{what}' missing _count"))?;
            if inf != count {
                return Err(format!(
                    "histogram '{what}': +Inf bucket {inf} != count {count}"
                ));
            }
        }
    }
    Ok(ExpoSummary {
        families: order.len(),
        samples,
    })
}

/// A parsed sample line.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Sample {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A stable key over the labels, `le` excluded — identifies one
    /// histogram series across its bucket/sum/count lines.
    fn labels_key_without_le(&self) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        pairs.sort();
        pairs.join(",")
    }
}

/// Splits `name` into its declared family and histogram suffix.
fn family_of<'a>(name: &'a str, families: &HashMap<String, FamilyState>) -> (String, &'a str) {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families.get(stem).is_some_and(|f| !f.kind.is_empty()) {
                return (stem.to_string(), suffix);
            }
        }
    }
    (name.to_string(), "")
}

/// Parses one `name[{labels}] value [timestamp]` line.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line.find(['{', ' ']).ok_or("sample line without value")?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("bad metric name '{name}'"));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(body) = rest.strip_prefix('{') {
        let (parsed, after) = parse_labels(body)?;
        labels = parsed;
        rest = after;
    }
    let rest = rest.trim_start();
    let mut parts = rest.split(' ').filter(|p| !p.is_empty());
    let value = parts.next().ok_or("missing sample value")?;
    let value = parse_value(value).ok_or_else(|| format!("bad sample value '{value}'"))?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp '{ts}'"))?;
    }
    if parts.next().is_some() {
        return Err("trailing garbage after sample".to_string());
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parsed label pairs plus the remainder of the line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses a `key="value",...}` label block; returns the pairs and the
/// remainder of the line after the closing brace.
fn parse_labels(mut body: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    loop {
        body = body.trim_start_matches(',');
        if let Some(rest) = body.strip_prefix('}') {
            return Ok((labels, rest));
        }
        let eq = body.find('=').ok_or("label without '='")?;
        let key = &body[..eq];
        if !valid_metric_name(key) {
            return Err(format!("bad label name '{key}'"));
        }
        body = body[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        let mut value = String::new();
        let mut chars = body.char_indices();
        let close = loop {
            let (i, c) = chars.next().ok_or("unterminated label value")?;
            match c {
                '"' => break i,
                '\\' => {
                    let (_, esc) = chars.next().ok_or("dangling escape")?;
                    match esc {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(format!("bad escape '\\{other}'")),
                    }
                }
                c => value.push(c),
            }
        };
        labels.push((key.to_string(), value));
        body = &body[close + 1..];
    }
}

/// Parses a sample value: decimal, float, or the IEEE special names.
fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse::<f64>().ok(),
    }
}

/// Parses an `le` bound (a float or `+Inf`).
fn parse_le(s: &str) -> Option<f64> {
    if s == "+Inf" {
        return Some(f64::INFINITY);
    }
    s.parse::<f64>().ok()
}

/// Whether `name` is a legal metric/label name.
fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn registry_output_always_validates() {
        let reg = Registry::new();
        reg.counter("predllc_jobs_total", "Jobs").add(3);
        reg.gauge("predllc_workers_alive", "Live workers").set(2);
        let h = reg.histogram_with("predllc_rtt_ns", "RTT", "worker", "w-0");
        for v in [5u64, 900, 70_000] {
            h.record_ns(v);
        }
        reg.histogram("predllc_empty_ns", "Never recorded");
        let text = reg.render();
        let summary = validate(&text).expect("registry output must validate");
        assert_eq!(summary.families, 4);
        assert!(summary.samples >= 8);
    }

    #[test]
    fn structural_errors_are_caught() {
        assert!(validate("").is_err());
        assert!(validate("predllc_x 1").is_err(), "missing trailing newline");
        assert!(validate("9bad_name 1\n").is_err());
        assert!(validate("predllc_x notanumber\n").is_err());
        assert!(
            validate("# TYPE predllc_h histogram\npredllc_h_bucket{le=\"+Inf\"} 2\npredllc_h_sum 3\npredllc_h_count 1\n")
                .is_err(),
            "+Inf != count"
        );
        assert!(
            validate("# TYPE predllc_h histogram\npredllc_h_sum 3\npredllc_h_count 1\n").is_err(),
            "missing +Inf bucket"
        );
        assert!(
            validate(concat!(
                "# TYPE predllc_h histogram\n",
                "predllc_h_bucket{le=\"10\"} 5\n",
                "predllc_h_bucket{le=\"20\"} 3\n",
                "predllc_h_bucket{le=\"+Inf\"} 5\n",
                "predllc_h_sum 1\npredllc_h_count 5\n"
            ))
            .is_err(),
            "non-cumulative buckets"
        );
        assert!(
            validate("# TYPE predllc_x counter\n# TYPE predllc_x counter\npredllc_x 1\n").is_err()
        );
    }

    #[test]
    fn labels_escapes_and_timestamps_parse() {
        let text = concat!(
            "# HELP predllc_x helpful text\n",
            "# TYPE predllc_x gauge\n",
            "predllc_x{path=\"a\\\\b\",msg=\"say \\\"hi\\\"\\n\"} 4.5 1712000000\n"
        );
        let summary = validate(text).expect("labelled sample must parse");
        assert_eq!(summary.samples, 1);
    }
}
