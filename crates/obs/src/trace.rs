//! Structured tracing: span/instant [`TraceEvent`] records collected
//! into sharded bounded ring buffers, keyed by 128-bit [`TraceId`]s.
//!
//! The recording path takes one lock on a *per-thread shard* — threads
//! are spread across `SHARDS` (16) independent rings by a thread-local
//! index, so recorder threads never contend with each other, only with
//! the (rare) snapshot reader. Rings are bounded: when a shard is full
//! the oldest event is dropped and a counter incremented, so tracing
//! can stay on in a long-lived server without unbounded memory.
//!
//! Events serialise to JSON Lines — one object per line, parseable by
//! any JSON parser (the workspace proves this against
//! `predllc_explore`'s in-tree parser). Trace IDs cross process
//! boundaries as 32-digit hex in the `X-Predllc-Trace` HTTP header.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Independent ring buffers; threads hash onto one each.
const SHARDS: usize = 16;

/// Default per-shard ring capacity.
const DEFAULT_CAPACITY: usize = 8192;

/// Name of the HTTP header that carries a [`TraceId`] between the
/// fleet coordinator and its workers.
pub const TRACE_HEADER: &str = "x-predllc-trace";

/// A 128-bit trace identifier, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

/// Process-wide sequence feeding [`TraceId::fresh`].
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

impl TraceId {
    /// A new, almost-surely-unique id: a hash of process start time,
    /// pid, and a process-wide sequence number, whitened through two
    /// splitmix64 rounds per half.
    pub fn fresh() -> TraceId {
        let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id() as u64;
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos() & u64::MAX as u128).unwrap_or(0))
            .unwrap_or(0);
        let hi = splitmix64(t ^ pid.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15);
        let lo = splitmix64(seq ^ pid ^ t.rotate_left(17));
        TraceId(((hi as u128) << 64) | lo as u128)
    }

    /// Renders the id as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a 32-hex-digit id (as produced by [`TraceId::to_hex`]).
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// One round of the splitmix64 finaliser — a cheap, well-mixed bijection.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed; `dur_ns` holds its length.
    End,
    /// A point-in-time event.
    Instant,
}

impl EventKind {
    /// Wire name, as emitted in the JSONL `kind` field.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "begin" => Some(EventKind::Begin),
            "end" => Some(EventKind::End),
            "instant" => Some(EventKind::Instant),
            _ => None,
        }
    }
}

/// A structured field value attached to an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A string field.
    Str(String),
    /// An unsigned integer field.
    U64(u64),
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> FieldValue {
        FieldValue::Str(s.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> FieldValue {
        FieldValue::Str(s)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// Event (span) name, e.g. `"fleet.dispatch"`.
    pub name: String,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Nanoseconds since the recording [`Tracer`]'s epoch.
    pub ts_ns: u64,
    /// Span length for [`EventKind::End`] events.
    pub dur_ns: Option<u64>,
    /// Structured key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceEvent {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"trace\":\"");
        out.push_str(&self.trace.to_hex());
        out.push_str("\",\"name\":");
        out.push_str(&json_string(&self.name));
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"ts_ns\":");
        out.push_str(&self.ts_ns.to_string());
        if let Some(d) = self.dur_ns {
            out.push_str(",\"dur_ns\":");
            out.push_str(&d.to_string());
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(k));
                out.push(':');
                match v {
                    FieldValue::Str(s) => out.push_str(&json_string(s)),
                    FieldValue::U64(n) => out.push_str(&n.to_string()),
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Renders a slice of events as JSON Lines (one object per line, each
/// line newline-terminated).
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.render_json());
        out.push('\n');
    }
    out
}

/// Minimal JSON string escaper: quotes, backslashes, and control
/// characters (as `\u00XX` or the short forms).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One bounded ring of events.
#[derive(Debug, Default)]
struct Shard {
    ring: Mutex<VecDeque<TraceEvent>>,
}

/// Collects [`TraceEvent`]s from many threads with per-thread sharding.
///
/// Create one per process (or per logical component), hand `&Tracer`
/// to anything that records. When disabled, every recording call is a
/// single atomic load and an early return.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    shards: Vec<Shard>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Hands out shard indices to threads, round-robin.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home shard.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

impl Tracer {
    /// An enabled tracer with the default per-shard capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer keeping at most `capacity` events per shard
    /// (oldest dropped first).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Turns recording on or off. Events already buffered stay.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Events discarded because a shard ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records a fully-formed event.
    pub fn record(&self, event: TraceEvent) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let shard = &self.shards[MY_SHARD.with(|s| *s)];
        let mut ring = shard.ring.lock().unwrap();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Records an [`EventKind::Instant`] event.
    pub fn instant(&self, trace: TraceId, name: &str, fields: Vec<(String, FieldValue)>) {
        if !self.is_enabled() {
            return;
        }
        self.record(TraceEvent {
            trace,
            name: name.to_string(),
            kind: EventKind::Instant,
            ts_ns: self.now_ns(),
            dur_ns: None,
            fields,
        });
    }

    /// Opens a span: records the `Begin` event now and returns a guard
    /// that records the matching `End` (with duration) when dropped.
    pub fn span<'a>(
        &'a self,
        trace: TraceId,
        name: &str,
        fields: Vec<(String, FieldValue)>,
    ) -> SpanGuard<'a> {
        let start = Instant::now();
        if self.is_enabled() {
            self.record(TraceEvent {
                trace,
                name: name.to_string(),
                kind: EventKind::Begin,
                ts_ns: self.now_ns(),
                dur_ns: None,
                fields: fields.clone(),
            });
        }
        SpanGuard {
            tracer: self,
            trace,
            name: name.to_string(),
            fields,
            start,
        }
    }

    /// Copies every buffered event out, ordered by timestamp.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.ring.lock().unwrap().iter().cloned());
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Copies the events for one trace out, ordered by timestamp.
    pub fn snapshot_trace(&self, trace: TraceId) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            all.extend(
                shard
                    .ring
                    .lock()
                    .unwrap()
                    .iter()
                    .filter(|e| e.trace == trace)
                    .cloned(),
            );
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Removes and returns every buffered event, ordered by timestamp.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.ring.lock().unwrap().drain(..));
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }
}

/// Open-span guard returned by [`Tracer::span`]; records the `End`
/// event (with `dur_ns`) on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    trace: TraceId,
    name: String,
    fields: Vec<(String, FieldValue)>,
    start: Instant,
}

impl SpanGuard<'_> {
    /// Attaches another field to the eventual `End` event.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        self.fields.push((key.to_string(), value.into()));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let dur = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.tracer.record(TraceEvent {
            trace: self.trace,
            name: std::mem::take(&mut self.name),
            kind: EventKind::End,
            ts_ns: self.tracer.now_ns(),
            dur_ns: Some(dur),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// A tracer plus the trace id to record under — the unit that flows
/// down a request path.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx<'a> {
    /// Where events go.
    pub tracer: &'a Tracer,
    /// Which trace they belong to.
    pub trace: TraceId,
}

impl<'a> TraceCtx<'a> {
    /// Binds a tracer to a trace id.
    pub fn new(tracer: &'a Tracer, trace: TraceId) -> TraceCtx<'a> {
        TraceCtx { tracer, trace }
    }

    /// Records an instant event on this trace.
    pub fn instant(&self, name: &str, fields: Vec<(String, FieldValue)>) {
        self.tracer.instant(self.trace, name, fields);
    }

    /// Opens a span on this trace.
    pub fn span(&self, name: &str, fields: Vec<(String, FieldValue)>) -> SpanGuard<'a> {
        self.tracer.span(self.trace, name, fields)
    }
}

/// Builds a field list tersely: `fields(&[("point", 3.into())])`.
pub fn fields(pairs: &[(&str, FieldValue)]) -> Vec<(String, FieldValue)> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_round_trip_hex_and_never_collide_in_a_small_sample() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let id = TraceId::fresh();
            assert_eq!(TraceId::parse_hex(&id.to_hex()), Some(id));
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
        assert_eq!(TraceId::parse_hex("zz"), None);
        assert_eq!(TraceId::parse_hex(""), None);
        assert_eq!(
            TraceId::parse_hex("00000000000000000000000000000abc"),
            Some(TraceId(0xabc))
        );
    }

    #[test]
    fn spans_record_begin_and_end_with_duration() {
        let tracer = Tracer::new();
        let trace = TraceId::fresh();
        {
            let mut span = tracer.span(trace, "work", vec![]);
            span.field("points", 7u64);
        }
        tracer.instant(trace, "tick", fields(&[("n", 1u64.into())]));
        let events = tracer.snapshot_trace(trace);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Begin);
        let end = events.iter().find(|e| e.kind == EventKind::End).unwrap();
        assert!(end.dur_ns.is_some());
        assert_eq!(end.fields, vec![("points".to_string(), FieldValue::U64(7))]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new();
        tracer.set_enabled(false);
        let trace = TraceId::fresh();
        tracer.instant(trace, "x", vec![]);
        drop(tracer.span(trace, "y", vec![]));
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn full_rings_drop_oldest_and_count_drops() {
        let tracer = Tracer::with_capacity(4);
        let trace = TraceId::fresh();
        for i in 0..10u64 {
            tracer.instant(trace, "e", fields(&[("i", i.into())]));
        }
        // This thread writes one shard, so the ring holds the last 4.
        let events = tracer.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        assert_eq!(events.last().unwrap().fields[0].1, FieldValue::U64(9));
    }

    #[test]
    fn jsonl_rendering_escapes_and_is_line_oriented() {
        let event = TraceEvent {
            trace: TraceId(0x1234),
            name: "with \"quotes\"\nand newline".to_string(),
            kind: EventKind::Instant,
            ts_ns: 42,
            dur_ns: None,
            fields: vec![("k\\ey".to_string(), FieldValue::Str("v".to_string()))],
        };
        let line = event.render_json();
        assert!(line.contains("\\\"quotes\\\""));
        assert!(line.contains("\\n"));
        assert!(line.contains("k\\\\ey"));
        let text = render_jsonl(&[event.clone(), event]);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
