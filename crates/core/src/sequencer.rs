//! The set sequencer (§4.5): the micro-architectural extension that makes
//! partition sharing cheap.
//!
//! The sequencer consists of a *Queue Lookup Table* (QLT) with one entry
//! per set that has at least one pending LLC request, each pointing at a
//! FIFO queue in the *Sequencer* (SQ) holding the cores whose requests
//! target that set, in the order their requests were broadcast on the
//! shared bus. Only the head of a set's queue may claim a freed cache
//! line in that set; everyone else waits their turn.
//!
//! The WCL analysis shows why this helps: without ordering, a core with a
//! *smaller* slot distance can intercept the entry a write-back freed for
//! the core under analysis, increasing the distance of the lines in the
//! set (Observation 3) and making the WCL grow with the partition size.
//! With broadcast order enforced, an interception can never happen, and
//! the WCL collapses to `(2(n−1)·n + 1)·N·SW` (Theorem 4.8).

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::collections::VecDeque;

use predllc_model::{CoreId, SetIdx};

/// A set sequencer for one LLC partition.
///
/// # Examples
///
/// ```
/// use predllc_core::SetSequencer;
/// use predllc_model::{CoreId, SetIdx};
///
/// let mut sq = SetSequencer::new();
/// let set = SetIdx(5);
/// sq.enqueue(set, CoreId::new(2)); // c2's request broadcast first
/// sq.enqueue(set, CoreId::new(3));
/// assert_eq!(sq.head(set), Some(CoreId::new(2)));
/// assert!(sq.is_head(set, CoreId::new(2)));
/// assert!(!sq.is_head(set, CoreId::new(3)));
/// sq.pop(set); // c2 claimed its line
/// assert_eq!(sq.head(set), Some(CoreId::new(3)));
/// ```
#[derive(Debug, Default, Clone)]
pub struct SetSequencer {
    /// QLT + SQ fused: set → FIFO of requesting cores in broadcast order.
    queues: HashMap<SetIdx, VecDeque<CoreId>>,
    /// High-water mark of simultaneously tracked sets (QLT pressure).
    max_tracked_sets: usize,
    /// High-water mark of any single queue's depth (SQ pressure).
    max_queue_depth: usize,
}

impl SetSequencer {
    /// Creates an empty sequencer.
    pub fn new() -> Self {
        SetSequencer::default()
    }

    /// Appends `core` to `set`'s queue (its request was just broadcast).
    ///
    /// Enqueueing the same core twice for the same set is a logic error in
    /// the caller (a core has at most one outstanding request).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `core` is already queued for `set`.
    pub fn enqueue(&mut self, set: SetIdx, core: CoreId) {
        let q = self.queues.entry(set).or_default();
        debug_assert!(
            !q.contains(&core),
            "{core} queued twice for {set}: one-outstanding-request violated"
        );
        q.push_back(core);
        self.max_queue_depth = self.max_queue_depth.max(q.len());
        self.max_tracked_sets = self.max_tracked_sets.max(self.queues.len());
    }

    /// The core at the head of `set`'s queue, if any request is pending.
    pub fn head(&self, set: SetIdx) -> Option<CoreId> {
        self.queues.get(&set).and_then(|q| q.front().copied())
    }

    /// Whether `core` is at the head of `set`'s queue.
    pub fn is_head(&self, set: SetIdx, core: CoreId) -> bool {
        self.head(set) == Some(core)
    }

    /// Pops the head of `set`'s queue (it claimed a line). Removes the QLT
    /// entry when the queue drains.
    pub fn pop(&mut self, set: SetIdx) -> Option<CoreId> {
        match self.queues.entry(set) {
            MapEntry::Occupied(mut o) => {
                let head = o.get_mut().pop_front();
                if o.get().is_empty() {
                    o.remove();
                }
                head
            }
            MapEntry::Vacant(_) => None,
        }
    }

    /// Removes `core` from `set`'s queue wherever it is (its request was
    /// satisfied without an allocation, e.g. it turned into a hit).
    ///
    /// Returns whether the core was queued.
    pub fn remove(&mut self, set: SetIdx, core: CoreId) -> bool {
        match self.queues.entry(set) {
            MapEntry::Occupied(mut o) => {
                let before = o.get().len();
                o.get_mut().retain(|&c| c != core);
                let removed = o.get().len() != before;
                if o.get().is_empty() {
                    o.remove();
                }
                removed
            }
            MapEntry::Vacant(_) => false,
        }
    }

    /// Whether `core` is queued for `set` at any position.
    pub fn contains(&self, set: SetIdx, core: CoreId) -> bool {
        self.queues.get(&set).is_some_and(|q| q.contains(&core))
    }

    /// Number of requests queued for `set`.
    pub fn queue_len(&self, set: SetIdx) -> usize {
        self.queues.get(&set).map_or(0, VecDeque::len)
    }

    /// Number of sets currently tracked (live QLT entries).
    pub fn tracked_sets(&self) -> usize {
        self.queues.len()
    }

    /// High-water mark of simultaneously tracked sets — the QLT capacity
    /// a hardware implementation would need for this run.
    pub fn max_tracked_sets(&self) -> usize {
        self.max_tracked_sets
    }

    /// High-water mark of a single queue's depth — the SQ depth a
    /// hardware implementation would need. Bounded by the sharer count,
    /// because each core has at most one outstanding request.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S3: SetIdx = SetIdx(3);
    const S5: SetIdx = SetIdx(5);

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn fifo_order_is_broadcast_order() {
        let mut sq = SetSequencer::new();
        sq.enqueue(S5, c(2));
        sq.enqueue(S5, c(3));
        sq.enqueue(S5, c(1));
        assert_eq!(sq.pop(S5), Some(c(2)));
        assert_eq!(sq.pop(S5), Some(c(3)));
        assert_eq!(sq.pop(S5), Some(c(1)));
        assert_eq!(sq.pop(S5), None);
    }

    #[test]
    fn paper_fig6_shape() {
        // Fig. 6: c1 pending on set 3; c2 then c3 pending on set 5.
        let mut sq = SetSequencer::new();
        sq.enqueue(S3, c(1));
        sq.enqueue(S5, c(2));
        sq.enqueue(S5, c(3));
        assert_eq!(sq.tracked_sets(), 2);
        assert_eq!(sq.head(S3), Some(c(1)));
        assert_eq!(sq.head(S5), Some(c(2)));
        assert!(!sq.is_head(S5, c(3)));
        assert_eq!(sq.queue_len(S5), 2);
    }

    #[test]
    fn queues_for_different_sets_are_independent() {
        let mut sq = SetSequencer::new();
        sq.enqueue(S3, c(0));
        sq.enqueue(S5, c(1));
        sq.pop(S3);
        assert_eq!(sq.head(S3), None);
        assert_eq!(sq.head(S5), Some(c(1)));
    }

    #[test]
    fn qlt_entry_removed_when_queue_drains() {
        let mut sq = SetSequencer::new();
        sq.enqueue(S3, c(0));
        assert_eq!(sq.tracked_sets(), 1);
        sq.pop(S3);
        assert_eq!(sq.tracked_sets(), 0);
    }

    #[test]
    fn remove_from_middle() {
        let mut sq = SetSequencer::new();
        sq.enqueue(S5, c(0));
        sq.enqueue(S5, c(1));
        sq.enqueue(S5, c(2));
        assert!(sq.remove(S5, c(1)));
        assert!(!sq.remove(S5, c(1)));
        assert_eq!(sq.pop(S5), Some(c(0)));
        assert_eq!(sq.pop(S5), Some(c(2)));
    }

    #[test]
    fn contains_reflects_membership() {
        let mut sq = SetSequencer::new();
        sq.enqueue(S5, c(0));
        assert!(sq.contains(S5, c(0)));
        assert!(!sq.contains(S5, c(1)));
        assert!(!sq.contains(S3, c(0)));
    }

    #[test]
    fn high_water_marks() {
        let mut sq = SetSequencer::new();
        sq.enqueue(S3, c(0));
        sq.enqueue(S5, c(1));
        sq.enqueue(S5, c(2));
        sq.pop(S3);
        sq.pop(S5);
        sq.pop(S5);
        assert_eq!(sq.max_tracked_sets(), 2);
        assert_eq!(sq.max_queue_depth(), 2);
        assert_eq!(sq.tracked_sets(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "queued twice")]
    fn double_enqueue_panics_in_debug() {
        let mut sq = SetSequencer::new();
        sq.enqueue(S5, c(0));
        sq.enqueue(S5, c(0));
    }
}
