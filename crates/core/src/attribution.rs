//! Latency attribution and the worst-case witness: where every cycle of
//! a request's latency went, and a replayable record of the request that
//! achieved the run's observed WCL.
//!
//! The WCL experiments prove an inequality — `observed ≤ analytical` —
//! but a scalar cannot explain *why* a request was slow or why the
//! analytical bound is loose on a given configuration. Attribution
//! (enabled with [`SystemConfigBuilder::attribution`]) decomposes each
//! completed request's latency into exact causal [`Component`]s:
//!
//! * **arbitration** — slots spent waiting for the core's own TDM slot
//!   (and the sub-slot alignment between issue and the first boundary);
//! * **writeback** — owned slots the core had to spend transmitting a
//!   write-back (capacity eviction or back-invalidation acknowledgement)
//!   while the request was pending;
//! * **llc_wait** — owned slots in which the LLC could not answer (an
//!   eviction in flight, or a set-sequencer queue ahead of the request);
//! * **bus** — the response slot itself, minus the DRAM portion;
//! * **dram_row_hit / dram_row_empty / dram_row_conflict / dram_flat** —
//!   the DRAM access cycles of the response slot, split by row-buffer
//!   outcome (`dram_flat` for backends without row buffers).
//!
//! The decomposition is exact by construction: for every completed
//! request, the components sum to the recorded latency — in both the
//! reference and the fast-forward engine, which attribute through the
//! same per-slot hooks (the fast engine batches runs of identical
//! component vectors, so the overhead of attribution stays near zero).
//! Attribution only *reads* the simulation: every counter, histogram and
//! event in the report is bit-identical with it on or off.
//!
//! The [`WclWitness`] is the observability half of the worst case: the
//! single request that achieved [`observed max latency`], with its full
//! causal chain — issuing core, slot window, per-component cycles, the
//! interfering cores' concurrent state and the DRAM bank state at
//! service. The witness is *replayable*: [`WclWitness::replay`] re-runs
//! the workload through the reference engine truncated at the witness's
//! completion cycle and must reproduce the exact observed WCL, making
//! the record an independently checkable proof of the measurement.
//!
//! [`SystemConfigBuilder::attribution`]: crate::SystemConfigBuilder::attribution
//! [`observed max latency`]: crate::RunReport::max_request_latency
//!
//! # Examples
//!
//! ```
//! use predllc_core::{Simulator, SystemConfig};
//! use predllc_model::{Address, MemOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SystemConfig::private_partitions(2, 2, 1)?.with_attribution(true);
//! let trace = vec![vec![MemOp::read(Address::new(0)), MemOp::read(Address::new(64))]];
//! let report = Simulator::new(cfg.clone())?.run(trace.clone())?;
//!
//! let attr = report.attribution().expect("attribution was enabled");
//! // Components sum exactly to the total recorded latency.
//! assert_eq!(
//!     attr.total_components().total(),
//!     report.stats.cores[0].total_request_latency,
//! );
//! // The witness is the request that achieved the observed WCL, and
//! // replaying it through the reference engine reproduces it exactly.
//! let witness = attr.witness().expect("requests were measured");
//! assert_eq!(witness.latency, report.max_request_latency());
//! assert!(witness.verify(&cfg, trace)?);
//! # Ok(())
//! # }
//! ```

use predllc_dram::RowOutcome;
use predllc_model::{BankId, CoreId, Cycles, LineAddr};
use predllc_workload::Workload;

use crate::config::SystemConfig;
use crate::engine::Simulator;
use crate::error::SimError;
use crate::histogram::LatencyHistogram;
use crate::llc::MemTraffic;

/// One causal component of a request's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Waiting for the core's own TDM slot (including the sub-slot
    /// alignment between issue and the first boundary).
    Arbitration,
    /// Owned slots spent transmitting the core's own write-backs while
    /// the request was pending.
    Writeback,
    /// Owned slots in which the LLC could not answer the broadcast
    /// request (eviction in flight, sequencer queue ahead of it).
    LlcWait,
    /// The response slot itself, minus its DRAM portion.
    Bus,
    /// DRAM cycles of the response slot that hit the open row.
    DramRowHit,
    /// DRAM cycles of the response slot on a bank with no open row.
    DramRowEmpty,
    /// DRAM cycles of the response slot that conflicted with a
    /// different open row.
    DramRowConflict,
    /// DRAM cycles of the response slot on a flat (row-less) backend.
    DramFlat,
}

impl Component {
    /// Every component, in the canonical reporting order.
    pub const ALL: [Component; 8] = [
        Component::Arbitration,
        Component::Writeback,
        Component::LlcWait,
        Component::Bus,
        Component::DramRowHit,
        Component::DramRowEmpty,
        Component::DramRowConflict,
        Component::DramFlat,
    ];

    /// The component's dense index into [`Component::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Component::Arbitration => 0,
            Component::Writeback => 1,
            Component::LlcWait => 2,
            Component::Bus => 3,
            Component::DramRowHit => 4,
            Component::DramRowEmpty => 5,
            Component::DramRowConflict => 6,
            Component::DramFlat => 7,
        }
    }

    /// A stable snake_case label (used in CSV columns, JSON keys and
    /// metric label values).
    pub const fn label(self) -> &'static str {
        match self {
            Component::Arbitration => "arbitration",
            Component::Writeback => "writeback",
            Component::LlcWait => "llc_wait",
            Component::Bus => "bus",
            Component::DramRowHit => "dram_row_hit",
            Component::DramRowEmpty => "dram_row_empty",
            Component::DramRowConflict => "dram_row_conflict",
            Component::DramFlat => "dram_flat",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Exact cycle counts per [`Component`] — one request's decomposition,
/// or a per-core / system-wide accumulation of many.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ComponentSet {
    cycles: [u64; Component::ALL.len()],
}

impl ComponentSet {
    /// Assembles a set from raw per-component cycle counts in
    /// [`Component::ALL`] order — the inverse of
    /// [`ComponentSet::as_parts`], for lossless wire formats.
    pub const fn from_parts(cycles: [u64; Component::ALL.len()]) -> ComponentSet {
        ComponentSet { cycles }
    }

    /// The raw per-component cycle counts in [`Component::ALL`] order.
    pub const fn as_parts(&self) -> [u64; Component::ALL.len()] {
        self.cycles
    }

    /// The cycles attributed to one component.
    pub fn get(&self, component: Component) -> Cycles {
        Cycles::new(self.cycles[component.index()])
    }

    /// The sum over all components. For a single request this is exactly
    /// the recorded latency; for an accumulation it is exactly the sum
    /// of the recorded latencies.
    pub fn total(&self) -> Cycles {
        Cycles::new(self.cycles.iter().sum())
    }

    /// `(component, cycles)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, Cycles)> + '_ {
        Component::ALL
            .iter()
            .map(|&c| (c, Cycles::new(self.cycles[c.index()])))
    }

    fn add(&mut self, component: Component, cycles: u64) {
        self.cycles[component.index()] += cycles;
    }

    fn accumulate(&mut self, other: &ComponentSet) {
        for (slot, v) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *slot += v;
        }
    }
}

/// One interfering core's state at the moment the witness completed.
///
/// Only engine-invariant state is recorded (both engines process the
/// witness's slot identically), so the snapshot — like the rest of the
/// witness — is bit-identical across engine modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfererSnapshot {
    /// The interfering core.
    pub core: CoreId,
    /// The line of its pending request, if one was issued by then.
    pub pending_line: Option<LineAddr>,
    /// When that pending request was issued.
    pub pending_since: Option<Cycles>,
    /// Write-backs queued in its pending-write-back buffer.
    pub pwb_depth: usize,
    /// Write-backs it had transmitted so far.
    pub writebacks_sent: u64,
    /// Slots in which its requests had been blocked so far.
    pub blocked_slots: u64,
}

/// The request that achieved the run's observed WCL, with its full
/// causal chain — a small, replayable record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WclWitness {
    /// The core whose request achieved the observed WCL.
    pub core: CoreId,
    /// The requested cache line.
    pub line: LineAddr,
    /// The cycle the request was issued (miss detected, L2 charged).
    pub issued_at: Cycles,
    /// The cycle the response landed (end of the service slot).
    pub completed_at: Cycles,
    /// The observed latency: `completed_at − issued_at`.
    pub latency: Cycles,
    /// The slot index in which the request was serviced.
    pub slot: u64,
    /// The exact per-component decomposition of `latency`.
    pub components: ComponentSet,
    /// Every other core's concurrent state at completion.
    pub interferers: Vec<InterfererSnapshot>,
    /// DRAM rows open across the banks when the request was serviced
    /// (`(bank, row)` pairs; empty for flat backends).
    pub open_rows: Vec<(BankId, u64)>,
}

impl WclWitness {
    /// Replays the witness window: re-runs `workload` on `config`'s
    /// platform through the **reference** engine, truncated at the
    /// witness's completion cycle (attribution and event recording off).
    /// Returns the truncated run's worst observed latency — which must
    /// equal [`WclWitness::latency`] exactly, since both engines walk
    /// identical prefixes and the witness was the worst request up to
    /// its completion.
    ///
    /// `config` is the configuration the witness was captured under (the
    /// replay derives its truncated variant from it); `workload` must be
    /// the same workload.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulator::run`] failures.
    pub fn replay<W: Workload>(
        &self,
        config: &SystemConfig,
        workload: W,
    ) -> Result<Cycles, SimError> {
        let cfg = config.witness_replay_config(self.completed_at);
        let sim = Simulator::new(cfg).expect("the witness's configuration was already validated");
        let report = sim.run(workload)?;
        Ok(report.max_request_latency())
    }

    /// Replays the witness window and checks that it reproduces the
    /// observed WCL exactly. See [`WclWitness::replay`].
    ///
    /// # Errors
    ///
    /// Propagates [`Simulator::run`] failures.
    pub fn verify<W: Workload>(
        &self,
        config: &SystemConfig,
        workload: W,
    ) -> Result<bool, SimError> {
        Ok(self.replay(config, workload)? == self.latency)
    }
}

/// The attribution outcome of one run: per-core exact component totals,
/// system-wide per-component latency histograms, and the WCL witness.
///
/// Returned by [`RunReport::attribution`](crate::RunReport::attribution)
/// when the configuration enabled attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionReport {
    per_core: Vec<ComponentSet>,
    histograms: Vec<LatencyHistogram>,
    witness: Option<WclWitness>,
}

impl AttributionReport {
    /// One core's exact per-component cycle totals.
    pub fn core_components(&self, core: CoreId) -> &ComponentSet {
        &self.per_core[core.as_usize()]
    }

    /// Every core's component totals, indexed by core.
    pub fn per_core(&self) -> &[ComponentSet] {
        &self.per_core
    }

    /// The system-wide component totals (all cores summed). Its
    /// [`ComponentSet::total`] equals the sum of every recorded request
    /// latency exactly.
    pub fn total_components(&self) -> ComponentSet {
        let mut total = ComponentSet::default();
        for set in &self.per_core {
            total.accumulate(set);
        }
        total
    }

    /// The system-wide distribution of one component's per-request
    /// contribution. Every completed request records into every
    /// component's histogram (zero when the component did not apply),
    /// so each histogram's count equals the run's request count.
    pub fn histogram(&self, component: Component) -> &LatencyHistogram {
        &self.histograms[component.index()]
    }

    /// The request that achieved the observed WCL (`None` only when no
    /// request completed).
    pub fn witness(&self) -> Option<&WclWitness> {
        self.witness.as_ref()
    }
}

/// The engine-side accumulator: per-request wait counters, run-length
/// batched component records, and the running witness. Lives on the
/// engine only when attribution is enabled; all its hooks are observers.
#[derive(Debug)]
pub(crate) struct AttrState {
    /// Slot width in cycles.
    sw: u64,
    /// Owned slots the in-flight request lost to the core's own
    /// write-backs, per core.
    wait_wb: Vec<u64>,
    /// Owned slots the in-flight request was granted-then-blocked or
    /// stuck behind an eviction, per core.
    wait_blocked: Vec<u64>,
    /// Run-length batch of identical component vectors, per core —
    /// the attribution counterpart of the engine's latency batch.
    batch: Vec<(ComponentSet, u64)>,
    /// Accumulated exact totals, per core.
    totals: Vec<ComponentSet>,
    /// System-wide per-component histograms.
    histograms: Vec<LatencyHistogram>,
    /// The worst request seen so far.
    witness: Option<WclWitness>,
}

impl AttrState {
    pub(crate) fn new(n: usize, slot_width: Cycles) -> Self {
        AttrState {
            sw: slot_width.as_u64(),
            wait_wb: vec![0; n],
            wait_blocked: vec![0; n],
            batch: vec![(ComponentSet::default(), 0); n],
            totals: vec![ComponentSet::default(); n],
            histograms: vec![LatencyHistogram::new(); Component::ALL.len()],
            witness: None,
        }
    }

    /// The slot's owner spent an owned slot on a write-back while its
    /// request was pending.
    pub(crate) fn note_writeback_wait(&mut self, core: usize) {
        self.wait_wb[core] += 1;
    }

    /// The slot's owner had a ready request that made no progress
    /// (stuck behind an eviction, blocked by the LLC, or queued in the
    /// sequencer).
    pub(crate) fn note_blocked_wait(&mut self, core: usize) {
        self.wait_blocked[core] += 1;
    }

    /// A request completed: decompose its latency, accumulate, and
    /// update the witness. `mem` is the service slot's memory traffic;
    /// `snapshot` lazily captures the interferer/bank state and is only
    /// invoked when this completion is a new worst case.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_complete(
        &mut self,
        owner: CoreId,
        line: LineAddr,
        issued: Cycles,
        resume: Cycles,
        slot: u64,
        mem: &[Option<MemTraffic>; 2],
        snapshot: impl FnOnce() -> (Vec<InterfererSnapshot>, Vec<(BankId, u64)>),
    ) {
        let oi = owner.as_usize();
        let latency = (resume - issued).as_u64();

        // The service slot: DRAM first (each access in order, capped by
        // the remaining slot budget), the rest is the bus transfer.
        let mut set = ComponentSet::default();
        let mut budget = self.sw;
        for traffic in mem.iter().flatten() {
            let take = traffic.access.latency.as_u64().min(budget);
            budget -= take;
            let component = match traffic.access.row {
                Some(RowOutcome::Hit) => Component::DramRowHit,
                Some(RowOutcome::Empty) => Component::DramRowEmpty,
                Some(RowOutcome::Conflict) => Component::DramRowConflict,
                None => Component::DramFlat,
            };
            set.add(component, take);
        }
        set.add(Component::Bus, budget);

        // The wait window: counted slots are each one full slot; the
        // remainder is TDM arbitration. Every counted slot started at or
        // after `issued` and before the service slot, so the remainder
        // is never negative.
        let wb = std::mem::take(&mut self.wait_wb[oi]) * self.sw;
        let blocked = std::mem::take(&mut self.wait_blocked[oi]) * self.sw;
        set.add(Component::Writeback, wb);
        set.add(Component::LlcWait, blocked);
        debug_assert!(
            latency >= self.sw + wb + blocked,
            "wait slots exceed the request's latency window"
        );
        set.add(Component::Arbitration, latency - self.sw - wb - blocked);
        debug_assert_eq!(set.total().as_u64(), latency);

        self.totals[oi].accumulate(&set);

        // Witness: the strictly-first completion achieving the running
        // maximum. Completion order is identical across engines, so so
        // is the witness.
        if self
            .witness
            .as_ref()
            .is_none_or(|w| latency > w.latency.as_u64())
        {
            let (interferers, open_rows) = snapshot();
            self.witness = Some(WclWitness {
                core: owner,
                line,
                issued_at: issued,
                completed_at: resume,
                latency: Cycles::new(latency),
                slot,
                components: set.clone(),
                interferers,
                open_rows,
            });
        }

        // Run-length batch into the histograms (runs of identical
        // component vectors are the steady state the fast engine jumps
        // through; histograms are order-independent, so batching cannot
        // change the final distribution).
        let b = &mut self.batch[oi];
        if b.1 > 0 && b.0 == set {
            b.1 += 1;
        } else {
            if b.1 > 0 {
                let (prev, n) = (b.0.clone(), b.1);
                self.flush(&prev, n);
            }
            self.batch[oi] = (set, 1);
        }
    }

    fn flush(&mut self, set: &ComponentSet, n: u64) {
        for &c in &Component::ALL {
            self.histograms[c.index()].record_n(set.get(c), n);
        }
    }

    /// Flushes open batches and produces the report.
    pub(crate) fn into_report(mut self) -> AttributionReport {
        for i in 0..self.batch.len() {
            let (set, n) = std::mem::take(&mut self.batch[i]);
            if n > 0 {
                self.flush(&set, n);
            }
        }
        AttributionReport {
            per_core: self.totals,
            histograms: self.histograms,
            witness: self.witness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_labels_are_stable_and_indexed() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(c.to_string(), c.label());
        }
        assert_eq!(Component::Arbitration.label(), "arbitration");
        assert_eq!(Component::DramRowConflict.label(), "dram_row_conflict");
    }

    #[test]
    fn component_set_sums_exactly() {
        let mut s = ComponentSet::default();
        s.add(Component::Arbitration, 40);
        s.add(Component::Bus, 50);
        s.add(Component::DramFlat, 30);
        assert_eq!(s.get(Component::Bus), Cycles::new(50));
        assert_eq!(s.total(), Cycles::new(120));
        let collected: u64 = s.iter().map(|(_, v)| v.as_u64()).sum();
        assert_eq!(collected, 120);
    }

    #[test]
    fn state_decomposes_a_plain_hit() {
        // latency 140 = 90 arbitration + 50 bus (no DRAM, no waits).
        let mut a = AttrState::new(1, Cycles::new(50));
        a.on_complete(
            CoreId::new(0),
            LineAddr::new(0),
            Cycles::new(10),
            Cycles::new(150),
            2,
            &[None, None],
            || (Vec::new(), Vec::new()),
        );
        let r = a.into_report();
        let set = r.core_components(CoreId::new(0));
        assert_eq!(set.get(Component::Arbitration), Cycles::new(90));
        assert_eq!(set.get(Component::Bus), Cycles::new(50));
        assert_eq!(set.total(), Cycles::new(140));
        // Every component histogram saw exactly one record.
        for &c in &Component::ALL {
            assert_eq!(r.histogram(c).count(), 1);
        }
        let w = r.witness().expect("one completion");
        assert_eq!(w.latency, Cycles::new(140));
        assert_eq!(w.slot, 2);
    }

    #[test]
    fn wait_slots_and_dram_split_the_window() {
        let mut a = AttrState::new(1, Cycles::new(50));
        a.note_writeback_wait(0);
        a.note_blocked_wait(0);
        a.note_blocked_wait(0);
        let traffic = MemTraffic {
            line: LineAddr::new(7),
            write: false,
            access: predllc_dram::MemAccess {
                latency: Cycles::new(30),
                bank: BankId::new(0),
                row: Some(RowOutcome::Conflict),
                waited: Cycles::ZERO,
            },
        };
        // latency 200 = 50 service + 1 wb slot + 2 blocked slots + 0 arb.
        a.on_complete(
            CoreId::new(0),
            LineAddr::new(7),
            Cycles::new(0),
            Cycles::new(200),
            4,
            &[Some(traffic), None],
            || (Vec::new(), Vec::new()),
        );
        let r = a.into_report();
        let set = r.core_components(CoreId::new(0));
        assert_eq!(set.get(Component::Writeback), Cycles::new(50));
        assert_eq!(set.get(Component::LlcWait), Cycles::new(100));
        assert_eq!(set.get(Component::DramRowConflict), Cycles::new(30));
        assert_eq!(set.get(Component::Bus), Cycles::new(20));
        assert_eq!(set.get(Component::Arbitration), Cycles::ZERO);
        assert_eq!(set.total(), Cycles::new(200));
    }

    #[test]
    fn witness_tracks_the_strict_first_maximum() {
        let mut a = AttrState::new(2, Cycles::new(50));
        let complete = |a: &mut AttrState, core: u16, issued: u64, resume: u64, slot: u64| {
            a.on_complete(
                CoreId::new(core),
                LineAddr::new(u64::from(core)),
                Cycles::new(issued),
                Cycles::new(resume),
                slot,
                &[None, None],
                || (Vec::new(), Vec::new()),
            );
        };
        complete(&mut a, 0, 10, 100, 1); // latency 90
        complete(&mut a, 1, 0, 150, 2); // latency 150: new max
        complete(&mut a, 0, 150, 300, 5); // latency 150 again: not strict
        let r = a.into_report();
        let w = r.witness().expect("completions happened");
        assert_eq!(w.core, CoreId::new(1));
        assert_eq!(w.slot, 2);
        assert_eq!(w.latency, Cycles::new(150));
    }

    #[test]
    fn batched_and_unbatched_histograms_agree() {
        // Three identical completions batch into one flush; a fresh
        // state records them as two runs. Distributions must agree.
        let run = |splits: &[u64]| {
            let mut a = AttrState::new(1, Cycles::new(50));
            for &issued in splits {
                a.on_complete(
                    CoreId::new(0),
                    LineAddr::new(0),
                    Cycles::new(issued),
                    Cycles::new(issued + 100),
                    0,
                    &[None, None],
                    || (Vec::new(), Vec::new()),
                );
            }
            a.into_report()
        };
        let a = run(&[0, 0, 0]);
        let b = run(&[0, 0]);
        assert_eq!(a.histogram(Component::Bus).count(), 3);
        assert_eq!(b.histogram(Component::Bus).count(), 2);
        assert_eq!(
            a.histogram(Component::Arbitration).max(),
            b.histogram(Component::Arbitration).max()
        );
    }
}
