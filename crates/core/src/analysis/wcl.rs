//! Theorems 4.7 and 4.8, and the private-partition bound.

use predllc_model::{CoreId, Cycles, SlotWidth};

use crate::config::SystemConfig;
use crate::error::ConfigError;

/// Inputs to the WCL analysis for one core under analysis (`c_ua`).
///
/// # Examples
///
/// The paper's Fig. 7 platform — 4 cores, a shared 1-set × 16-way
/// partition, 64-line private L2, 50-cycle slots — yields exactly the
/// quoted analytical WCLs:
///
/// ```
/// use predllc_core::analysis::WclParams;
/// use predllc_model::SlotWidth;
///
/// let p = WclParams {
///     total_cores: 4,
///     sharers: 4,
///     ways: 16,
///     partition_lines: 16,
///     core_capacity_lines: 64,
///     slot_width: SlotWidth::PAPER,
/// };
/// assert_eq!(p.wcl_set_sequencer().as_u64(), 5_000);
/// assert_eq!(p.wcl_one_slot_tdm().as_u64(), 979_250);
/// assert_eq!(p.wcl_private().as_u64(), 450);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WclParams {
    /// `N`: cores on the TDM bus (period length of the 1S-TDM schedule).
    pub total_cores: u16,
    /// `n`: cores sharing the partition (`n ≤ N`).
    pub sharers: u16,
    /// `w`: ways per set of the partition.
    pub ways: u32,
    /// `M`: partition size in cache lines.
    pub partition_lines: u64,
    /// `m_cua`: the private cache capacity of the core under analysis,
    /// in lines (its L2 size).
    pub core_capacity_lines: u64,
    /// `SW`: the TDM slot width.
    pub slot_width: SlotWidth,
}

impl WclParams {
    /// Extracts the analysis parameters for `core` from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::PartitionCoreOutOfRange`] if `core` is
    /// outside the configured system.
    pub fn for_core(config: &SystemConfig, core: CoreId) -> Result<Self, ConfigError> {
        if core.index() >= config.num_cores() {
            return Err(ConfigError::PartitionCoreOutOfRange {
                core,
                num_cores: config.num_cores(),
            });
        }
        let spec = config.partitions().spec_of(core);
        Ok(WclParams {
            total_cores: config.num_cores(),
            sharers: spec.sharers(),
            ways: spec.ways,
            partition_lines: spec.lines(),
            core_capacity_lines: config.l2().lines(),
            slot_width: config.slot_width(),
        })
    }

    /// [`WclParams::for_core`] for core 0 — convenient when all cores
    /// are symmetric, as in every paper configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`WclParams::for_core`] failures.
    pub fn from_config(config: &SystemConfig) -> Result<Self, ConfigError> {
        WclParams::for_core(config, CoreId::new(0))
    }

    /// `m = min(m_cua, M)`: the most lines the core under analysis can
    /// privately cache out of the partition, i.e. the most write-backs
    /// other cores can force on it.
    pub fn m(&self) -> u64 {
        self.core_capacity_lines.min(self.partition_lines)
    }

    /// `A = 2(n−1) · w · (n−1)`: periods for the distance of all `w`
    /// lines of a set to decay from `n` to 1 (Corollary 4.5 applied `w`
    /// times per unit of distance).
    pub fn interference_factor(&self) -> u64 {
        let n1 = u64::from(self.sharers).saturating_sub(1);
        2 * n1 * u64::from(self.ways) * n1
    }

    /// Theorem 4.7, in slots: `(m+1)·A·N + 1`.
    ///
    /// # Panics
    ///
    /// Panics on arithmetic overflow; use
    /// [`WclParams::wcl_one_slot_tdm_checked`] for adversarial inputs.
    pub fn wcl_one_slot_tdm_slots(&self) -> u64 {
        self.wcl_one_slot_tdm_slots_checked()
            .expect("WCL overflow: use the checked variant")
    }

    /// Theorem 4.7 in slots, `None` on overflow.
    pub fn wcl_one_slot_tdm_slots_checked(&self) -> Option<u64> {
        let m1 = self.m().checked_add(1)?;
        let a = self.interference_factor();
        m1.checked_mul(a)?
            .checked_mul(u64::from(self.total_cores))?
            .checked_add(1)
    }

    /// Theorem 4.7, in cycles: `((m+1)·A·N + 1)·SW`.
    ///
    /// # Panics
    ///
    /// Panics on arithmetic overflow.
    pub fn wcl_one_slot_tdm(&self) -> Cycles {
        self.wcl_one_slot_tdm_checked()
            .expect("WCL overflow: use the checked variant")
    }

    /// Theorem 4.7 in cycles, `None` on overflow.
    pub fn wcl_one_slot_tdm_checked(&self) -> Option<Cycles> {
        Cycles::new(self.wcl_one_slot_tdm_slots_checked()?).checked_mul(self.slot_width.as_u64())
    }

    /// Theorem 4.8, in slots: `(2(n−1)·n + 1)·N`.
    pub fn wcl_set_sequencer_slots(&self) -> u64 {
        let n = u64::from(self.sharers);
        (2 * (n - 1) * n + 1) * u64::from(self.total_cores)
    }

    /// Theorem 4.8, in cycles: `(2(n−1)·n + 1)·N·SW`. Independent of both
    /// the cache capacity and the partition size.
    pub fn wcl_set_sequencer(&self) -> Cycles {
        Cycles::new(self.wcl_set_sequencer_slots()) * self.slot_width.as_u64()
    }

    /// The private-partition WCL, in slots: `2N + 1` — up to one period
    /// to drain a pending write-back, one period to re-reach the core's
    /// slot, and the response slot (the "450 cycles" for `P` in Fig. 7).
    pub fn wcl_private_slots(&self) -> u64 {
        2 * u64::from(self.total_cores) + 1
    }

    /// The private-partition WCL in cycles: `(2N + 1)·SW`.
    pub fn wcl_private(&self) -> Cycles {
        Cycles::new(self.wcl_private_slots()) * self.slot_width.as_u64()
    }

    /// How many times lower the set-sequencer WCL is than the plain
    /// 1S-TDM sharing WCL — the paper's headline metric ("2048 times
    /// lower" for a 128-line 16-way partition; our exact arithmetic gives
    /// ≈1486, see `EXPERIMENTS.md`).
    pub fn improvement_ratio(&self) -> f64 {
        match self.wcl_one_slot_tdm_checked() {
            Some(nss) => nss.as_u64() as f64 / self.wcl_set_sequencer().as_u64() as f64,
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::SharingMode;

    fn paper(ways: u32, partition_lines: u64) -> WclParams {
        WclParams {
            total_cores: 4,
            sharers: 4,
            ways,
            partition_lines,
            core_capacity_lines: 64,
            slot_width: SlotWidth::PAPER,
        }
    }

    #[test]
    fn fig7_analytical_values() {
        // NSS(1,16,4): 979 250 cycles. SS: 5 000. P: 450.
        let p = paper(16, 16);
        assert_eq!(p.m(), 16);
        assert_eq!(p.interference_factor(), 2 * 3 * 16 * 3);
        assert_eq!(p.wcl_one_slot_tdm_slots(), 19_585);
        assert_eq!(p.wcl_one_slot_tdm().as_u64(), 979_250);
        assert_eq!(p.wcl_set_sequencer_slots(), 100);
        assert_eq!(p.wcl_set_sequencer().as_u64(), 5_000);
        assert_eq!(p.wcl_private_slots(), 9);
        assert_eq!(p.wcl_private().as_u64(), 450);
    }

    #[test]
    fn fig7_two_way_variant() {
        // NSS(1,2,4): m = min(64, 2) = 2, A = 2·3·2·3 = 36.
        let p = paper(2, 2);
        assert_eq!(p.wcl_one_slot_tdm_slots(), 3 * 36 * 4 + 1);
        assert_eq!(p.wcl_one_slot_tdm().as_u64(), 21_650);
        // SS does not depend on ways/partition size.
        assert_eq!(p.wcl_set_sequencer().as_u64(), 5_000);
    }

    #[test]
    fn ss_bound_is_independent_of_sizes() {
        let a = paper(2, 2).wcl_set_sequencer();
        let b = paper(16, 512).wcl_set_sequencer();
        assert_eq!(a, b);
    }

    #[test]
    fn headline_ratio_for_128_line_partition() {
        // "a 16-way LLC with 128 cache lines": M = 128 ≥ m_cua would cap
        // at the private capacity, so take m_cua large enough.
        let p = WclParams {
            total_cores: 4,
            sharers: 4,
            ways: 16,
            partition_lines: 128,
            core_capacity_lines: 128,
            slot_width: SlotWidth::PAPER,
        };
        let ratio = p.improvement_ratio();
        // Our exact arithmetic: ((129·288·4)+1)/100 ≈ 1486. The paper
        // rounds/derives 2048; the shape (three orders of magnitude)
        // holds. See EXPERIMENTS.md.
        assert!((1400.0..1600.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn degenerate_single_sharer() {
        let p = WclParams {
            sharers: 1,
            ..paper(4, 64)
        };
        assert_eq!(p.interference_factor(), 0);
        // Theorem 4.7 degenerates to one slot — the private bound is the
        // meaningful one for n = 1.
        assert_eq!(p.wcl_one_slot_tdm_slots(), 1);
        assert_eq!(p.wcl_set_sequencer_slots(), 4);
    }

    #[test]
    fn checked_variants_catch_overflow() {
        let p = WclParams {
            total_cores: u16::MAX,
            sharers: u16::MAX,
            ways: u32::MAX,
            partition_lines: u64::MAX,
            core_capacity_lines: u64::MAX,
            slot_width: SlotWidth::PAPER,
        };
        assert_eq!(p.wcl_one_slot_tdm_slots_checked(), None);
        assert_eq!(p.wcl_one_slot_tdm_checked(), None);
        assert_eq!(p.improvement_ratio(), f64::INFINITY);
    }

    #[test]
    fn from_config_extracts_partition_parameters() {
        let cfg = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer).unwrap();
        let p = WclParams::from_config(&cfg).unwrap();
        assert_eq!(p.total_cores, 4);
        assert_eq!(p.sharers, 4);
        assert_eq!(p.ways, 16);
        assert_eq!(p.partition_lines, 16);
        assert_eq!(p.core_capacity_lines, 64);
        assert_eq!(p.wcl_set_sequencer().as_u64(), 5_000);
    }

    #[test]
    fn for_core_rejects_out_of_range() {
        let cfg = SystemConfig::private_partitions(2, 2, 2).unwrap();
        assert!(WclParams::for_core(&cfg, CoreId::new(7)).is_err());
    }

    #[test]
    fn wcl_grows_with_sharers_without_sequencer() {
        let mut prev = 0;
        for n in 2..=8u16 {
            let p = WclParams {
                total_cores: 8,
                sharers: n,
                ways: 4,
                partition_lines: 32,
                core_capacity_lines: 64,
                slot_width: SlotWidth::PAPER,
            };
            let w = p.wcl_one_slot_tdm_slots();
            assert!(w > prev, "WCL must grow with n");
            prev = w;
        }
    }
}
