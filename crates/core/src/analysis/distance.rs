//! The paper's *distance* dynamics (Definition 4.2, Observations 1–3) as
//! an executable analysis over simulation event logs.
//!
//! The WCL analysis reasons about `d_{c(l)}^{c_ua}`: the number of bus
//! slots from the slot of the core privately caching line `l` to the
//! next slot of the core under analysis. Observation 1 says these
//! distances only decrease while `c_ua` waits without performing
//! write-backs; Observation 3 says a write-back by `c_ua` lets them
//! increase again. [`DistanceTracker`] replays an [`EventLog`] and
//! reports the distance profile of a partition set over time, so both
//! observations can be *measured* instead of taken on faith.

use std::collections::HashMap;

use predllc_bus::TdmSchedule;
use predllc_model::{CoreId, LineAddr};

use crate::events::{EventKind, EventLog};
use crate::llc::SharerSet;
use crate::partition::PartitionSpec;

/// The distance profile of one partition set at one slot boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceSample {
    /// Global slot index the sample was taken at (after the slot's
    /// events were applied).
    pub slot: u64,
    /// For every resident line of the set: `(line, max distance of its
    /// private sharers to c_ua)`. Lines with no private sharers have no
    /// distance (they can be re-used without any other core's slot).
    pub lines: Vec<(LineAddr, Option<u64>)>,
}

impl DistanceSample {
    /// The largest distance in the set, if any line is privately shared.
    pub fn max_distance(&self) -> Option<u64> {
        self.lines.iter().filter_map(|(_, d)| *d).max()
    }

    /// The sum of distances (the "potential" that Observation 1 says
    /// drains while `c_ua` waits write-back-free).
    pub fn total_distance(&self) -> u64 {
        self.lines.iter().filter_map(|(_, d)| *d).sum()
    }
}

/// Replays an event log, tracking which cores privately cache each line
/// of one partition set, and sampling the distance profile at every slot
/// boundary.
///
/// # Examples
///
/// See `examples/distance_observations.rs` and the integration tests in
/// `tests/distance.rs`, which measure Observations 1 and 3 on real
/// simulations.
#[derive(Debug)]
pub struct DistanceTracker<'a> {
    schedule: &'a TdmSchedule,
    spec: &'a PartitionSpec,
    set: u32,
    cua: CoreId,
}

impl<'a> DistanceTracker<'a> {
    /// Creates a tracker for partition-local `set` of `spec`, measuring
    /// distances towards `cua`.
    pub fn new(schedule: &'a TdmSchedule, spec: &'a PartitionSpec, set: u32, cua: CoreId) -> Self {
        DistanceTracker {
            schedule,
            spec,
            set,
            cua,
        }
    }

    /// Replays `events` and returns one sample per slot that touched the
    /// tracked set (plus the slot's end state).
    ///
    /// Sharers are reconstructed from the event stream: a `Fill` makes
    /// the requester the sole sharer and a `Hit` adds one. A
    /// `BackInvalidation` does *not* retire the sharer: in the paper's
    /// accounting an entry under eviction still "belongs" to the core
    /// whose write-back must free it (its distance is what the analysis
    /// counts) until `LineFreed` retires the entry.
    pub fn samples(&self, events: &EventLog) -> Vec<DistanceSample> {
        let mut sharers: HashMap<LineAddr, SharerSet> = HashMap::new();
        let mut resident: Vec<LineAddr> = Vec::new();
        let mut out = Vec::new();
        let mut current_slot: Option<u64> = None;

        let in_set = |line: LineAddr| self.spec.set_of(line).0 == self.set;

        for e in events.events() {
            if current_slot.is_some_and(|s| s != e.slot) {
                out.push(self.sample(current_slot.unwrap(), &resident, &sharers));
            }
            current_slot = Some(e.slot);
            match e.kind {
                EventKind::Fill { core, line } if in_set(line) => {
                    let mut s = SharerSet::EMPTY;
                    s.insert(core);
                    sharers.insert(line, s);
                    if !resident.contains(&line) {
                        resident.push(line);
                    }
                }
                EventKind::Hit { core, line } if in_set(line) => {
                    sharers.entry(line).or_insert(SharerSet::EMPTY).insert(core);
                }
                EventKind::LineFreed { line, .. } if in_set(line) => {
                    sharers.remove(&line);
                    resident.retain(|&l| l != line);
                }
                _ => {}
            }
        }
        if let Some(slot) = current_slot {
            out.push(self.sample(slot, &resident, &sharers));
        }
        out
    }

    fn sample(
        &self,
        slot: u64,
        resident: &[LineAddr],
        sharers: &HashMap<LineAddr, SharerSet>,
    ) -> DistanceSample {
        let lines = resident
            .iter()
            .map(|&line| {
                let d = sharers.get(&line).and_then(|s| {
                    s.iter()
                        .filter_map(|c| self.schedule.distance(c, self.cua).ok())
                        .max()
                });
                (line, d)
            })
            .collect();
        DistanceSample { slot, lines }
    }
}

/// Checks Observation 1 over a window of samples: while `c_ua` performs
/// no write-backs, the set's total distance never increases between
/// consecutive samples taken at `c_ua`-relevant boundaries.
///
/// Returns the first violating pair of slots, if any.
pub fn check_nonincreasing(samples: &[DistanceSample]) -> Result<(), (u64, u64)> {
    for w in samples.windows(2) {
        if w[1].total_distance() > w[0].total_distance() {
            return Err((w[0].slot, w[1].slot));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventLog;
    use crate::partition::SharingMode;
    use predllc_model::Cycles;

    fn spec() -> PartitionSpec {
        PartitionSpec::shared(1, 2, CoreId::first(4).collect(), SharingMode::BestEffort)
    }

    fn log(entries: &[(u64, EventKind)]) -> EventLog {
        let mut l = EventLog::new(true);
        for &(slot, kind) in entries {
            l.push(Cycles::new(slot * 50), slot, kind);
        }
        l
    }

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn fill_sets_single_sharer_distance() {
        let schedule = TdmSchedule::one_slot(4);
        let spec = spec();
        // c3 fills line 0: d_{c3}^{c0} = 1 (schedule {c0,c1,c2,c3}).
        let events = log(&[(
            3,
            EventKind::Fill {
                core: c(3),
                line: l(0),
            },
        )]);
        let t = DistanceTracker::new(&schedule, &spec, 0, c(0));
        let s = t.samples(&events);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].lines, vec![(l(0), Some(1))]);
        assert_eq!(s[0].max_distance(), Some(1));
    }

    #[test]
    fn hit_adds_sharer_and_max_distance_wins() {
        let schedule = TdmSchedule::one_slot(4);
        let spec = spec();
        // c3 fills (d=1), then c1 hits (d_{c1}^{c0} = 3): max is 3.
        let events = log(&[
            (
                3,
                EventKind::Fill {
                    core: c(3),
                    line: l(0),
                },
            ),
            (
                5,
                EventKind::Hit {
                    core: c(1),
                    line: l(0),
                },
            ),
        ]);
        let t = DistanceTracker::new(&schedule, &spec, 0, c(0));
        let s = t.samples(&events);
        assert_eq!(s.last().unwrap().lines, vec![(l(0), Some(3))]);
    }

    #[test]
    fn owner_keeps_distance_until_freed() {
        let schedule = TdmSchedule::one_slot(4);
        let spec = spec();
        let events = log(&[
            (
                3,
                EventKind::Fill {
                    core: c(3),
                    line: l(0),
                },
            ),
            (
                4,
                EventKind::BackInvalidation {
                    core: c(3),
                    line: l(0),
                },
            ),
            (
                7,
                EventKind::LineFreed {
                    line: l(0),
                    partition: predllc_model::PartitionId::new(0),
                },
            ),
        ]);
        let t = DistanceTracker::new(&schedule, &spec, 0, c(0));
        let s = t.samples(&events);
        // The invalidated-but-unacknowledged entry still counts against
        // its owner's distance (the analysis charges c3's write-back
        // slot); only the free retires it.
        assert_eq!(s[1].lines, vec![(l(0), Some(1))]);
        assert!(s[2].lines.is_empty());
        assert_eq!(s[2].total_distance(), 0);
    }

    #[test]
    fn lines_of_other_sets_are_ignored() {
        let schedule = TdmSchedule::one_slot(4);
        // 2-set partition: line 1 maps to set 1 and must be invisible to
        // a set-0 tracker.
        let spec = PartitionSpec::shared(2, 2, CoreId::first(4).collect(), SharingMode::BestEffort);
        let events = log(&[
            (
                1,
                EventKind::Fill {
                    core: c(1),
                    line: l(1),
                },
            ),
            (
                2,
                EventKind::Fill {
                    core: c(2),
                    line: l(2),
                },
            ),
        ]);
        let t = DistanceTracker::new(&schedule, &spec, 0, c(0));
        let s = t.samples(&events);
        assert_eq!(s.last().unwrap().lines, vec![(l(2), Some(2))]);
    }

    #[test]
    fn nonincreasing_checker_flags_increase() {
        let a = DistanceSample {
            slot: 1,
            lines: vec![(l(0), Some(1))],
        };
        let b = DistanceSample {
            slot: 2,
            lines: vec![(l(0), Some(3))],
        };
        assert_eq!(check_nonincreasing(&[a.clone(), b.clone()]), Err((1, 2)));
        assert_eq!(check_nonincreasing(&[b, a]), Ok(()));
        assert_eq!(check_nonincreasing(&[]), Ok(()));
    }
}
