//! Adversarial trace construction: workloads that drive the simulator
//! toward the analytical worst cases.
//!
//! These are deterministic (no randomness): reproducing the critical
//! instance is about *structure* — forcing every access into one
//! partition set and keeping the set full of other cores' lines — not
//! about sampling.

use predllc_model::{Address, CoreId, LineAddr, MemOp};

use crate::partition::PartitionSpec;

/// Addresses (one per line) that all map to partition-local `set` of a
/// partition with `sets` sets, for the standard 64-byte lines.
///
/// With the simulator's modulo set mapping, line `l` maps to
/// `l mod sets`, so the `k`-th conflicting line is `set + k·sets`.
///
/// # Examples
///
/// ```
/// use predllc_core::analysis::critical::conflicting_lines;
///
/// let lines: Vec<_> = conflicting_lines(8, 3).take(3).collect();
/// assert_eq!(lines[0].as_u64(), 3);
/// assert_eq!(lines[1].as_u64(), 11);
/// assert_eq!(lines[2].as_u64(), 19);
/// ```
pub fn conflicting_lines(sets: u32, set: u32) -> impl Iterator<Item = LineAddr> {
    let sets = u64::from(sets);
    let set = u64::from(set);
    (0..).map(move |k| LineAddr::new(set + k * sets))
}

/// A trace of `count` reads cycling through `distinct` lines that all
/// collide in partition-local `set`, offset so that different cores use
/// disjoint lines (the paper's disjoint-address-range rule).
///
/// Core `i` uses lines `{set + (i·distinct + j)·sets | j < distinct}`.
pub fn set_thrash_trace(
    spec: &PartitionSpec,
    set: u32,
    core: CoreId,
    distinct: usize,
    count: usize,
) -> Vec<MemOp> {
    let base = core.as_usize() * distinct;
    let lines: Vec<LineAddr> = conflicting_lines(spec.sets, set)
        .skip(base)
        .take(distinct)
        .collect();
    (0..count)
        .map(|k| MemOp::read(Address::new(lines[k % distinct].as_u64() * 64)))
        .collect()
}

/// The Fig. 2 unbounded-WCL workload: the core under analysis wants one
/// line; the interferer ping-pongs **writes** to two other lines of the
/// same set forever (long enough to outlast any simulation cap).
///
/// The interferer must write: only a dirty private copy forces the
/// `Evict l → WB l` round trip whose free-then-reoccupy loop starves the
/// core under analysis (clean copies invalidate without a bus slot, so
/// the freed entry would go to the starved core immediately).
///
/// Returns `(cua_trace, interferer_trace)`.
pub fn fig2_traces(spec: &PartitionSpec, repetitions: usize) -> (Vec<MemOp>, Vec<MemOp>) {
    let mut lines = conflicting_lines(spec.sets, 0);
    let x = lines.next().expect("infinite iterator");
    let a = lines.next().expect("infinite iterator");
    let b = lines.next().expect("infinite iterator");
    let cua = vec![MemOp::read(Address::new(x.as_u64() * 64))];
    let interferer = (0..repetitions)
        .map(|k| {
            let l = if k % 2 == 0 { a } else { b };
            MemOp::write(Address::new(l.as_u64() * 64))
        })
        .collect();
    (cua, interferer)
}

/// A WCL stress workload for `n` cores sharing `spec`: every core cycles
/// through `ways + 1` distinct conflicting lines of set 0, with writes
/// mixed in so that evictions produce dirty write-backs (the write-backs
/// are what drive the distance dynamics of Observation 3).
pub fn wcl_stress_traces(spec: &PartitionSpec, ops_per_core: usize) -> Vec<Vec<MemOp>> {
    let distinct = spec.ways as usize + 1;
    spec.cores
        .iter()
        .map(|&core| {
            let mut t = set_thrash_trace(spec, 0, core, distinct, ops_per_core);
            // Every third access writes, creating dirty private lines.
            for (i, op) in t.iter_mut().enumerate() {
                if i % 3 == 0 {
                    *op = MemOp::write(op.addr);
                }
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::SharingMode;

    fn spec(sets: u32, ways: u32, n: u16) -> PartitionSpec {
        PartitionSpec::shared(
            sets,
            ways,
            CoreId::first(n).collect(),
            SharingMode::BestEffort,
        )
    }

    #[test]
    fn conflicting_lines_all_hit_the_target_set() {
        let s = spec(8, 2, 2);
        for line in conflicting_lines(8, 5).take(16) {
            assert_eq!(s.set_of(line).0, 5);
        }
    }

    #[test]
    fn thrash_traces_are_disjoint_across_cores() {
        let s = spec(4, 2, 3);
        let t0 = set_thrash_trace(&s, 0, CoreId::new(0), 3, 30);
        let t1 = set_thrash_trace(&s, 0, CoreId::new(1), 3, 30);
        let lines0: std::collections::HashSet<u64> =
            t0.iter().map(|op| op.addr.line().as_u64()).collect();
        let lines1: std::collections::HashSet<u64> =
            t1.iter().map(|op| op.addr.line().as_u64()).collect();
        assert!(lines0.is_disjoint(&lines1));
        assert_eq!(lines0.len(), 3);
        // All map to set 0.
        for op in t0.iter().chain(&t1) {
            assert_eq!(s.set_of(op.addr.line()).0, 0);
        }
    }

    #[test]
    fn fig2_traces_share_one_set_but_not_lines() {
        let s = spec(1, 2, 2);
        let (cua, intf) = fig2_traces(&s, 10);
        assert_eq!(cua.len(), 1);
        assert_eq!(intf.len(), 10);
        let cua_line = cua[0].addr.line();
        assert!(intf.iter().all(|op| op.addr.line() != cua_line));
        // The interferer writes (dirty copies force the WB round trip).
        assert!(intf.iter().all(|op| op.kind.is_write()));
        // Interferer alternates exactly two lines.
        let distinct: std::collections::HashSet<u64> =
            intf.iter().map(|op| op.addr.line().as_u64()).collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn stress_traces_cover_ways_plus_one_lines_and_mix_writes() {
        let s = spec(2, 4, 2);
        let traces = wcl_stress_traces(&s, 20);
        assert_eq!(traces.len(), 2);
        for t in &traces {
            let distinct: std::collections::HashSet<u64> =
                t.iter().map(|op| op.addr.line().as_u64()).collect();
            assert_eq!(distinct.len(), 5); // ways + 1
            assert!(t.iter().any(|op| op.kind.is_write()));
            assert!(t.iter().any(|op| !op.kind.is_write()));
        }
    }
}
