//! Memory-aware schedulability: from WCL bounds to response-time
//! analysis.
//!
//! The paper's closing vision is that designers "judiciously share
//! partitions with a subset of cores, and isolate others … depend\[ing\]
//! on their performance and real-time requirements". This module makes
//! that trade executable: every LLC request of a task costs at most the
//! partition's WCL bound, so a task's memory-aware worst-case execution
//! time is
//!
//! ```text
//! C_i = C_i^{compute} + (LLC requests)_i × WCL(partition of core i)
//! ```
//!
//! and the classical fixed-priority response-time analysis
//! (`R = C + Σ_{higher prio} ⌈R/T_j⌉·C_j`, Joseph & Pandya) then decides
//! schedulability per core. One task per core (the paper's system
//! model), so the interference term is empty and the per-task test
//! reduces to `C_i ≤ D_i` — but the module also supports several tasks
//! sharing a core (the consolidation case the introduction motivates),
//! where the full fixed-point matters.

use predllc_model::{CoreId, Cycles};

use crate::analysis::bounds::{classify_schedule, WclBound};
use crate::config::SystemConfig;
use crate::error::ConfigError;

/// One task's timing parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskParams {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// The core the task runs on.
    pub core: CoreId,
    /// Activation period.
    pub period: Cycles,
    /// Relative deadline (≤ period for this analysis).
    pub deadline: Cycles,
    /// Worst-case execution time excluding LLC request stalls (pure
    /// compute plus private-cache hits).
    pub compute: Cycles,
    /// Worst-case number of LLC requests per activation (private-cache
    /// misses; from static analysis or a measured bound).
    pub llc_requests: u64,
}

impl TaskParams {
    /// The memory-aware WCET: compute time plus every LLC request at the
    /// partition's WCL bound.
    ///
    /// Returns `None` if the arithmetic overflows (astronomical WCLs).
    pub fn wcet(&self, wcl: Cycles) -> Option<Cycles> {
        wcl.checked_mul(self.llc_requests)
            .and_then(|m| m.checked_add(self.compute))
    }
}

/// The verdict for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtaResult {
    /// Task name.
    pub name: String,
    /// The memory-aware WCET used.
    pub wcet: Cycles,
    /// The worst-case response time, if the fixed point converged within
    /// the deadline horizon.
    pub response_time: Option<Cycles>,
    /// Whether the task meets its deadline.
    pub schedulable: bool,
}

/// Memory-aware response-time analysis for a set of tasks on a
/// configured platform.
///
/// Tasks on the same core are scheduled fixed-priority preemptive in
/// list order (earlier = higher priority); tasks on different cores only
/// interact through the LLC, which the WCL bound already accounts for.
///
/// # Examples
///
/// ```
/// use predllc_core::analysis::{TaskParams, TaskSetAnalysis};
/// use predllc_core::{SharingMode, SystemConfig};
/// use predllc_model::{CoreId, Cycles};
///
/// # fn main() -> Result<(), predllc_core::ConfigError> {
/// let cfg = SystemConfig::shared_partition(8, 4, 2, SharingMode::SetSequencer)?;
/// let tasks = vec![TaskParams {
///     name: "control".into(),
///     core: CoreId::new(0),
///     period: Cycles::new(1_000_000),
///     deadline: Cycles::new(1_000_000),
///     compute: Cycles::new(100_000),
///     llc_requests: 200,
/// }];
/// let results = TaskSetAnalysis::new(&cfg, tasks).analyze()?;
/// assert!(results[0].schedulable);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TaskSetAnalysis<'a> {
    config: &'a SystemConfig,
    tasks: Vec<TaskParams>,
}

impl<'a> TaskSetAnalysis<'a> {
    /// Creates an analysis over `tasks` on `config`.
    pub fn new(config: &'a SystemConfig, tasks: Vec<TaskParams>) -> Self {
        TaskSetAnalysis { config, tasks }
    }

    /// Runs the analysis, returning one verdict per task (input order).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if a task names a core outside the
    /// configuration.
    ///
    /// A task whose core's WCL is unbounded (or not covered by the
    /// paper's analysis) is reported unschedulable with no response
    /// time rather than an error: that is the analysis' verdict.
    pub fn analyze(&self) -> Result<Vec<RtaResult>, ConfigError> {
        // Resolve each task's memory-aware WCET.
        let mut wcets: Vec<Option<Cycles>> = Vec::with_capacity(self.tasks.len());
        for t in &self.tasks {
            let wcl = match classify_schedule(self.config, t.core)? {
                WclBound::Bounded(c) => Some(c),
                WclBound::Unbounded { .. } | WclBound::NotCovered => None,
            };
            wcets.push(wcl.and_then(|w| t.wcet(w)));
        }

        let mut out = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            let Some(wcet) = wcets[i] else {
                out.push(RtaResult {
                    name: t.name.clone(),
                    wcet: Cycles::ZERO,
                    response_time: None,
                    schedulable: false,
                });
                continue;
            };
            // Higher-priority tasks on the same core: earlier in list.
            let hp: Vec<(Cycles, Cycles)> = self.tasks[..i]
                .iter()
                .zip(&wcets[..i])
                .filter(|(other, _)| other.core == t.core)
                .filter_map(|(other, w)| w.map(|w| (other.period, w)))
                .collect();
            let response = fixed_point_response(wcet, &hp, t.deadline);
            let schedulable = response.is_some_and(|r| r <= t.deadline);
            out.push(RtaResult {
                name: t.name.clone(),
                wcet,
                response_time: response,
                schedulable,
            });
        }
        Ok(out)
    }

    /// Whether every task is schedulable.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSetAnalysis::analyze`] failures.
    pub fn is_schedulable(&self) -> Result<bool, ConfigError> {
        Ok(self.analyze()?.iter().all(|r| r.schedulable))
    }
}

/// Joseph–Pandya fixed point: `R = C + Σ ⌈R/T_j⌉·C_j`, iterated until
/// stable or past `horizon` (then `None`).
fn fixed_point_response(
    wcet: Cycles,
    higher_priority: &[(Cycles, Cycles)],
    horizon: Cycles,
) -> Option<Cycles> {
    let mut r = wcet;
    loop {
        let mut next = wcet;
        for &(period, cost) in higher_priority {
            let activations = r.as_u64().div_ceil(period.as_u64().max(1));
            next = next.checked_add(cost.checked_mul(activations)?)?;
        }
        if next == r {
            return Some(r);
        }
        if next > horizon {
            return None;
        }
        r = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::SharingMode;

    fn task(name: &str, core: u16, period: u64, compute: u64, reqs: u64) -> TaskParams {
        TaskParams {
            name: name.into(),
            core: CoreId::new(core),
            period: Cycles::new(period),
            deadline: Cycles::new(period),
            compute: Cycles::new(compute),
            llc_requests: reqs,
        }
    }

    #[test]
    fn wcet_combines_compute_and_memory() {
        let t = task("t", 0, 1_000_000, 5_000, 100);
        assert_eq!(t.wcet(Cycles::new(450)), Some(Cycles::new(50_000)));
        assert_eq!(t.wcet(Cycles::new(u64::MAX)), None);
    }

    #[test]
    fn single_task_per_core_reduces_to_wcet_check() {
        // SS(8,4,2): WCL = (2·1·2+1)·2·50 = 500 cycles.
        let cfg = SystemConfig::shared_partition(8, 4, 2, SharingMode::SetSequencer).unwrap();
        let tasks = vec![
            task("ok", 0, 1_000_000, 100_000, 1_000), // 100k + 500k = 600k ≤ 1M
            task("too-hungry", 1, 1_000_000, 100_000, 2_000), // 100k + 1M > 1M
        ];
        let res = TaskSetAnalysis::new(&cfg, tasks).analyze().unwrap();
        assert!(res[0].schedulable);
        assert_eq!(res[0].response_time, Some(res[0].wcet));
        assert!(!res[1].schedulable);
    }

    #[test]
    fn private_partition_admits_more_requests() {
        // The same task that fails under NSS sharing passes with a
        // private partition — the paper's partition-choice story.
        let nss = SystemConfig::shared_partition(8, 4, 2, SharingMode::BestEffort).unwrap();
        let private = SystemConfig::private_partitions(8, 4, 2).unwrap();
        let t = vec![task("hungry", 0, 10_000_000, 100_000, 3_000)];
        // NSS WCL = ((m+1)·A·N+1)·SW with m=min(64,32)=32, A=2·1·4·1=8:
        // (33·8·2+1)·50 = 26 450 cycles → 3k requests ≈ 79M > 10M.
        assert!(!TaskSetAnalysis::new(&nss, t.clone())
            .is_schedulable()
            .unwrap());
        // P: 250-cycle bound → 100k + 750k = 850k ≤ 10M.
        assert!(TaskSetAnalysis::new(&private, t).is_schedulable().unwrap());
    }

    #[test]
    fn rta_accounts_for_higher_priority_interference() {
        let cfg = SystemConfig::private_partitions(8, 4, 1).unwrap();
        // Private 1-core bound: (2·1+1)·50 = 150 cycles.
        // hi: period 1000, wcet = 100 + 1·150 = 250.
        // lo: wcet = 100 + 0 = 100; R = 100 + ⌈R/1000⌉·250 → 350.
        let tasks = vec![task("hi", 0, 1_000, 100, 1), task("lo", 0, 2_000, 100, 0)];
        let res = TaskSetAnalysis::new(&cfg, tasks).analyze().unwrap();
        assert_eq!(res[0].response_time, Some(Cycles::new(250)));
        assert_eq!(res[1].response_time, Some(Cycles::new(350)));
        assert!(res[1].schedulable);
    }

    #[test]
    fn rta_detects_overload() {
        let cfg = SystemConfig::private_partitions(8, 4, 1).unwrap();
        let tasks = vec![
            task("hog", 0, 1_000, 900, 0),
            task("starved", 0, 5_000, 800, 0),
        ];
        let res = TaskSetAnalysis::new(&cfg, tasks).analyze().unwrap();
        assert!(res[0].schedulable);
        // R = 800 + ⌈R/1000⌉·900 diverges past the 5000 deadline.
        assert_eq!(res[1].response_time, None);
        assert!(!res[1].schedulable);
    }

    #[test]
    fn unbounded_partitions_are_unschedulable() {
        use crate::partition::PartitionSpec;
        use predllc_bus::TdmSchedule;
        let schedule =
            TdmSchedule::new(vec![CoreId::new(0), CoreId::new(1), CoreId::new(1)]).unwrap();
        let cfg = crate::config::SystemConfigBuilder::new(2)
            .schedule(schedule)
            .partitions(vec![PartitionSpec::shared(
                1,
                2,
                vec![CoreId::new(0), CoreId::new(1)],
                SharingMode::BestEffort,
            )])
            .build()
            .unwrap();
        let res = TaskSetAnalysis::new(&cfg, vec![task("t", 0, 1_000_000, 10, 1)])
            .analyze()
            .unwrap();
        assert!(!res[0].schedulable);
        assert_eq!(res[0].response_time, None);
    }

    #[test]
    fn out_of_range_core_is_an_error() {
        let cfg = SystemConfig::private_partitions(8, 4, 1).unwrap();
        let err = TaskSetAnalysis::new(&cfg, vec![task("t", 7, 1_000, 10, 0)]).analyze();
        assert!(err.is_err());
    }

    #[test]
    fn tasks_on_different_cores_do_not_interfere_in_rta() {
        let cfg = SystemConfig::private_partitions(8, 4, 2).unwrap();
        let tasks = vec![
            task("c0-hog", 0, 1_000, 900, 0),
            task("c1-task", 1, 1_000, 900, 0), // would be unschedulable behind the hog
        ];
        let res = TaskSetAnalysis::new(&cfg, tasks).analyze().unwrap();
        assert!(
            res[1].schedulable,
            "different core: no preemption interference"
        );
        assert_eq!(res[1].response_time, Some(Cycles::new(900)));
    }
}
