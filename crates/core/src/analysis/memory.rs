//! Memory-aware extension of the WCL analysis: the slot-budget
//! invariant and worst-case bounds that fold in the configured memory
//! backend.
//!
//! The theorems of §4 count *slots*; their premise is the system-model
//! requirement that any LLC response — including a miss fill's DRAM
//! access — completes within the requester's slot. With pluggable
//! memory backends that premise becomes a checkable quantity: the
//! backend's analytical worst-case access latency must fit in the slot
//! width. [`SlotBudget`] makes the check explicit and [`MemoryAwareWcl`]
//! returns the paper's bounds only when it holds, so a WCL number can
//! never silently rest on an invalid slot provisioning.

use predllc_model::{Cycles, SlotWidth};

use crate::analysis::WclParams;
use crate::config::SystemConfig;
use crate::error::ConfigError;
use crate::partition::SharingMode;

/// The slot-budget invariant: worst-case memory access vs. slot width.
///
/// # Examples
///
/// ```
/// use predllc_core::analysis::SlotBudget;
/// use predllc_core::{SharingMode, SystemConfig};
///
/// # fn main() -> Result<(), predllc_core::ConfigError> {
/// let cfg = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer)?;
/// let budget = SlotBudget::from_config(&cfg);
/// assert!(budget.is_valid());
/// assert_eq!(budget.slack().as_u64(), 20); // 50-cycle slot, 30-cycle worst case
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotBudget {
    /// The TDM slot width.
    pub slot_width: SlotWidth,
    /// The memory backend's analytical worst-case access latency.
    pub memory_worst_case: Cycles,
}

impl SlotBudget {
    /// Extracts the budget from a configuration.
    pub fn from_config(config: &SystemConfig) -> Self {
        SlotBudget {
            slot_width: config.slot_width(),
            memory_worst_case: config.memory().worst_case_latency(),
        }
    }

    /// Whether the invariant holds: the worst-case access is strictly
    /// inside the slot (leaving at least one cycle for the tag lookup).
    /// Every configuration built through [`crate::SystemConfigBuilder`]
    /// satisfies this by construction.
    pub fn is_valid(&self) -> bool {
        self.memory_worst_case < self.slot_width.cycles()
    }

    /// Cycles left in a slot after a worst-case memory access (zero when
    /// the invariant is violated).
    pub fn slack(&self) -> Cycles {
        self.slot_width
            .cycles()
            .saturating_sub(self.memory_worst_case)
    }
}

/// The paper's WCL bounds, guarded by the slot-budget invariant of the
/// configured memory backend.
///
/// Each bound returns `None` when the invariant does not hold — the
/// slot-count theorems are unsound for such a platform, so no number is
/// better than a wrong one.
///
/// # Examples
///
/// ```
/// use predllc_core::analysis::MemoryAwareWcl;
/// use predllc_core::{SharingMode, SystemConfig};
///
/// # fn main() -> Result<(), predllc_core::ConfigError> {
/// let cfg = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer)?;
/// let wcl = MemoryAwareWcl::from_config(&cfg)?;
/// assert_eq!(wcl.bound().unwrap().as_u64(), 5_000); // Theorem 4.8
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAwareWcl {
    budget: SlotBudget,
    params: WclParams,
    mode: Option<SharingMode>,
}

impl MemoryAwareWcl {
    /// Extracts the analysis inputs for core 0 (all paper configurations
    /// are symmetric).
    ///
    /// # Errors
    ///
    /// Propagates [`WclParams::from_config`] failures.
    pub fn from_config(config: &SystemConfig) -> Result<Self, ConfigError> {
        let spec = config.partitions().spec_of(predllc_model::CoreId::new(0));
        let mode = if spec.is_private() {
            None
        } else {
            Some(spec.mode)
        };
        Ok(MemoryAwareWcl {
            budget: SlotBudget::from_config(config),
            params: WclParams::from_config(config)?,
            mode,
        })
    }

    /// The slot budget the bounds are conditioned on.
    pub fn budget(&self) -> SlotBudget {
        self.budget
    }

    /// Theorem 4.8 (set sequencer), or `None` if the slot budget is
    /// invalid.
    pub fn wcl_set_sequencer(&self) -> Option<Cycles> {
        self.budget
            .is_valid()
            .then(|| self.params.wcl_set_sequencer())
    }

    /// Theorem 4.7 (1S-TDM sharing without the sequencer), or `None` if
    /// the slot budget is invalid or the formula overflows.
    pub fn wcl_one_slot_tdm(&self) -> Option<Cycles> {
        if !self.budget.is_valid() {
            return None;
        }
        self.params.wcl_one_slot_tdm_checked()
    }

    /// The private-partition bound `(2N+1)·SW`, or `None` if the slot
    /// budget is invalid.
    pub fn wcl_private(&self) -> Option<Cycles> {
        self.budget.is_valid().then(|| self.params.wcl_private())
    }

    /// The bound applicable to the analyzed core's partition (private,
    /// sequenced, or best-effort), or `None` if the slot budget is
    /// invalid or the applicable formula overflows.
    pub fn bound(&self) -> Option<Cycles> {
        match self.mode {
            None => self.wcl_private(),
            Some(SharingMode::SetSequencer) => self.wcl_set_sequencer(),
            Some(SharingMode::BestEffort) => self.wcl_one_slot_tdm(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_dram::MemoryConfig;
    use predllc_model::CoreId;

    use crate::partition::PartitionSpec;
    use crate::SystemConfig;

    fn private4(memory: MemoryConfig) -> SystemConfig {
        SystemConfig::builder(4)
            .partitions(
                CoreId::first(4)
                    .map(|c| PartitionSpec::private(1, 2, c))
                    .collect(),
            )
            .memory(memory)
            .build()
            .unwrap()
    }

    #[test]
    fn budget_reflects_backend_worst_case() {
        let fixed = private4(MemoryConfig::fixed(Cycles::new(42)));
        let b = SlotBudget::from_config(&fixed);
        assert_eq!(b.memory_worst_case, Cycles::new(42));
        assert_eq!(b.slack(), Cycles::new(8));
        assert!(b.is_valid());

        // Banked paper timing: same 30-cycle worst case as the default.
        let banked = private4(MemoryConfig::banked());
        assert_eq!(
            SlotBudget::from_config(&banked).memory_worst_case,
            Cycles::new(30)
        );
    }

    #[test]
    fn invalid_budget_voids_every_bound() {
        // A hand-built budget (the builder would reject this platform).
        let b = SlotBudget {
            slot_width: SlotWidth::PAPER,
            memory_worst_case: Cycles::new(50),
        };
        assert!(!b.is_valid());
        assert_eq!(b.slack(), Cycles::ZERO);
        let cfg = private4(MemoryConfig::banked());
        let mut wcl = MemoryAwareWcl::from_config(&cfg).unwrap();
        assert!(wcl.bound().is_some());
        wcl.budget = b;
        assert_eq!(wcl.wcl_private(), None);
        assert_eq!(wcl.wcl_set_sequencer(), None);
        assert_eq!(wcl.wcl_one_slot_tdm(), None);
        assert_eq!(wcl.bound(), None);
    }

    #[test]
    fn bound_picks_the_applicable_theorem() {
        use crate::partition::SharingMode;
        let ss = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer).unwrap();
        assert_eq!(
            MemoryAwareWcl::from_config(&ss).unwrap().bound().unwrap(),
            Cycles::new(5_000)
        );
        let nss = SystemConfig::shared_partition(1, 16, 4, SharingMode::BestEffort).unwrap();
        assert_eq!(
            MemoryAwareWcl::from_config(&nss).unwrap().bound().unwrap(),
            Cycles::new(979_250)
        );
        let p = SystemConfig::private_partitions(1, 2, 4).unwrap();
        assert_eq!(
            MemoryAwareWcl::from_config(&p).unwrap().bound().unwrap(),
            Cycles::new(450)
        );
    }
}
