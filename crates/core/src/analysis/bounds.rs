//! Boundedness classification of TDM schedules for shared partitions.
//!
//! §4.1 of the paper shows the WCL is *unbounded* when another core
//! sharing the partition "is allowed to access the LLC multiple times
//! before `c_ua` can access the bus again": the interferer frees an entry
//! with a write-back in one slot and re-occupies it with a request in a
//! second slot, indefinitely. §4.2's 1S-TDM restriction (one slot per
//! core per period) excludes exactly that pattern.
//!
//! [`classify_schedule`] makes the argument executable: it finds a
//! concrete interference witness or applies Theorem 4.7/4.8.

use predllc_bus::TdmSchedule;
use predllc_model::{CoreId, Cycles};

use crate::analysis::WclParams;
use crate::config::SystemConfig;
use crate::error::ConfigError;
use crate::partition::SharingMode;

/// The result of classifying a core's WCL under a given schedule and
/// partitioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WclBound {
    /// A concrete unbounded-interference witness exists (§4.1).
    Unbounded {
        /// A partition-sharing core with two or more slots inside one of
        /// `c_ua`'s inter-slot gaps.
        interferer: CoreId,
        /// How many of the interferer's slots fall in that gap.
        slots_in_gap: u64,
    },
    /// The schedule is 1S-TDM; the bound follows from Theorem 4.7 or 4.8
    /// (or the private-partition bound).
    Bounded(Cycles),
    /// The schedule is not 1S-TDM but no §4.1 witness exists (e.g. the
    /// core under analysis itself holds multiple slots). The paper's
    /// analysis does not cover this case.
    NotCovered,
}

impl WclBound {
    /// The bound in cycles, if bounded.
    pub fn cycles(&self) -> Option<Cycles> {
        match self {
            WclBound::Bounded(c) => Some(*c),
            _ => None,
        }
    }

    /// Whether a finite bound was established.
    pub fn is_bounded(&self) -> bool {
        matches!(self, WclBound::Bounded(_))
    }
}

/// Classifies the WCL of `cua`'s LLC requests under `config`.
///
/// * Private partition → `Bounded((2N+1)·SW)`.
/// * Shared + 1S-TDM + set sequencer → `Bounded` by Theorem 4.8.
/// * Shared + 1S-TDM + best effort → `Bounded` by Theorem 4.7.
/// * Shared + non-1S-TDM with an interference witness → `Unbounded`.
/// * Otherwise → `NotCovered`.
///
/// # Errors
///
/// Returns [`ConfigError::PartitionCoreOutOfRange`] for a core outside
/// the system.
///
/// # Examples
///
/// ```
/// use predllc_core::analysis::{classify_schedule, WclBound};
/// use predllc_core::{SharingMode, SystemConfig};
/// use predllc_model::CoreId;
///
/// # fn main() -> Result<(), predllc_core::ConfigError> {
/// let cfg = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer)?;
/// let bound = classify_schedule(&cfg, CoreId::new(0))?;
/// assert_eq!(bound.cycles().map(|c| c.as_u64()), Some(5_000));
/// # Ok(())
/// # }
/// ```
pub fn classify_schedule(config: &SystemConfig, cua: CoreId) -> Result<WclBound, ConfigError> {
    let params = WclParams::for_core(config, cua)?;
    let spec = config.partitions().spec_of(cua);
    let schedule = config.schedule();

    if spec.is_private() {
        return Ok(WclBound::Bounded(params.wcl_private()));
    }
    if schedule.is_one_slot() {
        let wcl = match spec.mode {
            SharingMode::SetSequencer => Some(params.wcl_set_sequencer()),
            SharingMode::BestEffort => params.wcl_one_slot_tdm_checked(),
        };
        return Ok(match wcl {
            Some(c) => WclBound::Bounded(c),
            None => WclBound::NotCovered, // overflowed: astronomically large
        });
    }
    // Non-1S-TDM: look for the §4.1 witness among the partition sharers.
    // NOTE: the witness argument needs best-effort contention; with a set
    // sequencer the interferer cannot re-occupy cua's entry, but the
    // paper only analyses the sequencer under 1S-TDM, so anything else is
    // NotCovered rather than Bounded.
    if spec.mode == SharingMode::BestEffort {
        if let Some((interferer, slots_in_gap)) =
            interference_witness(schedule, spec.cores.as_slice(), cua)
        {
            return Ok(WclBound::Unbounded {
                interferer,
                slots_in_gap,
            });
        }
    }
    Ok(WclBound::NotCovered)
}

/// Finds a sharer with ≥ 2 slots strictly inside one of `cua`'s
/// inter-slot gaps, which lets it free-then-reoccupy an entry before
/// `cua` returns to the bus (the Fig. 2 pattern).
fn interference_witness(
    schedule: &TdmSchedule,
    sharers: &[CoreId],
    cua: CoreId,
) -> Option<(CoreId, u64)> {
    let owners = schedule.slot_owners();
    let period = owners.len();
    let cua_positions: Vec<usize> = (0..period).filter(|&i| owners[i] == cua).collect();
    if cua_positions.is_empty() {
        return None;
    }
    let mut best: Option<(CoreId, u64)> = None;
    for (gi, &start) in cua_positions.iter().enumerate() {
        let end = cua_positions[(gi + 1) % cua_positions.len()];
        // Walk the cyclic gap (start, end).
        for &other in sharers.iter().filter(|&&c| c != cua) {
            let mut count = 0u64;
            let mut i = (start + 1) % period;
            while i != end {
                if owners[i] == other {
                    count += 1;
                }
                i = (i + 1) % period;
            }
            if count >= 2 && best.is_none_or(|(_, c)| count > c) {
                best = Some((other, count));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfigBuilder;
    use crate::partition::PartitionSpec;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn private_partitions_are_bounded() {
        let cfg = SystemConfig::private_partitions(8, 2, 4).unwrap();
        let b = classify_schedule(&cfg, c(0)).unwrap();
        assert_eq!(b.cycles().unwrap().as_u64(), 450);
    }

    #[test]
    fn one_slot_tdm_sharing_is_bounded_both_modes() {
        let ss = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer).unwrap();
        assert_eq!(
            classify_schedule(&ss, c(0))
                .unwrap()
                .cycles()
                .unwrap()
                .as_u64(),
            5_000
        );
        let nss = SystemConfig::shared_partition(1, 16, 4, SharingMode::BestEffort).unwrap();
        assert_eq!(
            classify_schedule(&nss, c(0))
                .unwrap()
                .cycles()
                .unwrap()
                .as_u64(),
            979_250
        );
    }

    #[test]
    fn fig2_schedule_is_unbounded() {
        // {cua, ci, ci}: ci has two slots in cua's gap.
        let schedule = TdmSchedule::new(vec![c(0), c(1), c(1)]).unwrap();
        let cfg = SystemConfigBuilder::new(2)
            .schedule(schedule)
            .partitions(vec![PartitionSpec::shared(
                1,
                2,
                vec![c(0), c(1)],
                SharingMode::BestEffort,
            )])
            .build()
            .unwrap();
        let b = classify_schedule(&cfg, c(0)).unwrap();
        assert_eq!(
            b,
            WclBound::Unbounded {
                interferer: c(1),
                slots_in_gap: 2
            }
        );
        assert!(!b.is_bounded());
        assert_eq!(b.cycles(), None);
    }

    #[test]
    fn non_sharer_with_extra_slots_is_not_a_witness() {
        // c1 has two slots but shares nothing with cua (c0): from the
        // partition's viewpoint the schedule gives no §4.1 witness, but
        // it is also not 1S-TDM, so the analysis does not apply.
        let schedule = TdmSchedule::new(vec![c(0), c(1), c(1), c(2)]).unwrap();
        let cfg = SystemConfigBuilder::new(3)
            .schedule(schedule)
            .partitions(vec![
                PartitionSpec::shared(1, 2, vec![c(0), c(2)], SharingMode::BestEffort),
                PartitionSpec::private(1, 2, c(1)),
            ])
            .build()
            .unwrap();
        assert_eq!(classify_schedule(&cfg, c(0)).unwrap(), WclBound::NotCovered);
    }

    #[test]
    fn sequencer_outside_one_slot_tdm_is_not_covered() {
        let schedule = TdmSchedule::new(vec![c(0), c(1), c(1)]).unwrap();
        let cfg = SystemConfigBuilder::new(2)
            .schedule(schedule)
            .partitions(vec![PartitionSpec::shared(
                1,
                2,
                vec![c(0), c(1)],
                SharingMode::SetSequencer,
            )])
            .build()
            .unwrap();
        assert_eq!(classify_schedule(&cfg, c(0)).unwrap(), WclBound::NotCovered);
    }

    #[test]
    fn out_of_range_core_is_an_error() {
        let cfg = SystemConfig::private_partitions(2, 2, 2).unwrap();
        assert!(classify_schedule(&cfg, c(9)).is_err());
    }

    #[test]
    fn witness_counts_slots_in_cyclic_gap() {
        // Period {c1, c0, c1, c1}: the gap after c0's slot wraps around
        // and contains c1 three times... actually positions: c0 at 1;
        // gap (1 → 1 cyclic) covers 2, 3, 0 → three c1 slots.
        let schedule = TdmSchedule::new(vec![c(1), c(0), c(1), c(1)]).unwrap();
        let w = interference_witness(&schedule, &[c(0), c(1)], c(0)).unwrap();
        assert_eq!(w, (c(1), 3));
    }
}
