//! The paper's worst-case latency (WCL) analysis (§4), as executable
//! formulas.
//!
//! * [`WclParams`] captures the analysis inputs: `N` total cores on the
//!   bus, `n` cores sharing the partition, `w` ways per set, partition
//!   size `M`, private capacity `m_cua`, slot width `SW`.
//! * [`WclParams::wcl_one_slot_tdm`] is Theorem 4.7 — sharing under
//!   1S-TDM without the set sequencer: `((m+1)·A·N + 1)·SW` with
//!   `A = 2(n−1)·w·(n−1)` and `m = min(m_cua, M)`.
//! * [`WclParams::wcl_set_sequencer`] is Theorem 4.8 — with the set
//!   sequencer: `(2(n−1)·n + 1)·N·SW`, independent of cache and partition
//!   sizes.
//! * [`WclParams::wcl_private`] is the conventional private-partition
//!   bound `(2N+1)·SW` (the "450 cycles" of Fig. 7).
//! * [`bounds`] classifies arbitrary TDM schedules: 1S-TDM is bounded;
//!   schedules that give another sharer two slots between consecutive
//!   slots of the core under analysis are provably unbounded (§4.1).
//! * [`critical`] builds the adversarial traces used to drive the
//!   simulator toward the analytical bounds.
//! * [`memory`] folds the configured memory backend's analytical
//!   worst-case access latency into the analysis: [`SlotBudget`] checks
//!   the slot-width validity premise and [`MemoryAwareWcl`] guards every
//!   WCL bound on it.

pub mod bounds;
pub mod critical;
pub mod distance;
mod gap;
pub mod memory;
pub mod taskset;
mod wcl;

pub use bounds::{classify_schedule, WclBound};
pub use distance::{DistanceSample, DistanceTracker};
pub use gap::{GapComponent, GapEntry, WclGapReport};
pub use memory::{MemoryAwareWcl, SlotBudget};
pub use taskset::{RtaResult, TaskParams, TaskSetAnalysis};
pub use wcl::WclParams;
