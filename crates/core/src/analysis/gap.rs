//! Decomposing the analytical-vs-observed WCL gap per component.
//!
//! The experiments prove `observed_wcl ≤ analytical_wcl`; this module
//! explains the *difference*. The analytical bound budgets worst-case
//! cycles per causal component (a full period of arbitration, worst-case
//! DRAM in the service slot, and the theorem-specific interference
//! allowance); the [`WclWitness`] records what the worst observed
//! request actually spent per component. [`WclGapReport`] lines the two
//! up: per-component analytical budget, observed cycles, and the signed
//! slack between them — the slacks sum exactly to the total gap, so the
//! report shows *which* allowance the bound's looseness lives in.
//!
//! A per-component slack may be negative (a request can wait more than
//! one period of arbitration when its earlier owned slots were consumed
//! by write-backs or blocking — the bound accounts those cycles under a
//! different component); only the total gap is guaranteed non-negative
//! on a platform satisfying the paper's premises.
//!
//! # Examples
//!
//! ```
//! use predllc_core::analysis::WclGapReport;
//! use predllc_core::{SharingMode, Simulator, SystemConfig};
//! use predllc_model::{Address, MemOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer)?
//!     .with_attribution(true);
//! let traces: Vec<Vec<MemOp>> = (0..4)
//!     .map(|c| vec![MemOp::read(Address::new(c * 64))])
//!     .collect();
//! let report = Simulator::new(cfg.clone())?.run(traces)?;
//!
//! let gap = WclGapReport::from_run(&cfg, &report)?.expect("attribution on");
//! assert_eq!(gap.analytical_wcl.as_u64(), 5_000); // Theorem 4.8
//! assert_eq!(gap.observed_wcl, report.max_request_latency());
//! // The per-component slacks sum exactly to the total gap.
//! let total: i64 = gap.entries().iter().map(|e| e.slack).sum();
//! assert_eq!(total, gap.gap());
//! assert!(gap.gap() >= 0);
//! # Ok(())
//! # }
//! ```

use predllc_model::{CoreId, Cycles};

use crate::analysis::MemoryAwareWcl;
use crate::attribution::{Component, WclWitness};
use crate::config::SystemConfig;
use crate::engine::RunReport;
use crate::error::ConfigError;

/// The gap report's component axis: the attribution components with the
/// four DRAM row outcomes folded into one (the analytical bound budgets
/// a single worst-case access, not a row-outcome mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GapComponent {
    /// Waiting for the core's own TDM slots.
    Arbitration,
    /// Owned slots spent on the core's own write-backs.
    Writeback,
    /// Owned slots in which the LLC could not answer.
    LlcWait,
    /// The response slot minus its DRAM portion.
    Bus,
    /// DRAM access cycles of the response slot (all row outcomes).
    Dram,
}

impl GapComponent {
    /// Every gap component, in reporting order.
    pub const ALL: [GapComponent; 5] = [
        GapComponent::Arbitration,
        GapComponent::Writeback,
        GapComponent::LlcWait,
        GapComponent::Bus,
        GapComponent::Dram,
    ];

    /// A stable snake_case label.
    pub const fn label(self) -> &'static str {
        match self {
            GapComponent::Arbitration => "arbitration",
            GapComponent::Writeback => "writeback",
            GapComponent::LlcWait => "llc_wait",
            GapComponent::Bus => "bus",
            GapComponent::Dram => "dram",
        }
    }
}

impl std::fmt::Display for GapComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One component's analytical budget vs. the witness's observed cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapEntry {
    /// The component.
    pub component: GapComponent,
    /// Cycles the analytical bound budgets for this component.
    pub analytical: Cycles,
    /// Cycles the worst observed request actually spent on it.
    pub observed: Cycles,
    /// `analytical − observed` (may be negative per component; the
    /// entries' slacks sum exactly to [`WclGapReport::gap`]).
    pub slack: i64,
}

/// The decomposition of `analytical_wcl − observed_wcl` into
/// per-component analytical-vs-observed slack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WclGapReport {
    /// The applicable analytical bound (Theorem 4.7/4.8 or the private
    /// bound, memory-aware).
    pub analytical_wcl: Cycles,
    /// The run's observed WCL (the witness's latency).
    pub observed_wcl: Cycles,
    entries: [GapEntry; GapComponent::ALL.len()],
}

impl WclGapReport {
    /// Builds the gap report for a run, lining the applicable analytical
    /// bound up against the run's WCL witness. Returns `Ok(None)` when
    /// the run carried no attribution, completed no request, or the
    /// configuration has no sound bound (invalid slot budget or formula
    /// overflow).
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryAwareWcl::from_config`] failures.
    pub fn from_run(
        config: &SystemConfig,
        report: &RunReport,
    ) -> Result<Option<Self>, ConfigError> {
        let Some(witness) = report.attribution().and_then(|a| a.witness()) else {
            return Ok(None);
        };
        let Some(bound) = MemoryAwareWcl::from_config(config)?.bound() else {
            return Ok(None);
        };
        Ok(Some(WclGapReport::against(config, bound, witness)))
    }

    /// Lines a known analytical bound up against a witness. The
    /// analytical budget is split greedily in priority order — the
    /// service slot (worst-case DRAM, rest bus), one period less a slot
    /// of arbitration, and the theorem's interference allowance as
    /// write-back budget (private partitions) or LLC-wait budget (shared
    /// ones) — so the entries always sum exactly to the bound.
    pub fn against(config: &SystemConfig, bound: Cycles, witness: &WclWitness) -> Self {
        let sw = config.slot_width().cycles().as_u64();
        let mem_wc = config.memory().worst_case_latency().as_u64();
        let total = bound.as_u64();

        // Analytical split: service slot first, then arbitration, then
        // the interference allowance takes whatever the bound has left.
        let service = total.min(sw);
        let dram_a = service.min(mem_wc);
        let bus_a = service - dram_a;
        let arb_a = (total - service).min(sw * (u64::from(config.num_cores()) - 1));
        let allowance = total - service - arb_a;
        let private = config.partitions().spec_of(CoreId::new(0)).is_private();
        let (wb_a, llc_a) = if private {
            (allowance, 0)
        } else {
            (0, allowance)
        };

        let c = &witness.components;
        let dram_o = c.get(Component::DramRowHit).as_u64()
            + c.get(Component::DramRowEmpty).as_u64()
            + c.get(Component::DramRowConflict).as_u64()
            + c.get(Component::DramFlat).as_u64();
        let observed = [
            c.get(Component::Arbitration).as_u64(),
            c.get(Component::Writeback).as_u64(),
            c.get(Component::LlcWait).as_u64(),
            c.get(Component::Bus).as_u64(),
            dram_o,
        ];
        let analytical = [arb_a, wb_a, llc_a, bus_a, dram_a];
        let entries = std::array::from_fn(|i| GapEntry {
            component: GapComponent::ALL[i],
            analytical: Cycles::new(analytical[i]),
            observed: Cycles::new(observed[i]),
            slack: analytical[i] as i64 - observed[i] as i64,
        });
        WclGapReport {
            analytical_wcl: bound,
            observed_wcl: witness.latency,
            entries,
        }
    }

    /// `analytical_wcl − observed_wcl`, signed. Non-negative on any
    /// platform satisfying the paper's premises; the per-entry slacks
    /// sum to it exactly.
    pub fn gap(&self) -> i64 {
        self.analytical_wcl.as_u64() as i64 - self.observed_wcl.as_u64() as i64
    }

    /// Per-component entries, in [`GapComponent::ALL`] order.
    pub fn entries(&self) -> &[GapEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::SharingMode;
    use crate::Simulator;
    use predllc_model::{Address, MemOp};

    fn run_with_attr(cfg: SystemConfig, traces: Vec<Vec<MemOp>>) -> crate::RunReport {
        Simulator::new(cfg).unwrap().run(traces).unwrap()
    }

    #[test]
    fn none_without_attribution() {
        let cfg = SystemConfig::private_partitions(2, 2, 1).unwrap();
        let report = run_with_attr(cfg.clone(), vec![vec![MemOp::read(Address::new(0))]]);
        assert_eq!(WclGapReport::from_run(&cfg, &report).unwrap(), None);
    }

    #[test]
    fn analytical_entries_sum_to_the_bound() {
        for mode in [
            None,
            Some(SharingMode::SetSequencer),
            Some(SharingMode::BestEffort),
        ] {
            let cfg = match mode {
                None => SystemConfig::private_partitions(1, 2, 4).unwrap(),
                Some(m) => SystemConfig::shared_partition(1, 16, 4, m).unwrap(),
            }
            .with_attribution(true);
            let traces: Vec<Vec<MemOp>> = (0..4)
                .map(|c| {
                    vec![
                        MemOp::read(Address::new(c * 64)),
                        MemOp::read(Address::new(4096 + c * 64)),
                    ]
                })
                .collect();
            let report = run_with_attr(cfg.clone(), traces);
            let gap = WclGapReport::from_run(&cfg, &report)
                .unwrap()
                .expect("bound and witness exist");
            let a_sum: u64 = gap.entries().iter().map(|e| e.analytical.as_u64()).sum();
            assert_eq!(a_sum, gap.analytical_wcl.as_u64());
            let o_sum: u64 = gap.entries().iter().map(|e| e.observed.as_u64()).sum();
            assert_eq!(o_sum, gap.observed_wcl.as_u64());
            let slack: i64 = gap.entries().iter().map(|e| e.slack).sum();
            assert_eq!(slack, gap.gap());
            assert!(gap.gap() >= 0, "observed exceeded the analytical bound");
        }
    }

    #[test]
    fn degenerate_single_sharer_bound_still_splits() {
        // n = 1 in Theorem 4.7 degenerates to a one-slot bound, smaller
        // than the arbitration allowance — the greedy split must not
        // underflow and must still sum to the bound.
        let cfg = SystemConfig::builder(4)
            .partitions(vec![
                crate::PartitionSpec::shared(1, 2, vec![CoreId::new(0)], SharingMode::BestEffort),
                crate::PartitionSpec::private(1, 2, CoreId::new(1)),
                crate::PartitionSpec::private(1, 2, CoreId::new(2)),
                crate::PartitionSpec::private(1, 2, CoreId::new(3)),
            ])
            .attribution(true)
            .build()
            .unwrap();
        let traces: Vec<Vec<MemOp>> = (0..4)
            .map(|c| vec![MemOp::read(Address::new(c * 64))])
            .collect();
        let report = run_with_attr(cfg.clone(), traces);
        let witness = report.attribution().unwrap().witness().unwrap().clone();
        let bound = MemoryAwareWcl::from_config(&cfg).unwrap().bound().unwrap();
        let gap = WclGapReport::against(&cfg, bound, &witness);
        let a_sum: u64 = gap.entries().iter().map(|e| e.analytical.as_u64()).sum();
        assert_eq!(a_sum, bound.as_u64());
    }
}
