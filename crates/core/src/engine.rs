//! The slot-stepped multicore simulator.
//!
//! Time advances slot by slot. At each slot boundary every core's private
//! execution is advanced up to the boundary (private hits cost only local
//! cycles); then the slot's owner gets exactly one bus transaction —
//! a write-back or its pending request — which the LLC resolves within
//! the slot. Responses land at the end of the slot, so a request serviced
//! in the slot starting at cycle `t` completes at `t + SW`.
//!
//! This is a from-scratch reimplementation of the paper's in-house trace
//! simulator (§5), pinned to the calibration constants recovered from the
//! published analytical WCLs (50-cycle slots; see `DESIGN.md`).

use predllc_bus::{BusGrant, SlotArbiter};
use predllc_cache::PrivateHierarchy;
use predllc_model::{CoreId, Cycles};
use predllc_workload::{OpStream, Workload};

use crate::config::SystemConfig;
use crate::core_model::CoreModel;
use crate::error::{ConfigError, SimError};
use crate::events::{BlockReason, EventKind, EventLog};
use crate::llc::{ResponseKind, ServiceOutcome, SharedLlc};
use crate::stats::SimStats;

/// Slots without any progress — no bus transaction *and* no operation
/// completed anywhere (private hits are progress: a hit-heavy workload
/// can legitimately run millions of cycles in bus silence) — after which
/// the engine declares a deadlock and returns [`SimError::Deadlock`]
/// (a simulator bug, not a workload property: a correct configuration
/// always makes progress eventually).
const DEADLOCK_GUARD_SLOTS: u64 = 100_000;

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// All counters.
    pub stats: SimStats,
    /// The event log (empty unless recording was enabled).
    pub events: EventLog,
    /// Whether the run hit the configured `max_cycles` cap before every
    /// core finished — expected for the unbounded Fig. 2 scenario.
    pub timed_out: bool,
    /// The first cycle *after* the simulated span.
    pub cycles: Cycles,
}

impl RunReport {
    /// The worst request latency observed on any core.
    pub fn max_request_latency(&self) -> Cycles {
        self.stats.max_request_latency()
    }

    /// The cycle at which the last core finished its trace (the
    /// workload's execution time). Zero for cores that never finished.
    pub fn execution_time(&self) -> Cycles {
        self.stats.makespan()
    }

    /// The worst request latency of one specific core.
    pub fn core_max_latency(&self, core: CoreId) -> Cycles {
        self.stats.core(core).max_request_latency
    }

    /// The system-wide request-latency distribution (every core's
    /// log-bucketed histogram merged).
    pub fn latency_histogram(&self) -> crate::histogram::LatencyHistogram {
        self.stats.request_latencies()
    }

    /// The value at percentile `p` of the system-wide request-latency
    /// distribution. `latency_percentile(100.0)` is exactly
    /// [`RunReport::max_request_latency`].
    pub fn latency_percentile(&self, p: f64) -> Cycles {
        self.latency_histogram().percentile(p)
    }

    /// The p50/p90/p99/p100 summary of the run's request latencies.
    pub fn latency_summary(&self) -> crate::histogram::LatencySummary {
        self.latency_histogram().summary()
    }
}

/// The multicore simulator.
///
/// Construct with a validated [`SystemConfig`], then [`Simulator::run`]
/// any number of [`Workload`]s against it — `run` borrows the simulator,
/// so one validated instance serves a whole parameter sweep. See the
/// crate-level example.
#[derive(Debug)]
pub struct Simulator {
    config: SystemConfig,
}

impl Simulator {
    /// Creates a simulator for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoCores`] for an empty system. (Most
    /// validation already happened when the config was built.)
    pub fn new(config: SystemConfig) -> Result<Self, ConfigError> {
        if config.num_cores() == 0 {
            return Err(ConfigError::NoCores);
        }
        Ok(Simulator { config })
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs a workload to completion (or to the `max_cycles` cap).
    ///
    /// Core `i` pulls its operations from
    /// `workload.core_ops(CoreId::new(i))` on demand — nothing is
    /// materialized, so per-core memory use is independent of the stream
    /// length. Accepts any [`Workload`]: a generator, a [`TraceSet`],
    /// a plain `Vec<Vec<MemOp>>`, or a reference to any of them (pass
    /// `&workload` to reuse the workload for further runs).
    ///
    /// `run` borrows the simulator, so the same instance can execute any
    /// number of successive workloads.
    ///
    /// [`TraceSet`]: predllc_workload::TraceSet
    ///
    /// # Errors
    ///
    /// * [`SimError::CoreCountMismatch`] if the workload drives a
    ///   different number of cores than the system has.
    /// * [`SimError::Deadlock`] if no bus transaction happens for a very
    ///   long time with unfinished work — a simulator bug, reported as a
    ///   typed error so sweeps stay panic-free.
    pub fn run<W: Workload>(&self, workload: W) -> Result<RunReport, SimError> {
        let cfg = &self.config;
        let n = cfg.num_cores();
        if workload.num_cores() != n {
            return Err(SimError::CoreCountMismatch {
                workload_cores: workload.num_cores(),
                system_cores: n,
            });
        }

        let mut cores: Vec<CoreModel<OpStream<'_>>> = CoreId::first(n)
            .map(|id| {
                CoreModel::new(
                    id,
                    workload.core_ops(id),
                    PrivateHierarchy::new(
                        cfg.l1i(),
                        cfg.l1d(),
                        cfg.l2(),
                        cfg.private_replacement(),
                    ),
                    SlotArbiter::new(cfg.arbiter()),
                    cfg.l1_latency(),
                    cfg.l2_latency(),
                )
            })
            .collect();
        let memory = cfg
            .memory()
            .build(n)
            .expect("memory backend was validated when the config was built");
        let mut llc = SharedLlc::new(
            cfg.partitions().clone(),
            cfg.l2().line_size(),
            cfg.llc_replacement(),
            memory,
        );
        let mut stats = SimStats::new(n);
        let mut events = EventLog::new(cfg.record_events());
        let sw = cfg.slot_width();
        let schedule = cfg.schedule().clone();

        let mut slot: u64 = 0;
        let mut timed_out = false;
        let mut last_progress_slot: u64 = 0;
        let mut last_total_ops: u64 = 0;

        loop {
            let now = sw.slot_start(slot);
            if let Some(cap) = cfg.max_cycles() {
                if now.as_u64() >= cap {
                    timed_out = true;
                    break;
                }
            }

            // 1. Local progress: every core executes private hits up to
            //    the boundary.
            for core in cores.iter_mut() {
                let id = core.id();
                core.advance_to(now, stats.core_mut(id));
            }
            if cores.iter().all(CoreModel::is_finished) {
                break;
            }

            // 2. One bus transaction for the slot's owner.
            let owner = schedule.owner(slot);
            let oi = owner.as_usize();
            let has_wb = !cores[oi].pwb.is_empty();
            let has_req = cores[oi].request_ready(now);
            // A request only competes for the slot when it can make
            // progress: a first broadcast always can; afterwards the LLC
            // probe decides. Without this, a request stuck behind an
            // acknowledgement sitting in this core's own PWB would starve
            // that acknowledgement under a request-first arbiter.
            let req_useful = has_req && {
                let req = cores[oi].prb.peek().expect("request_ready checked");
                !req.broadcast || llc.probe(owner, req.op.addr.line()) != crate::llc::Probe::Stuck
            };
            let grant = if has_wb && req_useful && cores[oi].request_hazard() {
                // A request must not race its own queued write-back for
                // the same line.
                Some(BusGrant::WriteBack)
            } else {
                cores[oi].arbiter.choose(has_wb, req_useful)
            };
            // A ready-but-stuck request still counts as a blocked slot
            // for accounting when nothing else used the bus.
            let grant = match grant {
                None if has_req => {
                    stats.core_mut(owner).blocked_slots += 1;
                    events.push(
                        now,
                        slot,
                        EventKind::Blocked {
                            core: owner,
                            reason: BlockReason::WaitingForEviction,
                        },
                    );
                    None
                }
                g => g,
            };

            match grant {
                None => {
                    stats.idle_slots += 1;
                }
                Some(BusGrant::WriteBack) => {
                    last_progress_slot = slot;
                    let wb = cores[oi].pwb.pop().expect("arbiter saw a write-back");
                    stats.core_mut(owner).writebacks_sent += 1;
                    events.push(
                        now,
                        slot,
                        EventKind::WritebackTransmitted {
                            core: owner,
                            line: wb.line,
                            kind: wb.kind,
                        },
                    );
                    let wr = llc.writeback(owner, wb.line, wb.dirty, wb.kind, now);
                    if let Some(traffic) = wr.mem_traffic {
                        push_mem_event(&mut events, now, slot, owner, &traffic);
                    }
                    if let Some(freed) = wr.freed {
                        stats.lines_freed += 1;
                        events.push(
                            now,
                            slot,
                            EventKind::LineFreed {
                                line: freed,
                                partition: llc.partition_map().partition_of(owner),
                            },
                        );
                    }
                    if has_req {
                        stats.core_mut(owner).blocked_slots += 1;
                        events.push(
                            now,
                            slot,
                            EventKind::Blocked {
                                core: owner,
                                reason: BlockReason::SlotUsedForWriteback,
                            },
                        );
                    }
                }
                Some(BusGrant::Request) => {
                    last_progress_slot = slot;
                    let (line, first) = {
                        let req = cores[oi].prb.peek().expect("arbiter saw a request");
                        (req.op.addr.line(), !req.broadcast)
                    };
                    cores[oi].prb.mark_broadcast();
                    if first {
                        events.push(now, slot, EventKind::RequestBroadcast { core: owner, line });
                    }
                    let res = {
                        let cores = &mut cores;
                        let mut evict = |target: CoreId, victim| {
                            cores[target.as_usize()]
                                .private
                                .back_invalidate(victim)
                                .dirty
                        };
                        llc.service(owner, line, now, &mut evict)
                    };
                    for traffic in res.mem_traffic.iter().flatten() {
                        push_mem_event(&mut events, now, slot, owner, traffic);
                    }
                    for &(target, vline) in &res.invalidations {
                        stats.core_mut(target).back_invalidations += 1;
                        events.push(
                            now,
                            slot,
                            EventKind::BackInvalidation {
                                core: target,
                                line: vline,
                            },
                        );
                    }
                    // Dirty remote copies owe a data-carrying ack.
                    for &(target, vline) in &res.ack_required {
                        cores[target.as_usize()].pwb.push(predllc_bus::WriteBack {
                            line: vline,
                            dirty: true,
                            kind: predllc_bus::WbKind::BackInvalAck,
                            enqueued_at: now,
                        });
                    }
                    if let Some(position) = res.sequencer_position {
                        events.push(
                            now,
                            slot,
                            EventKind::SequencerEnqueued {
                                core: owner,
                                set: res.set,
                                position,
                            },
                        );
                    }
                    if let Some(ev) = res.eviction {
                        stats.evictions_triggered += 1;
                        events.push(
                            now,
                            slot,
                            EventKind::EvictionTriggered {
                                by: owner,
                                victim: ev.victim,
                                sharers: ev.sharers,
                            },
                        );
                        // No data-carrying acknowledgements owed means
                        // the entry freed within this very slot (clean
                        // or requester-held copies only).
                        if res.ack_required.is_empty() {
                            stats.lines_freed += 1;
                            events.push(
                                now,
                                slot,
                                EventKind::LineFreed {
                                    line: ev.victim,
                                    partition: llc.partition_map().partition_of(owner),
                                },
                            );
                        }
                    }
                    match res.outcome {
                        ServiceOutcome::Responded(kind) => {
                            let resume = now + sw.cycles();
                            let (issued, clean_drop) =
                                cores[oi].complete_request(resume, stats.core_mut(owner));
                            if cfg.precise_sharers() {
                                if let Some(dropped) = clean_drop {
                                    llc.note_clean_drop(owner, dropped);
                                }
                            }
                            let latency = resume - issued;
                            stats.core_mut(owner).record_latency(latency);
                            match kind {
                                ResponseKind::Hit => {
                                    stats.core_mut(owner).llc_hits += 1;
                                    events.push(now, slot, EventKind::Hit { core: owner, line });
                                }
                                ResponseKind::Fill => {
                                    stats.core_mut(owner).llc_fills += 1;
                                    events.push(now, slot, EventKind::Fill { core: owner, line });
                                }
                            }
                        }
                        ServiceOutcome::Blocked(reason) => {
                            stats.core_mut(owner).blocked_slots += 1;
                            events.push(
                                now,
                                slot,
                                EventKind::Blocked {
                                    core: owner,
                                    reason,
                                },
                            );
                        }
                    }
                }
            }

            // Private-hit execution is progress too: only bus silence
            // *and* a frozen completion count together indicate a stuck
            // engine.
            let total_ops: u64 = stats.cores.iter().map(|c| c.ops_completed).sum();
            if total_ops != last_total_ops {
                last_total_ops = total_ops;
                last_progress_slot = slot;
            }

            stats.slots += 1;
            slot += 1;

            if slot - last_progress_slot >= DEADLOCK_GUARD_SLOTS {
                return Err(SimError::Deadlock {
                    cycle: sw.slot_start(slot),
                    pending: cores
                        .iter()
                        .filter(|c| !c.is_finished())
                        .map(|c| c.id())
                        .collect(),
                });
            }
        }

        // Fold substrate counters into the report.
        stats.absorb_memory(llc.memory_stats());
        debug_assert!(
            stats.max_dram_latency <= llc.memory_worst_case(),
            "memory backend exceeded its own analytical worst case: {} > {}",
            stats.max_dram_latency,
            llc.memory_worst_case()
        );
        let (seq_sets, seq_depth) = llc.sequencer_pressure();
        stats.max_sequencer_sets = seq_sets;
        stats.max_sequencer_depth = seq_depth;
        stats.max_pwb_depth = cores.iter().map(|c| c.pwb.max_depth()).max().unwrap_or(0);

        // Inclusion invariant: every privately cached line is a valid,
        // tracked sharer in the LLC. (Stale sharer bits in the other
        // direction are allowed — they are the conservative consequence
        // of silent clean drops.)
        if cfg!(debug_assertions) && !timed_out {
            for core in &cores {
                for line in core.private.l2_lines() {
                    debug_assert!(
                        llc.is_valid_sharer(core.id(), line),
                        "inclusion violated: {} holds {line} but the LLC does not track it",
                        core.id()
                    );
                }
            }
        }

        Ok(RunReport {
            stats,
            events,
            timed_out,
            cycles: sw.slot_start(slot),
        })
    }
}

/// Records a [`EventKind::DramAccess`] for one backend access. Flat
/// backends (no row outcome) emit nothing, which keeps fixed-latency
/// event logs identical to the seed simulator's.
fn push_mem_event(
    events: &mut EventLog,
    now: Cycles,
    slot: u64,
    core: CoreId,
    traffic: &crate::llc::MemTraffic,
) {
    if let Some(outcome) = traffic.access.row {
        events.push(
            now,
            slot,
            EventKind::DramAccess {
                core,
                line: traffic.line,
                bank: traffic.access.bank,
                outcome,
                latency: traffic.access.latency,
                write: traffic.write,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionSpec, SharingMode};
    use predllc_bus::TdmSchedule;
    use predllc_model::{Address, MemOp};

    fn read(addr: u64) -> MemOp {
        MemOp::read(Address::new(addr))
    }

    fn write(addr: u64) -> MemOp {
        MemOp::write(Address::new(addr))
    }

    #[test]
    fn single_core_single_miss_latency() {
        // One core, private partition: miss issued at cycle 10 (after L2
        // lookup), serviced in its first slot at/after 10 — slot 1 at
        // cycle 50 under a 1-core schedule... actually every slot belongs
        // to c0, so the slot starting at 50 services it: response at 100.
        let cfg = SystemConfig::private_partitions(2, 2, 1).unwrap();
        let report = Simulator::new(cfg)
            .unwrap()
            .run(vec![vec![read(0)]])
            .unwrap();
        assert_eq!(report.stats.core(CoreId::new(0)).llc_fills, 1);
        // issued_at = 10, serviced in slot starting 50, response 100:
        // latency 90.
        assert_eq!(report.max_request_latency(), Cycles::new(90));
        assert!(!report.timed_out);
    }

    #[test]
    fn llc_hit_after_l2_eviction() {
        // Access enough distinct lines to overflow a tiny L2, then
        // revisit: the revisit hits in the LLC (inclusive).
        let cfg = SystemConfig::builder(1)
            .l2(predllc_model::CacheGeometry::new(1, 2, 64).unwrap())
            .l1i(predllc_model::CacheGeometry::new(1, 1, 64).unwrap())
            .l1d(predllc_model::CacheGeometry::new(1, 1, 64).unwrap())
            .partitions(vec![PartitionSpec::private(4, 4, CoreId::new(0))])
            .build()
            .unwrap();
        let trace = vec![read(0), read(64), read(128), read(0)];
        let report = Simulator::new(cfg).unwrap().run(vec![trace]).unwrap();
        let s = report.stats.core(CoreId::new(0));
        assert_eq!(s.llc_fills, 3);
        assert_eq!(s.llc_hits, 1, "the revisit of line 0 hits in the LLC");
        assert_eq!(s.ops_completed, 4);
    }

    #[test]
    fn two_cores_share_bus_without_interference_in_private_partitions() {
        let cfg = SystemConfig::private_partitions(4, 4, 2).unwrap();
        let t0 = vec![read(0), read(64)];
        let t1 = vec![read(0), read(64)]; // same addresses, own partition
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        for i in 0..2 {
            let s = report.stats.core(CoreId::new(i));
            assert_eq!(s.ops_completed, 2);
            assert_eq!(s.llc_fills, 2);
            assert_eq!(s.back_invalidations, 0);
        }
    }

    #[test]
    fn core_count_mismatch_is_an_error() {
        let cfg = SystemConfig::private_partitions(2, 2, 2).unwrap();
        let err = Simulator::new(cfg).unwrap().run(vec![vec![]]).unwrap_err();
        assert_eq!(
            err,
            SimError::CoreCountMismatch {
                workload_cores: 1,
                system_cores: 2
            }
        );
    }

    #[test]
    fn one_simulator_instance_runs_many_workloads() {
        // The redesigned API's core promise: validate once, run many.
        let sim = Simulator::new(SystemConfig::private_partitions(2, 2, 1).unwrap()).unwrap();
        let mut reports = Vec::new();
        for len in [1u64, 2, 3] {
            let trace: Vec<MemOp> = (0..len).map(|i| read(i * 64)).collect();
            reports.push(sim.run(vec![trace]).unwrap());
        }
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.stats.core(CoreId::new(0)).ops_completed, i as u64 + 1);
        }
        // Runs are independent: repeating the first workload reproduces
        // its report exactly (no state leaks between runs).
        let again = sim.run(vec![vec![read(0)]]).unwrap();
        assert_eq!(again.stats, reports[0].stats);
    }

    #[test]
    fn empty_traces_finish_at_cycle_zero() {
        let cfg = SystemConfig::private_partitions(2, 2, 2).unwrap();
        let report = Simulator::new(cfg)
            .unwrap()
            .run(vec![vec![], vec![]])
            .unwrap();
        assert_eq!(report.execution_time(), Cycles::ZERO);
        assert_eq!(report.stats.slots, 0);
    }

    #[test]
    fn shared_partition_eviction_roundtrip() {
        // Two cores, 1-set × 1-way shared partition: every access evicts
        // the other core's line; back-invalidations and acks must flow.
        let cfg = SystemConfig::shared_partition(1, 1, 2, SharingMode::BestEffort).unwrap();
        let t0 = vec![read(0), read(128)];
        let t1 = vec![read(64), read(192)];
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        let total_invals: u64 = (0..2)
            .map(|i| report.stats.core(CoreId::new(i)).back_invalidations)
            .sum();
        assert!(
            total_invals >= 2,
            "sharing a 1-line partition forces invalidations"
        );
        assert!(!report.timed_out);
        for i in 0..2 {
            assert_eq!(report.stats.core(CoreId::new(i)).ops_completed, 2);
        }
    }

    #[test]
    fn set_sequencer_mode_completes_the_same_workload() {
        let cfg = SystemConfig::shared_partition(1, 1, 2, SharingMode::SetSequencer).unwrap();
        let t0 = vec![read(0), read(128), read(256)];
        let t1 = vec![read(64), read(192), read(320)];
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        for i in 0..2 {
            assert_eq!(report.stats.core(CoreId::new(i)).ops_completed, 3);
        }
        assert!(report.stats.max_sequencer_depth >= 1);
    }

    #[test]
    fn dirty_lines_reach_dram_eventually() {
        // Write a line, then thrash the 1-way shared partition so it gets
        // evicted: the dirty data must reach DRAM.
        let cfg = SystemConfig::shared_partition(1, 1, 2, SharingMode::BestEffort).unwrap();
        let t0 = vec![write(0)];
        let t1 = vec![read(64), read(128)];
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        assert!(
            report.stats.dram_writes >= 1,
            "dirty line 0 was evicted to DRAM"
        );
    }

    #[test]
    fn max_cycles_cap_reports_timeout() {
        // Fig. 2's unbounded scenario: cua shares with ci, ci has two
        // slots per period; ci thrashes the set forever.
        let schedule =
            TdmSchedule::new(vec![CoreId::new(0), CoreId::new(1), CoreId::new(1)]).unwrap();
        let cfg = SystemConfig::builder(2)
            .schedule(schedule)
            .partitions(vec![PartitionSpec::shared(
                1,
                1,
                vec![CoreId::new(0), CoreId::new(1)],
                SharingMode::BestEffort,
            )])
            .max_cycles(50_000)
            .build()
            .unwrap();
        // ci ping-pongs writes to two lines in the set (dirty copies
        // force the Evict→WB round trip); cua wants a third line.
        let t0 = vec![read(0)];
        let t1: Vec<MemOp> = (0..10_000).map(|i| write(64 + 64 * (i % 2))).collect();
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        assert!(report.timed_out, "cua never completes: WCL unbounded");
        assert_eq!(report.stats.core(CoreId::new(0)).ops_completed, 0);
    }

    #[test]
    fn events_are_recorded_when_enabled() {
        let cfg = SystemConfig::builder(1)
            .partitions(vec![PartitionSpec::private(2, 2, CoreId::new(0))])
            .record_events(true)
            .build()
            .unwrap();
        let report = Simulator::new(cfg)
            .unwrap()
            .run(vec![vec![read(0)]])
            .unwrap();
        assert!(report
            .events
            .filter(|k| matches!(k, EventKind::Fill { .. }))
            .next()
            .is_some());
        assert!(report
            .events
            .filter(|k| matches!(k, EventKind::RequestBroadcast { .. }))
            .next()
            .is_some());
    }
}
