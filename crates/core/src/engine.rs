//! The slot-stepped multicore simulator.
//!
//! Time advances slot by slot. At each slot boundary every core's private
//! execution is advanced up to the boundary (private hits cost only local
//! cycles); then the slot's owner gets exactly one bus transaction —
//! a write-back or its pending request — which the LLC resolves within
//! the slot. Responses land at the end of the slot, so a request serviced
//! in the slot starting at cycle `t` completes at `t + SW`.
//!
//! This is a from-scratch reimplementation of the paper's in-house trace
//! simulator (§5), pinned to the calibration constants recovered from the
//! published analytical WCLs (50-cycle slots; see `DESIGN.md`).
//!
//! # Two engines, one behaviour
//!
//! The same predictability that makes the platform analyzable makes most
//! of that slot walk redundant: between LLC events a core's private-hit
//! run is pure-local (nothing on the bus can change its outcome until its
//! own miss), and a slot whose owner has neither a pending write-back nor
//! a ready request is idle by construction. [`Simulator::run`] therefore
//! dispatches on [`EngineMode`]:
//!
//! * the **reference** engine (`EngineMode::Reference`) walks every slot
//!   boundary exactly as the seed simulator did, and is kept as the
//!   oracle;
//! * the **fast-forward** engine (`EngineMode::FastForward`, chosen by
//!   default through `EngineMode::Auto`) batch-advances each private-hit
//!   run in one call, tracks the next slot in which *any* core can
//!   transmit in a calendar heap (`O(log n)` per transaction instead of
//!   `O(cores)` per slot), jumps time directly across idle-slot spans
//!   (accounting them in bulk), and services steady LLC-hit runs through
//!   [`SharedLlc::try_service_hit`] with run-length-batched latency
//!   recording ([`crate::LatencyHistogram::record_n`]).
//!
//! Both engines produce bit-identical [`RunReport`]s — the differential
//! suite in `tests/fast_forward.rs` holds them equal over randomized
//! configuration × workload grids. Event recording needs a per-slot
//! narrative, so `record_events(true)` automatically falls back to the
//! reference path (see [`SystemConfig::effective_engine`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use predllc_bus::{BusGrant, SlotArbiter, TdmSchedule};
use predllc_cache::PrivateHierarchy;
use predllc_model::{CoreId, Cycles, SlotWidth};
use predllc_workload::{OpStream, Workload};

use crate::attribution::{AttrState, AttributionReport, InterfererSnapshot};
use crate::config::{EngineMode, SystemConfig};
use crate::core_model::{CoreModel, CoreProgress};
use crate::error::{ConfigError, SimError};
use crate::events::{BlockReason, EventKind, EventLog};
use crate::llc::{ResponseKind, ServiceOutcome, SharedLlc};
use crate::profile::EngineProfile;
use crate::stats::SimStats;

/// Slots without any progress — no bus transaction *and* no operation
/// completed anywhere (private hits are progress: a hit-heavy workload
/// can legitimately run millions of cycles in bus silence) — after which
/// the engine declares a deadlock and returns [`SimError::Deadlock`]
/// (a simulator bug, not a workload property: a correct configuration
/// always makes progress eventually).
const DEADLOCK_GUARD_SLOTS: u64 = 100_000;

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// All counters.
    pub stats: SimStats,
    /// The event log (empty unless recording was enabled).
    pub events: EventLog,
    /// Whether the run hit the configured `max_cycles` cap before every
    /// core finished — expected for the unbounded Fig. 2 scenario.
    pub timed_out: bool,
    /// The first cycle *after* the simulated span.
    pub cycles: Cycles,
    /// Latency attribution, when the configuration enabled it (boxed:
    /// most runs don't carry it).
    attribution: Option<Box<AttributionReport>>,
}

impl RunReport {
    /// The worst request latency observed on any core.
    pub fn max_request_latency(&self) -> Cycles {
        self.stats.max_request_latency()
    }

    /// The cycle at which the last core finished its trace (the
    /// workload's execution time). Zero for cores that never finished.
    pub fn execution_time(&self) -> Cycles {
        self.stats.makespan()
    }

    /// The worst request latency of one specific core.
    pub fn core_max_latency(&self, core: CoreId) -> Cycles {
        self.stats.core(core).max_request_latency
    }

    /// The system-wide request-latency distribution (every core's
    /// log-bucketed histogram merged).
    pub fn latency_histogram(&self) -> crate::histogram::LatencyHistogram {
        self.stats.request_latencies()
    }

    /// The value at percentile `p` of the system-wide request-latency
    /// distribution. `latency_percentile(100.0)` is exactly
    /// [`RunReport::max_request_latency`].
    pub fn latency_percentile(&self, p: f64) -> Cycles {
        self.latency_histogram().percentile(p)
    }

    /// The p50/p90/p99/p100 summary of the run's request latencies.
    pub fn latency_summary(&self) -> crate::histogram::LatencySummary {
        self.latency_histogram().summary()
    }

    /// The latency attribution report — per-core component totals,
    /// per-component histograms and the WCL witness — or `None` when the
    /// configuration did not enable attribution (see
    /// [`crate::SystemConfigBuilder::attribution`]).
    pub fn attribution(&self) -> Option<&AttributionReport> {
        self.attribution.as_deref()
    }
}

/// The multicore simulator.
///
/// Construct with a validated [`SystemConfig`], then [`Simulator::run`]
/// any number of [`Workload`]s against it — `run` borrows the simulator,
/// so one validated instance serves a whole parameter sweep. See the
/// crate-level example.
#[derive(Debug)]
pub struct Simulator {
    config: SystemConfig,
}

impl Simulator {
    /// Creates a simulator for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoCores`] for an empty system. (Most
    /// validation already happened when the config was built.)
    pub fn new(config: SystemConfig) -> Result<Self, ConfigError> {
        if config.num_cores() == 0 {
            return Err(ConfigError::NoCores);
        }
        Ok(Simulator { config })
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs a workload to completion (or to the `max_cycles` cap).
    ///
    /// Core `i` pulls its operations from
    /// `workload.core_ops(CoreId::new(i))` on demand — nothing is
    /// materialized, so per-core memory use is independent of the stream
    /// length. Accepts any [`Workload`]: a generator, a [`TraceSet`],
    /// a plain `Vec<Vec<MemOp>>`, or a reference to any of them (pass
    /// `&workload` to reuse the workload for further runs).
    ///
    /// `run` borrows the simulator, so the same instance can execute any
    /// number of successive workloads. Which engine executes the run is
    /// governed by [`SystemConfig::effective_engine`]; both engines
    /// produce bit-identical reports.
    ///
    /// [`TraceSet`]: predllc_workload::TraceSet
    ///
    /// # Errors
    ///
    /// * [`SimError::CoreCountMismatch`] if the workload drives a
    ///   different number of cores than the system has.
    /// * [`SimError::Deadlock`] if no bus transaction happens for a very
    ///   long time with unfinished work — a simulator bug, reported as a
    ///   typed error so sweeps stay panic-free.
    pub fn run<W: Workload>(&self, workload: W) -> Result<RunReport, SimError> {
        self.run_profiled(workload, None)
    }

    /// Like [`Simulator::run`], with optional sampled stage profiling.
    ///
    /// When `profile` is `Some`, every `sample_every`-th slot's
    /// wall-clock cost is recorded into the profile's per-stage
    /// histograms (arbiter / LLC / DRAM / idle-jump). Profiling only
    /// *reads* time — it never feeds back into simulated time — so the
    /// returned [`RunReport`] is bit-identical to an unprofiled run.
    /// When `profile` is `None` the instrumentation collapses to one
    /// untaken branch per slot.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_profiled<W: Workload>(
        &self,
        workload: W,
        profile: Option<&EngineProfile>,
    ) -> Result<RunReport, SimError> {
        let cfg = &self.config;
        let n = cfg.num_cores();
        if workload.num_cores() != n {
            return Err(SimError::CoreCountMismatch {
                workload_cores: workload.num_cores(),
                system_cores: n,
            });
        }

        let cores: Vec<CoreModel<OpStream<'_>>> = CoreId::first(n)
            .map(|id| {
                CoreModel::new(
                    id,
                    workload.core_ops(id),
                    PrivateHierarchy::new(
                        cfg.l1i(),
                        cfg.l1d(),
                        cfg.l2(),
                        cfg.private_replacement(),
                    ),
                    SlotArbiter::new(cfg.arbiter()),
                    cfg.l1_latency(),
                    cfg.l2_latency(),
                )
            })
            .collect();
        let memory = cfg
            .memory()
            .build(n)
            .expect("memory backend was validated when the config was built");
        let llc = SharedLlc::new(
            cfg.partitions().clone(),
            cfg.l2().line_size(),
            cfg.llc_replacement(),
            memory,
        );
        let fast = cfg.effective_engine() == EngineMode::FastForward;
        let mut engine = Engine {
            cfg,
            sw: cfg.slot_width(),
            schedule: cfg.schedule().clone(),
            cores,
            llc,
            stats: SimStats::new(n),
            events: EventLog::new(cfg.record_events()),
            lat_batch: vec![(Cycles::ZERO, 0); n as usize],
            fast,
            scratch_acks: Vec::new(),
            attr: cfg
                .attribution()
                .then(|| Box::new(AttrState::new(n as usize, cfg.slot_width().cycles()))),
            profile,
        };
        let (timed_out, end_slot) = if fast {
            engine.run_fast()?
        } else {
            engine.run_reference()?
        };
        Ok(engine.finalize(timed_out, end_slot))
    }
}

/// What one processed slot accomplished, for the fast engine's calendar
/// bookkeeping. (The reference engine only reads `progressed`.)
struct SlotOutcome {
    /// A bus transaction happened (write-back transmitted or request
    /// granted) — resets the deadlock guard, as in the seed engine.
    progressed: bool,
    /// The owner's request was answered: the owner resumes execution at
    /// the end of the slot.
    responded: bool,
}

/// The simulation state shared by both engine loops. `process_slot` is
/// the single implementation of a slot's bus transaction; the loops only
/// differ in how they move time between transactions.
struct Engine<'c, I> {
    cfg: &'c SystemConfig,
    sw: SlotWidth,
    schedule: TdmSchedule,
    cores: Vec<CoreModel<I>>,
    llc: SharedLlc,
    stats: SimStats,
    events: EventLog,
    /// Per-core run-length latency batch `(latency, count)` — flushed
    /// into the histogram whenever the latency changes and at the end of
    /// the run. Only active in fast-forward mode; the reference engine
    /// records each latency directly.
    lat_batch: Vec<(Cycles, u64)>,
    /// Whether this run executes the fast-forward loop. Gates the
    /// LLC-hit service shortcut and the latency batching, so the
    /// reference loop stays on the unmodified `SharedLlc::service` path
    /// — an independent oracle for the differential suite.
    fast: bool,
    /// Cores that were handed an acknowledgement write-back in the last
    /// processed slot (their bus calendar changed).
    scratch_acks: Vec<usize>,
    /// Latency attribution, when enabled. Purely an observer: all its
    /// hooks read engine state and accumulate on the side, so the
    /// simulation — and every existing counter — is bit-identical with
    /// it present or absent.
    attr: Option<Box<AttrState>>,
    /// Sampled stage profiling, when the caller asked for it. `None`
    /// costs one untaken branch per slot; timings are read-only and
    /// never influence simulated time.
    profile: Option<&'c EngineProfile>,
}

impl<I: Iterator<Item = predllc_model::MemOp>> Engine<'_, I> {
    /// The reference loop: every slot boundary, exactly as the seed
    /// simulator walked it.
    fn run_reference(&mut self) -> Result<(bool, u64), SimError> {
        let sw = self.sw;
        let mut slot: u64 = 0;
        let mut last_progress_slot: u64 = 0;
        let mut last_total_ops: u64 = 0;
        loop {
            let now = sw.slot_start(slot);
            if let Some(cap) = self.cfg.max_cycles() {
                if now.as_u64() >= cap {
                    return Ok((true, slot));
                }
            }

            // 1. Local progress: every core executes private hits up to
            //    the boundary.
            {
                let Engine { cores, stats, .. } = self;
                for core in cores.iter_mut() {
                    let id = core.id();
                    core.advance_to(now, stats.core_mut(id));
                }
            }
            if self.cores.iter().all(CoreModel::is_finished) {
                return Ok((false, slot));
            }

            // 2. One bus transaction for the slot's owner.
            let out = self.process_slot(slot, now);
            if out.progressed {
                last_progress_slot = slot;
            }

            // Private-hit execution is progress too: only bus silence
            // *and* a frozen completion count together indicate a stuck
            // engine.
            let total_ops: u64 = self.stats.cores.iter().map(|c| c.ops_completed).sum();
            if total_ops != last_total_ops {
                last_total_ops = total_ops;
                last_progress_slot = slot;
            }

            self.stats.slots += 1;
            slot += 1;

            if slot - last_progress_slot >= DEADLOCK_GUARD_SLOTS {
                return Err(self.deadlock_at(slot));
            }
        }
    }

    /// The fast-forward loop.
    ///
    /// Invariants relative to the reference loop:
    ///
    /// * a core whose partition it does not share ("solo") is advanced
    ///   through its whole private-hit run at once — pure-local, so
    ///   executing it in one call is indistinguishable from one bounded
    ///   call per boundary;
    /// * cores in shared partitions advance boundary-by-boundary while
    ///   running (a partition-mate's eviction could invalidate their
    ///   future hits), which forces stepped slots only while one of them
    ///   is mid-run;
    /// * a calendar heap tracks, per core, the next slot in which it
    ///   could transmit (pending write-back, or pending request once
    ///   ready); every slot before the earliest calendar entry is idle
    ///   by construction and is accounted in bulk;
    /// * op-completion progress for the deadlock guard is credited at
    ///   the slot boundary where the reference engine would have counted
    ///   it (the first boundary at or after the op's start).
    fn run_fast(&mut self) -> Result<(bool, u64), SimError> {
        let sw = self.sw;
        let sw_raw = sw.as_u64();
        let n = self.cores.len();
        let cap_slot: Option<u64> = self.cfg.max_cycles().map(|cap| cap.div_ceil(sw_raw));
        if cap_slot == Some(0) {
            return Ok((true, 0));
        }
        // The last boundary the reference engine would advance cores to.
        let horizon = match cap_slot {
            Some(s) => sw.slot_start(s - 1),
            None => Cycles::new(u64::MAX),
        };
        // Which cores are alone in their LLC partition.
        let solo: Vec<bool> = (0..n)
            .map(|i| {
                self.cfg
                    .partitions()
                    .spec_of(CoreId::new(i as u16))
                    .is_private()
            })
            .collect();
        // Owned slot positions within one period, per core.
        let period = self.schedule.period();
        let mut positions: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (pos, owner) in self.schedule.slot_owners().iter().enumerate() {
            positions[owner.as_usize()].push(pos as u64);
        }
        // First slot >= `from` owned by core `i`.
        let next_owned = |i: usize, from: u64| -> u64 {
            let base = from - from % period;
            let off = from % period;
            for &q in &positions[i] {
                if q >= off {
                    return base + q;
                }
            }
            base + period + positions[i][0]
        };

        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        // The currently valid calendar slot per core (`u64::MAX` = none):
        // a heap entry is current iff it matches this stamp, so lazy
        // validation is one compare instead of a state recomputation.
        let mut cand_slot: Vec<u64> = vec![u64::MAX; n];
        let mut running: Vec<usize> = (0..n).collect();
        let mut finished = 0usize;
        let mut finish_boundary: u64 = 0;
        let mut slot: u64 = 0;
        let mut last_progress_slot: u64 = 0;

        loop {
            let now = sw.slot_start(slot);
            if let Some(cs) = cap_slot {
                if slot >= cs {
                    return Ok((true, slot));
                }
            }

            // 1. Advance every core that can still execute locally. Solo
            //    cores run to their next miss (or the cap horizon) in one
            //    call; shared-partition cores stop at this boundary.
            let mut shared_running = false;
            {
                let Engine { cores, stats, .. } = self;
                let mut k = 0;
                while k < running.len() {
                    let i = running[k];
                    let id = cores[i].id();
                    let bound = if solo[i] { horizon } else { now };
                    let run = cores[i].advance_run(bound, stats.core_mut(id));
                    if let Some(start) = run.last_op_start {
                        let b = start.as_u64().div_ceil(sw_raw);
                        last_progress_slot = last_progress_slot.max(b);
                    }
                    match run.progress {
                        CoreProgress::Running => {
                            if !solo[i] {
                                shared_running = true;
                            }
                            k += 1;
                        }
                        CoreProgress::Stalled => {
                            running.swap_remove(k);
                            let c = candidate(cores, i, slot, sw_raw, &next_owned)
                                .expect("a stalled core holds a request");
                            cand_slot[i] = c;
                            heap.push(Reverse((c, i)));
                        }
                        CoreProgress::Finished => {
                            running.swap_remove(k);
                            finished += 1;
                            let at = stats.core_mut(id).finished_at.as_u64();
                            finish_boundary = finish_boundary.max(at.div_ceil(sw_raw));
                            // A finished core may still owe write-backs.
                            if let Some(c) = candidate(cores, i, slot, sw_raw, &next_owned) {
                                cand_slot[i] = c;
                                heap.push(Reverse((c, i)));
                            }
                        }
                    }
                }
            }

            // 2. While a shared-partition core is mid-run, its future
            //    hits are exposed to partition-mates' evictions: step
            //    this slot exactly like the reference engine.
            let sel_prof = match self.profile {
                Some(p) if !shared_running && p.should_sample() => Some(p),
                _ => None,
            };
            let sel_start = sel_prof.map(|_| Instant::now());
            let event = if shared_running {
                Event::Step
            } else {
                // Validate calendar entries lazily until the minimum is
                // current, then pick the earliest of: transaction slot,
                // all-finished boundary, cycle cap, deadlock threshold.
                let s_cand = loop {
                    let Some(&Reverse((s, i))) = heap.peek() else {
                        break None;
                    };
                    if cand_slot[i] == s {
                        break Some(s);
                    }
                    // Stale entry: drop it; reinsert the current stamp if
                    // this core still has one and no entry carries it yet
                    // (the push that set the stamp also pushed an entry,
                    // so a mismatch here is always a leftover duplicate).
                    heap.pop();
                };
                let b_fin = (finished == n).then_some(finish_boundary);
                let d_slot = last_progress_slot + DEADLOCK_GUARD_SLOTS;
                // Precedence at equal slots mirrors the reference loop's
                // check order: deadlock (end of previous iteration), then
                // the cap (top of loop), then the all-finished break,
                // then the transaction itself.
                let mut choice = Event::Deadlock(d_slot);
                if let Some(cs) = cap_slot {
                    if cs < choice.slot() {
                        choice = Event::Timeout(cs);
                    }
                }
                if let Some(b) = b_fin {
                    if b < choice.slot() {
                        choice = Event::Finish(b);
                    }
                }
                if let Some(s) = s_cand {
                    if s < choice.slot() {
                        choice = Event::Transact(s);
                        // Consume the calendar entry: the slot is being
                        // processed now, and the post-slot bookkeeping
                        // reinserts whatever the core still owes.
                        let Some(Reverse((_, i))) = heap.pop() else {
                            unreachable!("peeked entry vanished");
                        };
                        cand_slot[i] = u64::MAX;
                    }
                }
                choice
            };
            // Only a genuine leap over idle slots counts as the
            // idle-jump stage; a same-slot transaction is ordinary
            // event selection.
            if let (Some(p), Some(t)) = (sel_prof, sel_start) {
                if matches!(event, Event::Transact(s) if s > slot) {
                    p.idle_jump.record(t.elapsed());
                }
            }

            match event {
                Event::Step => {
                    let out = self.process_slot(slot, now);
                    if out.progressed {
                        last_progress_slot = last_progress_slot.max(slot);
                    }
                    self.post_slot(
                        out,
                        slot,
                        &mut running,
                        &mut heap,
                        &mut cand_slot,
                        &next_owned,
                    );
                    self.stats.slots += 1;
                    slot += 1;
                    if slot.saturating_sub(last_progress_slot) >= DEADLOCK_GUARD_SLOTS {
                        return Err(self.deadlock_at(slot));
                    }
                }
                Event::Transact(s) => {
                    debug_assert!(s >= slot, "calendar slot behind the cursor");
                    // Every slot in between is idle by construction: its
                    // owner has neither a write-back nor a ready request
                    // (the calendar holds an entry for every core that
                    // does). Bank state composes with the jump because it
                    // is keyed by transaction timestamps, which the jump
                    // preserves; residual busyness never outlives the
                    // write-recovery window of the last transaction.
                    debug_assert!(
                        s == slot
                            || self.llc.memory_next_busy_until()
                                <= self.sw.slot_start(s) + self.sw.cycles(),
                        "idle-slot jump would overrun residual bank busyness"
                    );
                    let skipped = s - slot;
                    self.stats.slots += skipped;
                    self.stats.idle_slots += skipped;
                    slot = s;
                    let now = sw.slot_start(slot);
                    let out = self.process_slot(slot, now);
                    if out.progressed {
                        last_progress_slot = last_progress_slot.max(slot);
                    }
                    self.post_slot(
                        out,
                        slot,
                        &mut running,
                        &mut heap,
                        &mut cand_slot,
                        &next_owned,
                    );
                    self.stats.slots += 1;
                    slot += 1;
                    if slot.saturating_sub(last_progress_slot) >= DEADLOCK_GUARD_SLOTS {
                        return Err(self.deadlock_at(slot));
                    }
                }
                Event::Finish(b) => {
                    let skipped = b - slot;
                    self.stats.slots += skipped;
                    self.stats.idle_slots += skipped;
                    return Ok((false, b));
                }
                Event::Timeout(cs) => {
                    let skipped = cs - slot;
                    self.stats.slots += skipped;
                    self.stats.idle_slots += skipped;
                    return Ok((true, cs));
                }
                Event::Deadlock(d) => {
                    return Err(self.deadlock_at(d));
                }
            }
        }
    }

    /// Post-transaction calendar maintenance: the owner (and any cores
    /// that were handed acknowledgement write-backs) may transmit at new
    /// slots; a responded owner resumes local execution.
    /// Recomputes calendar entries after a processed slot. Every write
    /// updates the stamp in `cand_slot` — including clearing it when a
    /// core no longer has anything to transmit, so entries left behind by
    /// stepped slots can never validate against a stale stamp.
    fn post_slot(
        &mut self,
        out: SlotOutcome,
        slot: u64,
        running: &mut Vec<usize>,
        heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
        cand_slot: &mut [u64],
        next_owned: &dyn Fn(usize, u64) -> u64,
    ) {
        let sw_raw = self.sw.as_u64();
        let oi = self.schedule.owner(slot).as_usize();
        let from = slot + 1;
        for k in 0..self.scratch_acks.len() {
            let t = self.scratch_acks[k];
            let c = candidate(&self.cores, t, from, sw_raw, next_owned)
                .expect("an ack target holds a write-back");
            cand_slot[t] = c;
            heap.push(Reverse((c, t)));
        }
        if out.responded {
            running.push(oi);
        }
        // The owner may still hold a write-back or an unanswered request.
        match candidate(&self.cores, oi, from, sw_raw, next_owned) {
            Some(c) => {
                cand_slot[oi] = c;
                heap.push(Reverse((c, oi)));
            }
            None => cand_slot[oi] = u64::MAX,
        }
    }

    fn deadlock_at(&self, slot: u64) -> SimError {
        SimError::Deadlock {
            cycle: self.sw.slot_start(slot),
            pending: self
                .cores
                .iter()
                .filter(|c| !c.is_finished())
                .map(|c| c.id())
                .collect(),
        }
    }

    /// Executes the bus transaction of one slot: grant arbitration, LLC
    /// service or write-back, and all the accounting. This is the single
    /// shared implementation both engine loops call, so their behaviour
    /// cannot drift.
    fn process_slot(&mut self, slot: u64, now: Cycles) -> SlotOutcome {
        // Disabled profiling is exactly this one untaken branch.
        match self.profile {
            Some(p) if p.should_sample() => self.process_slot_timed(Some(p), slot, now),
            _ => self.process_slot_timed(None, slot, now),
        }
    }

    /// The slot transaction proper. `prof` is `Some` only on sampled
    /// slots; the timers read the wall clock and never touch simulated
    /// time, so a timed slot computes exactly what an untimed one does.
    fn process_slot_timed(
        &mut self,
        prof: Option<&EngineProfile>,
        slot: u64,
        now: Cycles,
    ) -> SlotOutcome {
        let sw = self.sw;
        let precise_sharers = self.cfg.precise_sharers();
        let fast = self.fast;
        self.scratch_acks.clear();
        let Engine {
            cores,
            llc,
            stats,
            events,
            schedule,
            lat_batch,
            scratch_acks,
            attr,
            ..
        } = self;
        let mut out = SlotOutcome {
            progressed: false,
            responded: false,
        };

        let arb_start = prof.map(|_| Instant::now());
        let owner = schedule.owner(slot);
        let oi = owner.as_usize();
        let has_wb = !cores[oi].pwb.is_empty();
        let has_req = cores[oi].request_ready(now);
        // A request only competes for the slot when it can make
        // progress: a first broadcast always can; afterwards the LLC
        // probe decides. Without this, a request stuck behind an
        // acknowledgement sitting in this core's own PWB would starve
        // that acknowledgement under a request-first arbiter.
        let req_useful = has_req && {
            let req = cores[oi].prb.peek().expect("request_ready checked");
            !req.broadcast || llc.probe(owner, req.op.addr.line()) != crate::llc::Probe::Stuck
        };
        let grant = if has_wb && req_useful && cores[oi].request_hazard() {
            // A request must not race its own queued write-back for
            // the same line.
            Some(BusGrant::WriteBack)
        } else {
            cores[oi].arbiter.choose(has_wb, req_useful)
        };
        // A ready-but-stuck request still counts as a blocked slot
        // for accounting when nothing else used the bus.
        let grant = match grant {
            None if has_req => {
                stats.core_mut(owner).blocked_slots += 1;
                if let Some(a) = attr {
                    a.note_blocked_wait(oi);
                }
                events.push(
                    now,
                    slot,
                    EventKind::Blocked {
                        core: owner,
                        reason: BlockReason::WaitingForEviction,
                    },
                );
                None
            }
            g => g,
        };
        if let (Some(p), Some(t)) = (prof, arb_start) {
            p.arbiter.record(t.elapsed());
        }

        let svc_start = prof.map(|_| Instant::now());
        let granted = grant.is_some();
        let mut touched_memory = false;
        match grant {
            None => {
                stats.idle_slots += 1;
            }
            Some(BusGrant::WriteBack) => {
                out.progressed = true;
                let wb = cores[oi].pwb.pop().expect("arbiter saw a write-back");
                stats.core_mut(owner).writebacks_sent += 1;
                events.push(
                    now,
                    slot,
                    EventKind::WritebackTransmitted {
                        core: owner,
                        line: wb.line,
                        kind: wb.kind,
                    },
                );
                let wr = llc.writeback(owner, wb.line, wb.dirty, wb.kind, now);
                if let Some(traffic) = wr.mem_traffic {
                    touched_memory = true;
                    push_mem_event(events, now, slot, owner, &traffic);
                }
                if let Some(freed) = wr.freed {
                    stats.lines_freed += 1;
                    events.push(
                        now,
                        slot,
                        EventKind::LineFreed {
                            line: freed,
                            partition: llc.partition_map().partition_of(owner),
                        },
                    );
                }
                if has_req {
                    stats.core_mut(owner).blocked_slots += 1;
                    if let Some(a) = attr {
                        a.note_writeback_wait(oi);
                    }
                    events.push(
                        now,
                        slot,
                        EventKind::Blocked {
                            core: owner,
                            reason: BlockReason::SlotUsedForWriteback,
                        },
                    );
                }
            }
            Some(BusGrant::Request) => {
                out.progressed = true;
                let (line, first) = {
                    let req = cores[oi].prb.peek().expect("arbiter saw a request");
                    (req.op.addr.line(), !req.broadcast)
                };
                cores[oi].prb.mark_broadcast();
                if first {
                    events.push(now, slot, EventKind::RequestBroadcast { core: owner, line });
                }
                // Fast path for the common case: a plain hit on a valid
                // resident line has no evictions, no memory traffic and
                // no events beyond the response itself. Fast-forward
                // only: the reference loop must keep exercising the full
                // service path it is the oracle for.
                if fast && llc.try_service_hit(owner, line) {
                    let resume = now + sw.cycles();
                    let (issued, clean_drop) =
                        cores[oi].complete_request(resume, stats.core_mut(owner));
                    if precise_sharers {
                        if let Some(dropped) = clean_drop {
                            llc.note_clean_drop(owner, dropped);
                        }
                    }
                    let latency = resume - issued;
                    record_latency(stats, lat_batch, fast, owner, latency);
                    stats.core_mut(owner).llc_hits += 1;
                    if let Some(a) = attr {
                        a.on_complete(owner, line, issued, resume, slot, &[None, None], || {
                            witness_snapshot(cores, stats, llc, owner, now)
                        });
                    }
                    out.responded = true;
                    if let (Some(p), Some(t)) = (prof, svc_start) {
                        p.llc.record(t.elapsed());
                    }
                    return out;
                }
                let res = {
                    let cores = &mut *cores;
                    let mut evict = |target: CoreId, victim| {
                        cores[target.as_usize()]
                            .private
                            .back_invalidate(victim)
                            .dirty
                    };
                    llc.service(owner, line, now, &mut evict)
                };
                for traffic in res.mem_traffic.iter().flatten() {
                    touched_memory = true;
                    push_mem_event(events, now, slot, owner, traffic);
                }
                for &(target, vline) in &res.invalidations {
                    stats.core_mut(target).back_invalidations += 1;
                    events.push(
                        now,
                        slot,
                        EventKind::BackInvalidation {
                            core: target,
                            line: vline,
                        },
                    );
                }
                // Dirty remote copies owe a data-carrying ack.
                for &(target, vline) in &res.ack_required {
                    cores[target.as_usize()].pwb.push(predllc_bus::WriteBack {
                        line: vline,
                        dirty: true,
                        kind: predllc_bus::WbKind::BackInvalAck,
                        enqueued_at: now,
                    });
                    scratch_acks.push(target.as_usize());
                }
                if let Some(position) = res.sequencer_position {
                    events.push(
                        now,
                        slot,
                        EventKind::SequencerEnqueued {
                            core: owner,
                            set: res.set,
                            position,
                        },
                    );
                }
                if let Some(ev) = res.eviction {
                    stats.evictions_triggered += 1;
                    events.push(
                        now,
                        slot,
                        EventKind::EvictionTriggered {
                            by: owner,
                            victim: ev.victim,
                            sharers: ev.sharers,
                        },
                    );
                    // No data-carrying acknowledgements owed means
                    // the entry freed within this very slot (clean
                    // or requester-held copies only).
                    if res.ack_required.is_empty() {
                        stats.lines_freed += 1;
                        events.push(
                            now,
                            slot,
                            EventKind::LineFreed {
                                line: ev.victim,
                                partition: llc.partition_map().partition_of(owner),
                            },
                        );
                    }
                }
                match res.outcome {
                    ServiceOutcome::Responded(kind) => {
                        let resume = now + sw.cycles();
                        let (issued, clean_drop) =
                            cores[oi].complete_request(resume, stats.core_mut(owner));
                        if precise_sharers {
                            if let Some(dropped) = clean_drop {
                                llc.note_clean_drop(owner, dropped);
                            }
                        }
                        let latency = resume - issued;
                        record_latency(stats, lat_batch, fast, owner, latency);
                        match kind {
                            ResponseKind::Hit => {
                                stats.core_mut(owner).llc_hits += 1;
                                events.push(now, slot, EventKind::Hit { core: owner, line });
                            }
                            ResponseKind::Fill => {
                                stats.core_mut(owner).llc_fills += 1;
                                events.push(now, slot, EventKind::Fill { core: owner, line });
                            }
                        }
                        if let Some(a) = attr {
                            a.on_complete(
                                owner,
                                line,
                                issued,
                                resume,
                                slot,
                                &res.mem_traffic,
                                || witness_snapshot(cores, stats, llc, owner, now),
                            );
                        }
                        out.responded = true;
                    }
                    ServiceOutcome::Blocked(reason) => {
                        stats.core_mut(owner).blocked_slots += 1;
                        if let Some(a) = attr {
                            a.note_blocked_wait(oi);
                        }
                        events.push(
                            now,
                            slot,
                            EventKind::Blocked {
                                core: owner,
                                reason,
                            },
                        );
                    }
                }
            }
        }
        if let (Some(p), Some(t)) = (prof, svc_start) {
            if granted {
                let d = t.elapsed();
                if touched_memory {
                    p.dram.record(d);
                } else {
                    p.llc.record(d);
                }
            }
        }
        out
    }

    /// Folds substrate counters into the report and builds it.
    fn finalize(mut self, timed_out: bool, end_slot: u64) -> RunReport {
        // Flush any run-length latency batches still open.
        for i in 0..self.lat_batch.len() {
            let (latency, count) = self.lat_batch[i];
            if count > 0 {
                self.stats
                    .core_mut(CoreId::new(i as u16))
                    .record_latency_n(latency, count);
            }
        }

        let Engine {
            cores,
            llc,
            mut stats,
            events,
            sw,
            attr,
            ..
        } = self;
        stats.absorb_memory(llc.memory_stats());
        debug_assert!(
            stats.max_dram_latency <= llc.memory_worst_case(),
            "memory backend exceeded its own analytical worst case: {} > {}",
            stats.max_dram_latency,
            llc.memory_worst_case()
        );
        let (seq_sets, seq_depth) = llc.sequencer_pressure();
        stats.max_sequencer_sets = seq_sets;
        stats.max_sequencer_depth = seq_depth;
        stats.max_pwb_depth = cores.iter().map(|c| c.pwb.max_depth()).max().unwrap_or(0);

        // Inclusion invariant: every privately cached line is a valid,
        // tracked sharer in the LLC. (Stale sharer bits in the other
        // direction are allowed — they are the conservative consequence
        // of silent clean drops.)
        if cfg!(debug_assertions) && !timed_out {
            for core in &cores {
                for line in core.private.l2_lines() {
                    debug_assert!(
                        llc.is_valid_sharer(core.id(), line),
                        "inclusion violated: {} holds {line} but the LLC does not track it",
                        core.id()
                    );
                }
            }
        }

        RunReport {
            stats,
            events,
            timed_out,
            cycles: sw.slot_start(end_slot),
            attribution: attr.map(|a| Box::new(a.into_report())),
        }
    }
}

/// Captures the witness's interferer and bank state: every other core's
/// concurrent request/write-back state plus the DRAM rows open at the
/// service slot. Restricted to engine-invariant state — counters and
/// buffers only mutated inside `process_slot`, and pending requests
/// gated on `issued_at <= now` (the fast engine's solo cores discover
/// their misses ahead of global time) — so the witness is bit-identical
/// across engine modes.
fn witness_snapshot<I: Iterator<Item = predllc_model::MemOp>>(
    cores: &[CoreModel<I>],
    stats: &SimStats,
    llc: &SharedLlc,
    owner: CoreId,
    now: Cycles,
) -> (Vec<InterfererSnapshot>, Vec<(predllc_model::BankId, u64)>) {
    let interferers = cores
        .iter()
        .filter(|c| c.id() != owner)
        .map(|c| {
            let pending = c.prb.peek().filter(|r| r.issued_at <= now);
            let cs = stats.core(c.id());
            InterfererSnapshot {
                core: c.id(),
                pending_line: pending.map(|r| r.op.addr.line()),
                pending_since: pending.map(|r| r.issued_at),
                pwb_depth: c.pwb.len(),
                writebacks_sent: cs.writebacks_sent,
                blocked_slots: cs.blocked_slots,
            }
        })
        .collect();
    (interferers, llc.open_rows())
}

/// The fast engine's next time-advancing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A shared-partition core is mid-run: process the current slot.
    Step,
    /// The earliest slot in which some core can transmit.
    Transact(u64),
    /// The boundary at which the reference engine observes every core
    /// finished.
    Finish(u64),
    /// The first slot at or past the `max_cycles` cap.
    Timeout(u64),
    /// The deadlock-guard threshold.
    Deadlock(u64),
}

impl Event {
    fn slot(self) -> u64 {
        match self {
            Event::Step => 0,
            Event::Transact(s) | Event::Finish(s) | Event::Timeout(s) | Event::Deadlock(s) => s,
        }
    }
}

/// The next slot in which core `i` could transmit, from `from` onward:
/// its next owned slot if a write-back is queued (a write-back may use
/// any owned slot), otherwise the first owned slot at or after its
/// pending request becomes ready, otherwise `None`.
fn candidate<I: Iterator<Item = predllc_model::MemOp>>(
    cores: &[CoreModel<I>],
    i: usize,
    from: u64,
    sw_raw: u64,
    next_owned: &dyn Fn(usize, u64) -> u64,
) -> Option<u64> {
    let core = &cores[i];
    if !core.pwb.is_empty() {
        Some(next_owned(i, from))
    } else {
        core.prb.peek().map(|r| {
            let ready = r.issued_at.as_u64().div_ceil(sw_raw);
            next_owned(i, from.max(ready))
        })
    }
}

/// Records one response latency — directly in reference mode, through the
/// per-core run-length batch in fast-forward mode (runs of identical
/// latencies collapse into one [`crate::LatencyHistogram::record_n`]).
fn record_latency(
    stats: &mut SimStats,
    lat_batch: &mut [(Cycles, u64)],
    batching: bool,
    owner: CoreId,
    latency: Cycles,
) {
    if !batching {
        stats.core_mut(owner).record_latency(latency);
        return;
    }
    let b = &mut lat_batch[owner.as_usize()];
    if b.1 > 0 && b.0 == latency {
        b.1 += 1;
    } else {
        if b.1 > 0 {
            stats.core_mut(owner).record_latency_n(b.0, b.1);
        }
        *b = (latency, 1);
    }
}

/// Records a [`EventKind::DramAccess`] for one backend access. Flat
/// backends (no row outcome) emit nothing, which keeps fixed-latency
/// event logs identical to the seed simulator's.
fn push_mem_event(
    events: &mut EventLog,
    now: Cycles,
    slot: u64,
    core: CoreId,
    traffic: &crate::llc::MemTraffic,
) {
    if let Some(outcome) = traffic.access.row {
        events.push(
            now,
            slot,
            EventKind::DramAccess {
                core,
                line: traffic.line,
                bank: traffic.access.bank,
                outcome,
                latency: traffic.access.latency,
                write: traffic.write,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionSpec, SharingMode};
    use predllc_model::{Address, MemOp};

    fn read(addr: u64) -> MemOp {
        MemOp::read(Address::new(addr))
    }

    fn write(addr: u64) -> MemOp {
        MemOp::write(Address::new(addr))
    }

    #[test]
    fn single_core_single_miss_latency() {
        // One core, private partition: miss issued at cycle 10 (after L2
        // lookup), serviced in its first slot at/after 10 — slot 1 at
        // cycle 50 under a 1-core schedule... actually every slot belongs
        // to c0, so the slot starting at 50 services it: response at 100.
        let cfg = SystemConfig::private_partitions(2, 2, 1).unwrap();
        let report = Simulator::new(cfg)
            .unwrap()
            .run(vec![vec![read(0)]])
            .unwrap();
        assert_eq!(report.stats.core(CoreId::new(0)).llc_fills, 1);
        // issued_at = 10, serviced in slot starting 50, response 100:
        // latency 90.
        assert_eq!(report.max_request_latency(), Cycles::new(90));
        assert!(!report.timed_out);
    }

    #[test]
    fn llc_hit_after_l2_eviction() {
        // Access enough distinct lines to overflow a tiny L2, then
        // revisit: the revisit hits in the LLC (inclusive).
        let cfg = SystemConfig::builder(1)
            .l2(predllc_model::CacheGeometry::new(1, 2, 64).unwrap())
            .l1i(predllc_model::CacheGeometry::new(1, 1, 64).unwrap())
            .l1d(predllc_model::CacheGeometry::new(1, 1, 64).unwrap())
            .partitions(vec![PartitionSpec::private(4, 4, CoreId::new(0))])
            .build()
            .unwrap();
        let trace = vec![read(0), read(64), read(128), read(0)];
        let report = Simulator::new(cfg).unwrap().run(vec![trace]).unwrap();
        let s = report.stats.core(CoreId::new(0));
        assert_eq!(s.llc_fills, 3);
        assert_eq!(s.llc_hits, 1, "the revisit of line 0 hits in the LLC");
        assert_eq!(s.ops_completed, 4);
    }

    #[test]
    fn two_cores_share_bus_without_interference_in_private_partitions() {
        let cfg = SystemConfig::private_partitions(4, 4, 2).unwrap();
        let t0 = vec![read(0), read(64)];
        let t1 = vec![read(0), read(64)]; // same addresses, own partition
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        for i in 0..2 {
            let s = report.stats.core(CoreId::new(i));
            assert_eq!(s.ops_completed, 2);
            assert_eq!(s.llc_fills, 2);
            assert_eq!(s.back_invalidations, 0);
        }
    }

    #[test]
    fn core_count_mismatch_is_an_error() {
        let cfg = SystemConfig::private_partitions(2, 2, 2).unwrap();
        let err = Simulator::new(cfg).unwrap().run(vec![vec![]]).unwrap_err();
        assert_eq!(
            err,
            SimError::CoreCountMismatch {
                workload_cores: 1,
                system_cores: 2
            }
        );
    }

    #[test]
    fn one_simulator_instance_runs_many_workloads() {
        // The redesigned API's core promise: validate once, run many.
        let sim = Simulator::new(SystemConfig::private_partitions(2, 2, 1).unwrap()).unwrap();
        let mut reports = Vec::new();
        for len in [1u64, 2, 3] {
            let trace: Vec<MemOp> = (0..len).map(|i| read(i * 64)).collect();
            reports.push(sim.run(vec![trace]).unwrap());
        }
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.stats.core(CoreId::new(0)).ops_completed, i as u64 + 1);
        }
        // Runs are independent: repeating the first workload reproduces
        // its report exactly (no state leaks between runs).
        let again = sim.run(vec![vec![read(0)]]).unwrap();
        assert_eq!(again.stats, reports[0].stats);
    }

    #[test]
    fn empty_traces_finish_at_cycle_zero() {
        let cfg = SystemConfig::private_partitions(2, 2, 2).unwrap();
        let report = Simulator::new(cfg)
            .unwrap()
            .run(vec![vec![], vec![]])
            .unwrap();
        assert_eq!(report.execution_time(), Cycles::ZERO);
        assert_eq!(report.stats.slots, 0);
    }

    #[test]
    fn shared_partition_eviction_roundtrip() {
        // Two cores, 1-set × 1-way shared partition: every access evicts
        // the other core's line; back-invalidations and acks must flow.
        let cfg = SystemConfig::shared_partition(1, 1, 2, SharingMode::BestEffort).unwrap();
        let t0 = vec![read(0), read(128)];
        let t1 = vec![read(64), read(192)];
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        let total_invals: u64 = (0..2)
            .map(|i| report.stats.core(CoreId::new(i)).back_invalidations)
            .sum();
        assert!(
            total_invals >= 2,
            "sharing a 1-line partition forces invalidations"
        );
        assert!(!report.timed_out);
        for i in 0..2 {
            assert_eq!(report.stats.core(CoreId::new(i)).ops_completed, 2);
        }
    }

    #[test]
    fn set_sequencer_mode_completes_the_same_workload() {
        let cfg = SystemConfig::shared_partition(1, 1, 2, SharingMode::SetSequencer).unwrap();
        let t0 = vec![read(0), read(128), read(256)];
        let t1 = vec![read(64), read(192), read(320)];
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        for i in 0..2 {
            assert_eq!(report.stats.core(CoreId::new(i)).ops_completed, 3);
        }
        assert!(report.stats.max_sequencer_depth >= 1);
    }

    #[test]
    fn dirty_lines_reach_dram_eventually() {
        // Write a line, then thrash the 1-way shared partition so it gets
        // evicted: the dirty data must reach DRAM.
        let cfg = SystemConfig::shared_partition(1, 1, 2, SharingMode::BestEffort).unwrap();
        let t0 = vec![write(0)];
        let t1 = vec![read(64), read(128)];
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        assert!(
            report.stats.dram_writes >= 1,
            "dirty line 0 was evicted to DRAM"
        );
    }

    #[test]
    fn max_cycles_cap_reports_timeout() {
        // Fig. 2's unbounded scenario: cua shares with ci, ci has two
        // slots per period; ci thrashes the set forever.
        let schedule =
            TdmSchedule::new(vec![CoreId::new(0), CoreId::new(1), CoreId::new(1)]).unwrap();
        let cfg = SystemConfig::builder(2)
            .schedule(schedule)
            .partitions(vec![PartitionSpec::shared(
                1,
                1,
                vec![CoreId::new(0), CoreId::new(1)],
                SharingMode::BestEffort,
            )])
            .max_cycles(50_000)
            .build()
            .unwrap();
        // ci ping-pongs writes to two lines in the set (dirty copies
        // force the Evict→WB round trip); cua wants a third line.
        let t0 = vec![read(0)];
        let t1: Vec<MemOp> = (0..10_000).map(|i| write(64 + 64 * (i % 2))).collect();
        let report = Simulator::new(cfg).unwrap().run(vec![t0, t1]).unwrap();
        assert!(report.timed_out, "cua never completes: WCL unbounded");
        assert_eq!(report.stats.core(CoreId::new(0)).ops_completed, 0);
    }

    #[test]
    fn events_are_recorded_when_enabled() {
        let cfg = SystemConfig::builder(1)
            .partitions(vec![PartitionSpec::private(2, 2, CoreId::new(0))])
            .record_events(true)
            .build()
            .unwrap();
        let report = Simulator::new(cfg)
            .unwrap()
            .run(vec![vec![read(0)]])
            .unwrap();
        assert!(report
            .events
            .filter(|k| matches!(k, EventKind::Fill { .. }))
            .next()
            .is_some());
        assert!(report
            .events
            .filter(|k| matches!(k, EventKind::RequestBroadcast { .. }))
            .next()
            .is_some());
    }

    #[test]
    fn engine_modes_agree_on_a_small_run() {
        let trace: Vec<MemOp> = (0..200)
            .map(|i| read((i % 37) * 64))
            .chain((0..50).map(|i| write((i % 11) * 64)))
            .collect();
        let mut reports = Vec::new();
        for mode in [EngineMode::Reference, EngineMode::FastForward] {
            let cfg = SystemConfig::builder(2)
                .partitions(vec![
                    PartitionSpec::private(2, 2, CoreId::new(0)),
                    PartitionSpec::private(2, 2, CoreId::new(1)),
                ])
                .engine(mode)
                .build()
                .unwrap();
            assert_eq!(cfg.effective_engine(), mode);
            let report = Simulator::new(cfg)
                .unwrap()
                .run(vec![trace.clone(), trace.clone()])
                .unwrap();
            reports.push(report);
        }
        assert_eq!(reports[0].stats, reports[1].stats);
        assert_eq!(reports[0].timed_out, reports[1].timed_out);
        assert_eq!(reports[0].cycles, reports[1].cycles);
    }

    #[test]
    fn event_recording_falls_back_to_reference() {
        let cfg = SystemConfig::builder(1)
            .partitions(vec![PartitionSpec::private(2, 2, CoreId::new(0))])
            .engine(EngineMode::FastForward)
            .record_events(true)
            .build()
            .unwrap();
        assert_eq!(cfg.effective_engine(), EngineMode::Reference);
        // The run still records events.
        let report = Simulator::new(cfg)
            .unwrap()
            .run(vec![vec![read(0), read(0)]])
            .unwrap();
        assert!(!report.events.events().is_empty());
    }
}
