//! LLC partitions: rectangular `sets × ways` carve-outs of the physical
//! LLC, each either private to one core or shared by several.
//!
//! The paper's notation (§5):
//!
//! * `SS(s, w, n)` — a partition of `s` sets and `w` ways shared among `n`
//!   cores *with* the set sequencer;
//! * `NSS(s, w, n)` — the same sharing, but the LLC services contending
//!   requests best-effort;
//! * `P(s, w)` — a partition privately owned by one core.
//!
//! Partitions are disjoint cache real estate: cores in different
//! partitions never interfere in the LLC (they still share the TDM bus).

use std::fmt;

use predllc_model::{CacheGeometry, CoreId, LineAddr, PartitionId, SetIdx};

use crate::error::ConfigError;

/// How contention *within* a shared partition is resolved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SharingMode {
    /// The set sequencer (§4.5) orders pending allocations per set in bus
    /// broadcast order, giving the low WCL of Theorem 4.8.
    #[default]
    SetSequencer,
    /// Best-effort: whichever core's slot comes first claims a freed
    /// entry. Bounded only by the pessimistic Theorem 4.7 under 1S-TDM,
    /// and unbounded under general TDM (§4.1). The paper's `NSS`.
    BestEffort,
}

impl fmt::Display for SharingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharingMode::SetSequencer => f.write_str("SS"),
            SharingMode::BestEffort => f.write_str("NSS"),
        }
    }
}

/// One LLC partition: its shape, its sharers, and its sharing mode.
///
/// # Examples
///
/// ```
/// use predllc_core::{PartitionSpec, SharingMode};
/// use predllc_model::CoreId;
///
/// // SS(1, 16, 4): one set, sixteen ways, shared by four cores.
/// let p = PartitionSpec::shared(1, 16, CoreId::first(4).collect(), SharingMode::SetSequencer);
/// assert_eq!(p.lines(), 16);
/// assert_eq!(p.to_string(), "SS(1,16,4)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Number of sets in the partition.
    pub sets: u32,
    /// Number of ways per set.
    pub ways: u32,
    /// The cores mapped to this partition.
    pub cores: Vec<CoreId>,
    /// How intra-partition contention is resolved (irrelevant when a
    /// single core owns the partition).
    pub mode: SharingMode,
}

impl PartitionSpec {
    /// Creates a shared partition (`SS`/`NSS` depending on `mode`).
    pub fn shared(sets: u32, ways: u32, cores: Vec<CoreId>, mode: SharingMode) -> Self {
        PartitionSpec {
            sets,
            ways,
            cores,
            mode,
        }
    }

    /// Creates a private partition `P(sets, ways)` owned by `core`.
    pub fn private(sets: u32, ways: u32, core: CoreId) -> Self {
        PartitionSpec {
            sets,
            ways,
            cores: vec![core],
            mode: SharingMode::default(),
        }
    }

    /// Number of cache lines in the partition (`M` in the analysis).
    pub fn lines(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways)
    }

    /// Capacity in bytes for a given line size.
    pub fn capacity_bytes(&self, line_size: u32) -> u64 {
        self.lines() * u64::from(line_size)
    }

    /// Number of sharers (`n` in the analysis).
    pub fn sharers(&self) -> u16 {
        self.cores.len() as u16
    }

    /// Whether a single core owns the partition (the paper's `P`).
    pub fn is_private(&self) -> bool {
        self.cores.len() == 1
    }

    /// The partition-local set a line maps to (`line mod sets`).
    pub fn set_of(&self, line: LineAddr) -> SetIdx {
        SetIdx((line.as_u64() % u64::from(self.sets)) as u32)
    }

    /// The partition viewed as a cache geometry (for building the backing
    /// structure).
    ///
    /// # Errors
    ///
    /// Propagates [`predllc_model::ModelError`] for zero dimensions.
    pub fn geometry(&self, line_size: u32) -> Result<CacheGeometry, predllc_model::ModelError> {
        CacheGeometry::new(self.sets, self.ways, line_size)
    }
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_private() {
            write!(f, "P({},{})", self.sets, self.ways)
        } else {
            write!(
                f,
                "{}({},{},{})",
                self.mode,
                self.sets,
                self.ways,
                self.cores.len()
            )
        }
    }
}

/// The full partitioning of the LLC: a list of disjoint partitions
/// covering every core exactly once.
///
/// # Examples
///
/// ```
/// use predllc_core::{PartitionMap, PartitionSpec, SharingMode};
/// use predllc_model::{CacheGeometry, CoreId};
///
/// # fn main() -> Result<(), predllc_core::ConfigError> {
/// // Two cores sharing one partition, two with private ones.
/// let map = PartitionMap::new(vec![
///     PartitionSpec::shared(8, 4, vec![CoreId::new(0), CoreId::new(1)],
///                           SharingMode::SetSequencer),
///     PartitionSpec::private(8, 4, CoreId::new(2)),
///     PartitionSpec::private(8, 4, CoreId::new(3)),
/// ], 4, CacheGeometry::PAPER_L3)?;
/// assert_eq!(map.partition_of(CoreId::new(1)).index(), 0);
/// assert_eq!(map.partition_of(CoreId::new(3)).index(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    partitions: Vec<PartitionSpec>,
    /// `core index → partition index`.
    core_to_partition: Vec<PartitionId>,
}

impl PartitionMap {
    /// Validates and builds a partition map for `num_cores` cores over a
    /// physical LLC of shape `physical`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::NoCores`] if `num_cores` is zero;
    /// * [`ConfigError::ZeroPartition`] / [`ConfigError::EmptyPartition`]
    ///   for degenerate partitions;
    /// * [`ConfigError::PartitionExceedsGeometry`] /
    ///   [`ConfigError::PartitionsExceedLlc`] if the partitions do not fit
    ///   in `physical` (dimension-wise and in total lines);
    /// * [`ConfigError::CoreWithoutPartition`] /
    ///   [`ConfigError::CoreInMultiplePartitions`] /
    ///   [`ConfigError::PartitionCoreOutOfRange`] for bad core mappings.
    pub fn new(
        partitions: Vec<PartitionSpec>,
        num_cores: u16,
        physical: CacheGeometry,
    ) -> Result<Self, ConfigError> {
        if num_cores == 0 {
            return Err(ConfigError::NoCores);
        }
        let mut core_to_partition: Vec<Option<PartitionId>> = vec![None; num_cores as usize];
        let mut total_lines = 0u64;
        for (i, p) in partitions.iter().enumerate() {
            if p.sets == 0 || p.ways == 0 {
                return Err(ConfigError::ZeroPartition { index: i });
            }
            if p.cores.is_empty() {
                return Err(ConfigError::EmptyPartition { index: i });
            }
            if p.sets > physical.sets() || p.ways > physical.ways() {
                return Err(ConfigError::PartitionExceedsGeometry { index: i });
            }
            total_lines += p.lines();
            for &core in &p.cores {
                if core.index() >= num_cores {
                    return Err(ConfigError::PartitionCoreOutOfRange { core, num_cores });
                }
                let slot = &mut core_to_partition[core.as_usize()];
                if slot.is_some() {
                    return Err(ConfigError::CoreInMultiplePartitions { core });
                }
                *slot = Some(PartitionId::new(i as u16));
            }
        }
        if total_lines > physical.lines() {
            return Err(ConfigError::PartitionsExceedLlc {
                requested_lines: total_lines,
                available_lines: physical.lines(),
            });
        }
        let core_to_partition = core_to_partition
            .into_iter()
            .enumerate()
            .map(|(c, p)| {
                p.ok_or(ConfigError::CoreWithoutPartition {
                    core: CoreId::new(c as u16),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PartitionMap {
            partitions,
            core_to_partition,
        })
    }

    /// The partitions, in declaration order.
    pub fn partitions(&self) -> &[PartitionSpec] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the map is empty (never true for a validated map).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The partition a core is mapped to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the validated range.
    pub fn partition_of(&self, core: CoreId) -> PartitionId {
        self.core_to_partition[core.as_usize()]
    }

    /// The spec of the partition a core is mapped to.
    pub fn spec_of(&self, core: CoreId) -> &PartitionSpec {
        &self.partitions[self.partition_of(core).as_usize()]
    }

    /// The spec of a partition by id.
    pub fn spec(&self, id: PartitionId) -> &PartitionSpec {
        &self.partitions[id.as_usize()]
    }

    /// Number of cores covered.
    pub fn num_cores(&self) -> u16 {
        self.core_to_partition.len() as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn shared_partition_notation() {
        let ss = PartitionSpec::shared(1, 2, CoreId::first(4).collect(), SharingMode::SetSequencer);
        assert_eq!(ss.to_string(), "SS(1,2,4)");
        let nss = PartitionSpec::shared(1, 4, CoreId::first(4).collect(), SharingMode::BestEffort);
        assert_eq!(nss.to_string(), "NSS(1,4,4)");
        let p = PartitionSpec::private(8, 2, c(0));
        assert_eq!(p.to_string(), "P(8,2)");
        assert!(p.is_private());
        assert!(!ss.is_private());
    }

    #[test]
    fn lines_and_capacity() {
        let p = PartitionSpec::private(32, 2, c(0));
        assert_eq!(p.lines(), 64);
        assert_eq!(p.capacity_bytes(64), 4096);
        assert_eq!(p.sharers(), 1);
    }

    #[test]
    fn set_mapping_is_modulo() {
        let p = PartitionSpec::private(8, 2, c(0));
        assert_eq!(p.set_of(LineAddr::new(0)), SetIdx(0));
        assert_eq!(p.set_of(LineAddr::new(8)), SetIdx(0));
        assert_eq!(p.set_of(LineAddr::new(9)), SetIdx(1));
    }

    #[test]
    fn valid_map_builds() {
        let map = PartitionMap::new(
            vec![
                PartitionSpec::shared(4, 4, vec![c(0), c(1)], SharingMode::BestEffort),
                PartitionSpec::private(4, 4, c(2)),
            ],
            3,
            CacheGeometry::PAPER_L3,
        )
        .unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map.partition_of(c(0)), map.partition_of(c(1)));
        assert_ne!(map.partition_of(c(0)), map.partition_of(c(2)));
        assert_eq!(map.spec_of(c(2)).to_string(), "P(4,4)");
        assert_eq!(map.num_cores(), 3);
        assert!(!map.is_empty());
    }

    #[test]
    fn rejects_unmapped_core() {
        let err = PartitionMap::new(
            vec![PartitionSpec::private(4, 4, c(0))],
            2,
            CacheGeometry::PAPER_L3,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::CoreWithoutPartition { core: c(1) });
    }

    #[test]
    fn rejects_double_mapping() {
        let err = PartitionMap::new(
            vec![
                PartitionSpec::private(4, 4, c(0)),
                PartitionSpec::shared(4, 4, vec![c(0), c(1)], SharingMode::BestEffort),
            ],
            2,
            CacheGeometry::PAPER_L3,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::CoreInMultiplePartitions { core: c(0) });
    }

    #[test]
    fn rejects_out_of_range_core() {
        let err = PartitionMap::new(
            vec![PartitionSpec::private(4, 4, c(5))],
            2,
            CacheGeometry::PAPER_L3,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::PartitionCoreOutOfRange { core, num_cores: 2 } if core == c(5)
        ));
    }

    #[test]
    fn rejects_overcommitted_llc() {
        // 2 partitions x 32x16 = 1024 lines > 512 physical.
        let err = PartitionMap::new(
            vec![
                PartitionSpec::private(32, 16, c(0)),
                PartitionSpec::private(32, 16, c(1)),
            ],
            2,
            CacheGeometry::PAPER_L3,
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::PartitionsExceedLlc { .. }));
    }

    #[test]
    fn rejects_oversized_partition() {
        let err = PartitionMap::new(
            vec![PartitionSpec::private(64, 4, c(0))], // 64 sets > 32 physical
            1,
            CacheGeometry::PAPER_L3,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::PartitionExceedsGeometry { index: 0 });
    }

    #[test]
    fn rejects_zero_and_empty() {
        let err = PartitionMap::new(
            vec![PartitionSpec::private(0, 4, c(0))],
            1,
            CacheGeometry::PAPER_L3,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroPartition { index: 0 });

        let err = PartitionMap::new(
            vec![PartitionSpec::shared(4, 4, vec![], SharingMode::BestEffort)],
            1,
            CacheGeometry::PAPER_L3,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::EmptyPartition { index: 0 });
    }

    #[test]
    fn rejects_zero_cores() {
        let err = PartitionMap::new(vec![], 0, CacheGeometry::PAPER_L3).unwrap_err();
        assert_eq!(err, ConfigError::NoCores);
    }
}
