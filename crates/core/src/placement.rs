//! Physical placement of partitions onto the LLC's sets × ways grid.
//!
//! [`PartitionMap`] validation checks capacity; real deployments also
//! need concrete **placement**: each partition must occupy a disjoint
//! rectangle of the physical cache (a set range × way range), the way
//! hardware way-masking (Arm Lite-DSU, Intel CAT) and page coloring
//! (sets) compose. [`pack`] computes such a placement with a shelf
//! packer, or reports that the partitions do not fit rectangularly.
//!
//! The packer is *sufficient*, not *necessary*: shelf packing can fail
//! on instances an optimal rectangle packer could place. For the paper's
//! configurations (uniform partitions) it is exact.

use std::error::Error;
use std::fmt;

use predllc_model::{CacheGeometry, PartitionId};

use crate::partition::PartitionMap;

/// The physical rectangle assigned to one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Which partition this rectangle belongs to.
    pub partition: PartitionId,
    /// First physical set of the rectangle.
    pub set_start: u32,
    /// Number of sets.
    pub sets: u32,
    /// First physical way of the rectangle.
    pub way_start: u32,
    /// Number of ways.
    pub ways: u32,
}

impl Placement {
    /// Whether two placements overlap anywhere.
    pub fn overlaps(&self, other: &Placement) -> bool {
        let set_overlap = self.set_start < other.set_start + other.sets
            && other.set_start < self.set_start + self.sets;
        let way_overlap = self.way_start < other.way_start + other.ways
            && other.way_start < self.way_start + self.ways;
        set_overlap && way_overlap
    }

    /// Whether the rectangle fits inside `physical`.
    pub fn fits(&self, physical: CacheGeometry) -> bool {
        self.set_start + self.sets <= physical.sets()
            && self.way_start + self.ways <= physical.ways()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: sets {}..{}, ways {}..{}",
            self.partition,
            self.set_start,
            self.set_start + self.sets,
            self.way_start,
            self.way_start + self.ways
        )
    }
}

/// Why packing failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// The shelf packer ran out of ways. The instance may still be
    /// packable by an optimal packer; try reshaping partitions.
    DoesNotFit {
        /// Ways the shelves would need.
        ways_needed: u32,
        /// Ways the physical cache has.
        ways_available: u32,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::DoesNotFit {
                ways_needed,
                ways_available,
            } => write!(
                f,
                "shelf packing needs {ways_needed} ways but the cache has {ways_available} \
                 (try reshaping partitions)"
            ),
        }
    }
}

impl Error for PlacementError {}

/// Packs the partitions of `map` into `physical` using shelf packing:
/// partitions are sorted by decreasing way count and placed left to
/// right along the set axis on "shelves" spanning a way range; a new
/// shelf opens when the current one runs out of sets.
///
/// The returned placements are disjoint and in-bounds (guaranteed, and
/// re-checked by a debug assertion).
///
/// # Errors
///
/// [`PlacementError::DoesNotFit`] when the shelves exceed the physical
/// way count.
///
/// # Examples
///
/// ```
/// use predllc_core::placement::pack;
/// use predllc_core::{PartitionMap, PartitionSpec};
/// use predllc_model::{CacheGeometry, CoreId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's P(8,2) x 4 split of a 4096 B budget.
/// let map = PartitionMap::new(
///     (0..4).map(|i| PartitionSpec::private(8, 2, CoreId::new(i))).collect(),
///     4,
///     CacheGeometry::PAPER_L3,
/// )?;
/// let placements = pack(&map, CacheGeometry::PAPER_L3)?;
/// assert_eq!(placements.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn pack(map: &PartitionMap, physical: CacheGeometry) -> Result<Vec<Placement>, PlacementError> {
    // Indices sorted by decreasing ways, then decreasing sets: tallest
    // shelves first minimizes wasted way-bands.
    let mut order: Vec<usize> = (0..map.len()).collect();
    order.sort_by_key(|&i| {
        let p = &map.partitions()[i];
        (std::cmp::Reverse(p.ways), std::cmp::Reverse(p.sets))
    });

    let mut placements = vec![None; map.len()];
    let mut shelf_way_start = 0u32; // first way of the open shelf
    let mut shelf_ways = 0u32; // height of the open shelf
    let mut set_cursor = 0u32; // next free set on the open shelf

    for &i in &order {
        let p = &map.partitions()[i];
        let fits_open_shelf =
            shelf_ways >= p.ways && set_cursor + p.sets <= physical.sets() && shelf_ways > 0;
        if !fits_open_shelf {
            // Open a new shelf above the previous one.
            shelf_way_start += shelf_ways;
            shelf_ways = p.ways;
            set_cursor = 0;
            if shelf_way_start + shelf_ways > physical.ways() {
                return Err(PlacementError::DoesNotFit {
                    ways_needed: shelf_way_start + shelf_ways,
                    ways_available: physical.ways(),
                });
            }
        }
        placements[i] = Some(Placement {
            partition: PartitionId::new(i as u16),
            set_start: set_cursor,
            sets: p.sets,
            way_start: shelf_way_start,
            ways: p.ways,
        });
        set_cursor += p.sets;
    }

    let placements: Vec<Placement> = placements
        .into_iter()
        .map(|p| p.expect("every partition was placed"))
        .collect();
    debug_assert!(check_disjoint_and_in_bounds(&placements, physical).is_ok());
    Ok(placements)
}

/// Verifies placements are pairwise disjoint and inside `physical`.
///
/// # Errors
///
/// Returns the first offending pair (or a placement paired with itself
/// when it is out of bounds).
pub fn check_disjoint_and_in_bounds(
    placements: &[Placement],
    physical: CacheGeometry,
) -> Result<(), (Placement, Placement)> {
    for (i, a) in placements.iter().enumerate() {
        if !a.fits(physical) {
            return Err((*a, *a));
        }
        for b in &placements[i + 1..] {
            if a.overlaps(b) {
                return Err((*a, *b));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionSpec, SharingMode};
    use predllc_model::CoreId;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn map(specs: Vec<PartitionSpec>, n: u16) -> PartitionMap {
        PartitionMap::new(specs, n, CacheGeometry::PAPER_L3).unwrap()
    }

    #[test]
    fn paper_private_split_packs() {
        let m = map(
            (0..4).map(|i| PartitionSpec::private(8, 2, c(i))).collect(),
            4,
        );
        let p = pack(&m, CacheGeometry::PAPER_L3).unwrap();
        check_disjoint_and_in_bounds(&p, CacheGeometry::PAPER_L3).unwrap();
        // Four 8x2 partitions fit on one 2-way shelf (4 x 8 = 32 sets).
        assert!(p.iter().all(|pl| pl.way_start == 0 && pl.ways == 2));
    }

    #[test]
    fn mixed_private_and_shared_pack() {
        let m = map(
            vec![
                PartitionSpec::private(8, 16, c(0)),
                PartitionSpec::shared(24, 4, vec![c(1), c(2), c(3)], SharingMode::SetSequencer),
            ],
            4,
        );
        let p = pack(&m, CacheGeometry::PAPER_L3).unwrap();
        check_disjoint_and_in_bounds(&p, CacheGeometry::PAPER_L3).unwrap();
        // The taller partition opens the first shelf; the shorter one
        // still fits beside it on the set axis, so no new shelf opens.
        assert_eq!(p[0].way_start, 0);
        assert_eq!((p[1].way_start, p[1].set_start), (0, 8));
    }

    #[test]
    fn full_llc_single_partition() {
        let m = map(
            vec![PartitionSpec::shared(
                32,
                16,
                CoreId::first(4).collect(),
                SharingMode::SetSequencer,
            )],
            4,
        );
        let p = pack(&m, CacheGeometry::PAPER_L3).unwrap();
        assert_eq!(p[0].sets, 32);
        assert_eq!(p[0].ways, 16);
        assert_eq!(p[0].set_start, 0);
        assert_eq!(p[0].way_start, 0);
    }

    #[test]
    fn shelf_overflow_is_reported() {
        // Three 20-set x 8-way partitions pass the capacity check
        // (480 <= 512 lines) but no two fit side by side on the set
        // axis, so shelf packing needs 24 ways > 16.
        let m = map(
            (0..3)
                .map(|i| PartitionSpec::private(20, 8, c(i)))
                .collect(),
            3,
        );
        let err = pack(&m, CacheGeometry::PAPER_L3).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::DoesNotFit {
                ways_needed: 24,
                ways_available: 16
            }
        ));
    }

    #[test]
    fn placements_returned_in_partition_order() {
        let m = map(
            vec![
                PartitionSpec::private(4, 2, c(0)),  // small: placed later...
                PartitionSpec::private(8, 16, c(1)), // ...but index order preserved
            ],
            2,
        );
        let p = pack(&m, CacheGeometry::PAPER_L3).unwrap();
        assert_eq!(p[0].partition, PartitionId::new(0));
        assert_eq!(p[0].ways, 2);
        assert_eq!(p[1].partition, PartitionId::new(1));
        assert_eq!(p[1].ways, 16);
    }

    #[test]
    fn overlap_detection() {
        let a = Placement {
            partition: PartitionId::new(0),
            set_start: 0,
            sets: 8,
            way_start: 0,
            ways: 4,
        };
        let b = Placement {
            partition: PartitionId::new(1),
            set_start: 4,
            sets: 8,
            way_start: 2,
            ways: 4,
        };
        let c = Placement {
            partition: PartitionId::new(2),
            set_start: 8,
            sets: 8,
            way_start: 0,
            ways: 4,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert_eq!(
            check_disjoint_and_in_bounds(&[a, b], CacheGeometry::PAPER_L3),
            Err((a, b))
        );
        assert!(check_disjoint_and_in_bounds(&[a, c], CacheGeometry::PAPER_L3).is_ok());
    }

    #[test]
    fn out_of_bounds_detection() {
        let big = Placement {
            partition: PartitionId::new(0),
            set_start: 30,
            sets: 8,
            way_start: 0,
            ways: 4,
        };
        assert!(!big.fits(CacheGeometry::PAPER_L3));
        assert_eq!(
            check_disjoint_and_in_bounds(&[big], CacheGeometry::PAPER_L3),
            Err((big, big))
        );
    }

    #[test]
    fn display_is_informative() {
        let p = Placement {
            partition: PartitionId::new(1),
            set_start: 8,
            sets: 24,
            way_start: 4,
            ways: 12,
        };
        assert_eq!(p.to_string(), "P1: sets 8..32, ways 4..16");
        let e = PlacementError::DoesNotFit {
            ways_needed: 24,
            ways_available: 16,
        };
        assert!(e.to_string().contains("24"));
    }
}
