//! `predllc-core` — the primary contribution of Wu & Patel, *"Predictable
//! Sharing of Last-level Cache Partitions for Multi-core Safety-critical
//! Systems"* (DAC 2022): shared LLC partitions arbitrated by 1S-TDM, the
//! **set sequencer** micro-architectural extension, the cycle-accurate
//! multicore trace simulator the paper evaluates with, and the worst-case
//! latency (WCL) analysis of §4.
//!
//! # Architecture
//!
//! * [`partition`] — carving the LLC into shared/private `sets × ways`
//!   partitions and mapping cores onto them.
//! * [`sequencer`] — the set sequencer (QLT + SQ): a FIFO per contended
//!   set that preserves bus broadcast order of pending allocations (§4.5).
//! * [`llc`] — the inclusive shared-LLC controller: hit/fill/eviction
//!   state machine with back-invalidations and multi-slot eviction
//!   completion, in front of a pluggable
//!   [`MemoryBackend`](predllc_dram::MemoryBackend) (fixed-latency by
//!   default; bank/row-buffer-aware via
//!   [`predllc_dram::BankedDram`]). **Slot-budget invariant:** the
//!   backend's analytical worst-case access latency must fit inside the
//!   TDM slot — [`SystemConfigBuilder`] rejects any backend that
//!   violates it, and [`analysis::SlotBudget`] exposes the check.
//! * [`core_model`] — one core's trace-driven execution: private cache
//!   hits, the single outstanding request, refills.
//! * [`engine`] — the slot-stepped simulator tying cores, TDM bus and LLC
//!   together.
//! * [`profile`] — opt-in sampled wall-clock profiling of the engine's
//!   per-slot stages (arbiter / LLC / DRAM / idle-jump), reading time
//!   without ever feeding it back into the simulation.
//! * [`analysis`] — Theorems 4.7/4.8, the private-partition bound, and
//!   boundedness classification of arbitrary TDM schedules (§4.1–4.2).
//! * [`stats`], [`events`] — measurement and inspectable event traces
//!   (used to replay Figures 2–4 of the paper in tests).
//!
//! # Quickstart
//!
//! The simulator runs anything implementing the streaming
//! [`Workload`](predllc_workload::Workload) trait — generators, trace
//! sets, or plain `Vec<Vec<MemOp>>` traces. `run` borrows the simulator,
//! so one validated instance serves many runs.
//!
//! ```
//! use predllc_core::analysis::WclParams;
//! use predllc_core::{SharingMode, Simulator, SystemConfig};
//! use predllc_model::{Address, MemOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four cores sharing one 1-set x 16-way partition with a set
//! // sequencer, the paper's Fig. 7 "SS" configuration.
//! let config = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer)?;
//!
//! // The analytical WCL for this configuration is 5000 cycles (paper §5).
//! let params = WclParams::from_config(&config)?;
//! assert_eq!(params.wcl_set_sequencer().as_u64(), 5000);
//!
//! // Validate once, then run as many workloads as you like: here a
//! // materialized trace per core (a `Vec<Vec<MemOp>>` is a `Workload`).
//! let sim = Simulator::new(config)?;
//! let traces = vec![
//!     vec![MemOp::read(Address::new(0))],
//!     vec![MemOp::read(Address::new(64))],
//!     vec![MemOp::read(Address::new(128))],
//!     vec![MemOp::read(Address::new(192))],
//! ];
//! let report = sim.run(&traces)?;
//! assert!(report.max_request_latency().as_u64() <= 5000);
//!
//! // The same simulator streams a generator next — no trace storage.
//! use predllc_workload::gen::UniformGen;
//! let gen = UniformGen::new(8192, 500).with_cores(4);
//! let streamed = sim.run(&gen)?;
//! assert!(streamed.max_request_latency().as_u64() <= 5000);
//!
//! // Swap the memory system: same platform over a bank/row-buffer-aware
//! // DRAM (paper-calibrated timing has the same 30-cycle worst case, so
//! // the slot budget — and the WCL bound — still hold).
//! use predllc_dram::MemoryConfig;
//! let banked = SystemConfig::builder(4)
//!     .partitions(vec![predllc_core::PartitionSpec::shared(
//!         1, 16,
//!         (0..4).map(predllc_model::CoreId::new).collect(),
//!         SharingMode::SetSequencer,
//!     )])
//!     .memory(MemoryConfig::banked())
//!     .build()?;
//! let report = Simulator::new(banked)?.run(&gen)?;
//! assert!(report.max_request_latency().as_u64() <= 5000);
//! assert!(report.stats.dram_row_hits + report.stats.dram_row_conflicts > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attribution;
pub mod config;
pub mod core_model;
pub mod engine;
pub mod error;
pub mod events;
pub mod histogram;
pub mod llc;
pub mod partition;
pub mod placement;
pub mod profile;
pub mod sequencer;
pub mod stats;

pub use attribution::{AttributionReport, Component, ComponentSet, WclWitness};
pub use config::{EngineMode, SystemConfig, SystemConfigBuilder};
pub use engine::{RunReport, Simulator};
pub use error::{ConfigError, SimError};
pub use events::{Event, EventKind, EventLog};
pub use histogram::{LatencyHistogram, LatencySummary};
pub use partition::{PartitionMap, PartitionSpec, SharingMode};
pub use placement::{pack, Placement, PlacementError};
/// Re-export of the memory-backend selection consumed by
/// [`SystemConfigBuilder::memory`].
pub use predllc_dram::MemoryConfig;
pub use profile::EngineProfile;
pub use sequencer::SetSequencer;
pub use stats::{CoreStats, SimStats};
