//! Per-request latency histograms: log-bucketed, mergeable, O(1) per
//! record.
//!
//! The WCL experiments used to report a single scalar — the worst
//! request latency of a run. A [`LatencyHistogram`] keeps the whole
//! distribution at a bounded memory cost (496 counters), so a run can
//! report p50/p90/p99/p100 and the full bucket breakdown. The bucket
//! scheme is log-linear (HDR-histogram style): values below 8 get exact
//! buckets, and every power-of-two octave above is split into 8
//! sub-buckets, keeping the relative quantile error below 12.5%.
//!
//! Exact extremes are tracked separately, so [`LatencyHistogram::max`]
//! — and therefore the 100th percentile — is *exact*, not a bucket
//! bound: `p100` always equals the run's `max_request_latency`.
//!
//! Histograms merge associatively and commutatively (plain counter
//! addition), so per-core records fold into a system-wide distribution
//! — and distributions from different runs fold into campaign-level
//! reports — without any loss.

use std::fmt;

use predllc_model::Cycles;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^GROUP_BITS` linear sub-buckets.
const GROUP_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: u64 = 1 << GROUP_BITS;
/// Total bucket count: group 0 holds the exact values `0..SUB`, and each
/// of the `64 - GROUP_BITS` remaining octave groups holds `SUB` buckets.
/// `u64::MAX` lands in the last bucket.
const BUCKETS: usize = (64 - GROUP_BITS as usize + 1) * SUB as usize;

/// The bucket a value is counted in.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - GROUP_BITS + 1) as usize;
    let offset = ((v >> (msb - GROUP_BITS)) - SUB) as usize;
    group * SUB as usize + offset
}

/// The largest value that maps to bucket `i` (inclusive).
fn bucket_high(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let group = (i / SUB as usize) as u32;
    let offset = (i % SUB as usize) as u64;
    let shift = group - 1;
    ((SUB + offset) << shift) + ((1u64 << shift) - 1)
}

/// The smallest value that maps to bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let group = (i / SUB as usize) as u32;
    let offset = (i % SUB as usize) as u64;
    (SUB + offset) << (group - 1)
}

/// A log-bucketed histogram of request latencies.
///
/// Recording is O(1); memory is a fixed 496 counters (allocated on the
/// first record, so an idle core's stats stay tiny). Merging two
/// histograms is exact counter addition — associative and commutative —
/// and percentile queries run over the merged counts.
///
/// # Examples
///
/// ```
/// use predllc_core::histogram::LatencyHistogram;
/// use predllc_model::Cycles;
///
/// let mut h = LatencyHistogram::new();
/// for latency in [100, 150, 150, 900] {
///     h.record(Cycles::new(latency));
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Cycles::new(900));
/// // The 100th percentile is the exact maximum, not a bucket bound.
/// assert_eq!(h.percentile(100.0), Cycles::new(900));
/// // Lower percentiles resolve to within one sub-bucket (≤ 12.5%).
/// assert!(h.percentile(50.0).as_u64() >= 144 && h.percentile(50.0).as_u64() <= 159);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bucket counters; empty until the first record (an all-zero vector
    /// and an unallocated one compare equal via `count == 0`).
    buckets: Vec<u64>,
    /// Total records.
    count: u64,
    /// Sum of all recorded values (for the exact mean).
    total: u64,
    /// Exact smallest recorded value (`u64::MAX` when empty).
    min: u64,
    /// Exact largest recorded value.
    max: u64,
}

impl Default for LatencyHistogram {
    /// An empty histogram (the `min` sentinel makes this a manual impl).
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Vec::new(),
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency observation. O(1).
    pub fn record(&mut self, latency: Cycles) {
        let v = latency.as_u64();
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` observations of the same latency in one O(1) update —
    /// the bulk insert the simulation engine's fast-forward path uses for
    /// runs of identical response latencies (steady-state LLC-hit slots).
    ///
    /// Equivalent to calling [`LatencyHistogram::record`] `n` times
    /// (except that the saturating running total saturates as one product
    /// instead of `n` additions, indistinguishable until a run exceeds
    /// `u64::MAX` total cycles). `record_n(v, 0)` is a no-op.
    pub fn record_n(&mut self, latency: Cycles, n: u64) {
        if n == 0 {
            return;
        }
        let v = latency.as_u64();
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[bucket_index(v)] += n;
        self.count += n;
        self.total = self.total.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one. Plain counter addition:
    /// associative, commutative, and lossless.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact smallest recorded value (zero when empty).
    pub fn min(&self) -> Cycles {
        if self.count == 0 {
            Cycles::ZERO
        } else {
            Cycles::new(self.min)
        }
    }

    /// The exact largest recorded value (zero when empty).
    pub fn max(&self) -> Cycles {
        Cycles::new(self.max)
    }

    /// Sum of all recorded values (saturating).
    pub fn total(&self) -> Cycles {
        Cycles::new(self.total)
    }

    /// The exact mean, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (`0.0 ..= 100.0`, clamped).
    ///
    /// The rank-`⌈p/100·count⌉` observation's bucket upper bound, clamped
    /// into the exact `[min, max]` range — so `percentile(100.0)` is the
    /// exact maximum and low percentiles never undershoot the minimum.
    /// Returns zero for an empty histogram. Deterministic: the same
    /// counts always give the same answer.
    pub fn percentile(&self, p: f64) -> Cycles {
        if self.count == 0 {
            return Cycles::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Cycles::new(bucket_high(i).clamp(self.min, self.max));
            }
        }
        // Unreachable while counters are consistent; the exact max is
        // the safe answer.
        Cycles::new(self.max)
    }

    /// The non-empty buckets as `(low, high, count)` ranges, low to
    /// high — the full distribution for reports.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_low(i), bucket_high(i), n))
            .collect()
    }

    /// The non-empty buckets as `(bucket_low, count)` pairs, low to high
    /// — together with [`LatencyHistogram::total`],
    /// [`LatencyHistogram::min`] and [`LatencyHistogram::max`] this is a
    /// *complete* serialization: [`LatencyHistogram::from_parts`]
    /// rebuilds a bit-identical histogram from these four pieces, which
    /// is how fleet workers ship distributions to a coordinator without
    /// loss.
    pub fn bucket_entries(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_low(i), n))
            .collect()
    }

    /// Rebuilds a histogram from its serialized parts: the exact
    /// `total`/`min`/`max` plus the `(bucket_low, count)` pairs of
    /// [`LatencyHistogram::bucket_entries`]. The result is bit-identical
    /// (`==`) to the histogram the parts came from, so merges and
    /// percentiles computed on either side of a wire agree exactly.
    ///
    /// Returns `None` when the parts are not a consistent serialization:
    /// a `low` that is not a bucket boundary, non-ascending or
    /// zero-count entries, a count overflow, `min > max`, extremes
    /// outside the occupied buckets, or non-zero extremes/total with no
    /// entries.
    pub fn from_parts(
        total: Cycles,
        min: Cycles,
        max: Cycles,
        entries: &[(u64, u64)],
    ) -> Option<LatencyHistogram> {
        if entries.is_empty() {
            return (total.as_u64() == 0 && min.as_u64() == 0 && max.as_u64() == 0)
                .then(LatencyHistogram::new);
        }
        let mut buckets = vec![0u64; BUCKETS];
        let mut count = 0u64;
        let mut prev_low = None;
        for &(low, n) in entries {
            let i = bucket_index(low);
            if bucket_low(i) != low || n == 0 || prev_low.is_some_and(|p| p >= low) {
                return None;
            }
            prev_low = Some(low);
            buckets[i] = n;
            count = count.checked_add(n)?;
        }
        let (min, max) = (min.as_u64(), max.as_u64());
        // The exact extremes must live in the lowest/highest occupied
        // buckets, or the serialization is internally inconsistent.
        if min > max
            || bucket_index(min) != bucket_index(entries[0].0)
            || bucket_index(max) != bucket_index(entries[entries.len() - 1].0)
        {
            return None;
        }
        Some(LatencyHistogram {
            buckets,
            count,
            total: total.as_u64(),
            min,
            max,
        })
    }

    /// The p50/p90/p99/p100 summary of this distribution.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            p100: self.max(),
        }
    }
}

/// The headline percentiles of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Observations in the distribution.
    pub count: u64,
    /// Exact mean latency.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: Cycles,
    /// 90th percentile.
    pub p90: Cycles,
    /// 99th percentile.
    pub p99: Cycles,
    /// Exact maximum (100th percentile).
    pub p100: Cycles,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} p100={}",
            self.count,
            self.mean,
            self.p50.as_u64(),
            self.p90.as_u64(),
            self.p99.as_u64(),
            self.p100.as_u64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(Cycles::new(v));
        }
        h
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = None;
        for v in (0..2048).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "v={v} i={i}");
            if let Some(p) = prev {
                assert!(i >= p, "bucket index not monotone at {v}");
            }
            prev = Some(i);
        }
        // Small values get exact buckets.
        for v in 0..SUB {
            assert_eq!(bucket_low(bucket_index(v)), v);
            assert_eq!(bucket_high(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_ranges_tile_without_gaps() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_high(i) + 1,
                bucket_low(i + 1),
                "gap or overlap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counts_sum_to_total_records() {
        let h = filled(&[0, 1, 7, 8, 100, 100, 5000, u64::MAX]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count());
        assert_eq!(h.nonzero_buckets().iter().map(|b| b.2).sum::<u64>(), 8);
    }

    #[test]
    fn p100_is_the_exact_max() {
        let h = filled(&[90, 140, 143, 4391]);
        assert_eq!(h.percentile(100.0), Cycles::new(4391));
        assert_eq!(h.max(), Cycles::new(4391));
        assert_eq!(h.summary().p100, Cycles::new(4391));
    }

    #[test]
    fn percentiles_stay_within_one_sub_bucket() {
        // 1000 distinct values 1..=1000: pN must land within 12.5% above
        // the exact order statistic (bucket upper bound), and never
        // below it.
        let values: Vec<u64> = (1..=1000).collect();
        let h = filled(&values);
        for (p, exact) in [(50.0, 500u64), (90.0, 900), (99.0, 990)] {
            let got = h.percentile(p).as_u64();
            assert!(got >= exact, "p{p} undershoots: {got} < {exact}");
            assert!(
                (got as f64) <= exact as f64 * 1.125 + 1.0,
                "p{p} overshoots: {got} vs {exact}"
            );
        }
        assert_eq!(h.percentile(100.0).as_u64(), 1000);
        assert_eq!(h.percentile(0.0).as_u64(), 1);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut bulk = LatencyHistogram::new();
        bulk.record_n(Cycles::new(90), 3);
        bulk.record_n(Cycles::new(140), 1);
        bulk.record_n(Cycles::new(7), 0); // no-op
        let single = filled(&[90, 90, 90, 140]);
        assert_eq!(bulk, single);
        assert_eq!(bulk.count(), 4);
        assert_eq!(bulk.total(), Cycles::new(410));
        assert_eq!(bulk.min(), Cycles::new(90));
        assert_eq!(bulk.max(), Cycles::new(140));
        // A zero-count bulk insert on an empty histogram stays empty.
        let mut empty = LatencyHistogram::new();
        empty.record_n(Cycles::new(1), 0);
        assert_eq!(empty, LatencyHistogram::new());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), Cycles::ZERO);
        assert_eq!(h.max(), Cycles::ZERO);
        assert_eq!(h.min(), Cycles::ZERO);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
        // Default and new compare equal, as do two untouched histograms.
        assert_eq!(h, LatencyHistogram::default());
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = filled(&[1, 50, 900]);
        let b = filled(&[7, 7, 12_000]);
        let c = filled(&[0, u64::MAX]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");

        // The merge is lossless: same as recording everything into one.
        let all = filled(&[1, 50, 900, 7, 7, 12_000, 0, u64::MAX]);
        assert_eq!(ab_c, all);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let a = filled(&[10, 20]);
        let mut merged = a.clone();
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, a);
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn parts_round_trip_bit_identically() {
        for h in [
            LatencyHistogram::new(),
            filled(&[0]),
            filled(&[90, 140, 143, 4391, u64::MAX]),
            filled(&[7, 7, 7, 8, 9, 1_000_000]),
        ] {
            let rebuilt =
                LatencyHistogram::from_parts(h.total(), h.min(), h.max(), &h.bucket_entries())
                    .expect("own parts must reconstruct");
            assert_eq!(rebuilt, h);
            assert_eq!(rebuilt.percentile(99.0), h.percentile(99.0));
            assert_eq!(rebuilt.mean(), h.mean());
        }
    }

    #[test]
    fn inconsistent_parts_are_rejected() {
        let h = filled(&[100, 200]);
        let entries = h.bucket_entries();
        let c = |v: u64| Cycles::new(v);
        // A low that is not a bucket boundary.
        assert!(LatencyHistogram::from_parts(c(300), c(100), c(200), &[(101, 2)]).is_none());
        // Zero-count and non-ascending entries.
        assert!(LatencyHistogram::from_parts(c(300), c(100), c(200), &[(96, 0)]).is_none());
        let mut reversed = entries.clone();
        reversed.reverse();
        assert!(LatencyHistogram::from_parts(c(300), c(100), c(200), &reversed).is_none());
        // Extremes outside the occupied buckets, or inverted.
        assert!(LatencyHistogram::from_parts(c(300), c(1), c(200), &entries).is_none());
        assert!(LatencyHistogram::from_parts(c(300), c(100), c(9000), &entries).is_none());
        assert!(LatencyHistogram::from_parts(c(300), c(200), c(100), &entries).is_none());
        // Count overflow across entries.
        assert!(LatencyHistogram::from_parts(c(0), c(0), c(1), &[(0, u64::MAX), (1, 1)]).is_none());
        // Non-empty extremes with no entries.
        assert!(LatencyHistogram::from_parts(c(0), c(0), c(1), &[]).is_none());
        assert!(LatencyHistogram::from_parts(c(0), c(0), c(0), &[]).is_some());
    }

    #[test]
    fn summary_reports_and_displays() {
        let h = filled(&[100, 200, 300, 400]);
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert!((s.mean - 250.0).abs() < 1e-9);
        assert_eq!(s.p100, Cycles::new(400));
        let text = s.to_string();
        assert!(text.contains("n=4") && text.contains("p100=400"));
    }
}
