//! An inspectable event trace of the simulation.
//!
//! Event recording is off by default (zero cost beyond a branch); enable
//! it through [`crate::SystemConfigBuilder::record_events`]. The
//! integration tests replay the paper's worked examples (Figures 2–4)
//! against these events slot by slot.

use std::fmt;

use predllc_bus::WbKind;
use predllc_dram::RowOutcome;
use predllc_model::{BankId, CoreId, Cycles, LineAddr, PartitionId, SetIdx};

/// Why a pending request made no progress in its owner's slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockReason {
    /// The set is full and an eviction this request triggered is still in
    /// flight.
    WaitingForEviction,
    /// The set is full and every line is already mid-eviction, so nothing
    /// could be victimized.
    AllWaysEvicting,
    /// The set sequencer has another core at the head of this set's
    /// queue.
    NotHead,
    /// The slot was spent transmitting a write-back instead.
    SlotUsedForWriteback,
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockReason::WaitingForEviction => f.write_str("waiting for eviction"),
            BlockReason::AllWaysEvicting => f.write_str("all ways mid-eviction"),
            BlockReason::NotHead => f.write_str("not at sequencer head"),
            BlockReason::SlotUsedForWriteback => f.write_str("slot used for write-back"),
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A core's request was transmitted on the bus for the first time.
    RequestBroadcast {
        /// The requesting core.
        core: CoreId,
        /// The requested line.
        line: LineAddr,
    },
    /// The LLC answered a request from its contents.
    Hit {
        /// The requesting core.
        core: CoreId,
        /// The hit line.
        line: LineAddr,
    },
    /// The LLC allocated a way, fetched from DRAM and answered.
    Fill {
        /// The requesting core.
        core: CoreId,
        /// The filled line.
        line: LineAddr,
    },
    /// A pending request triggered an LLC eviction.
    EvictionTriggered {
        /// The core whose request forced the eviction.
        by: CoreId,
        /// The victim line.
        victim: LineAddr,
        /// How many private sharers must acknowledge before the entry
        /// frees (zero means it freed immediately).
        sharers: u32,
    },
    /// A core was told to evict a line from its private caches.
    BackInvalidation {
        /// The core receiving the invalidation.
        core: CoreId,
        /// The line to evict.
        line: LineAddr,
    },
    /// A write-back (or invalidation ack) was transmitted on the bus.
    WritebackTransmitted {
        /// The transmitting core.
        core: CoreId,
        /// The line written back.
        line: LineAddr,
        /// Why the write-back existed.
        kind: WbKind,
    },
    /// An LLC entry finished its eviction protocol and became free.
    LineFreed {
        /// The line whose entry freed.
        line: LineAddr,
        /// The partition it belonged to.
        partition: PartitionId,
    },
    /// A pending request made no progress in its core's slot.
    Blocked {
        /// The stalled core.
        core: CoreId,
        /// Why it stalled.
        reason: BlockReason,
    },
    /// A core was appended to a set's sequencer queue.
    SequencerEnqueued {
        /// The queued core.
        core: CoreId,
        /// The contended (partition-local) set.
        set: SetIdx,
        /// Queue position (0 = head).
        position: usize,
    },
    /// A banked memory backend serviced an access. (The fixed-latency
    /// backend emits no per-access events, keeping its logs identical to
    /// the seed's.)
    DramAccess {
        /// The core whose bus transaction carried the access.
        core: CoreId,
        /// The line fetched or written back.
        line: LineAddr,
        /// The bank the access was routed to.
        bank: BankId,
        /// Row-buffer interaction.
        outcome: RowOutcome,
        /// Total access latency, including any bank-busy wait.
        latency: Cycles,
        /// Whether this was a write-back (`true`) or a fill (`false`).
        write: bool,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Cycle at which the event occurred (always a slot boundary).
    pub at: Cycles,
    /// Global slot index.
    pub slot: u64,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only log of simulation events.
///
/// # Examples
///
/// ```
/// use predllc_core::{EventKind, EventLog};
/// use predllc_model::{CoreId, Cycles, LineAddr};
///
/// let mut log = EventLog::new(true);
/// log.push(Cycles::ZERO, 0, EventKind::Hit {
///     core: CoreId::new(0),
///     line: LineAddr::new(4),
/// });
/// assert_eq!(log.events().len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    enabled: bool,
    events: Vec<Event>,
}

impl EventLog {
    /// Creates a log; when `enabled` is false, pushes are no-ops.
    pub fn new(enabled: bool) -> Self {
        EventLog {
            enabled,
            events: Vec::new(),
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn push(&mut self, at: Cycles, slot: u64, kind: EventKind) {
        if self.enabled {
            self.events.push(Event { at, slot, kind });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events involving a given slot.
    pub fn in_slot(&self, slot: u64) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.slot == slot)
    }

    /// Events matching a predicate on their kind.
    pub fn filter<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a Event>
    where
        F: FnMut(&EventKind) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(&e.kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(core: u16, line: u64) -> EventKind {
        EventKind::Hit {
            core: CoreId::new(core),
            line: LineAddr::new(line),
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new(false);
        log.push(Cycles::ZERO, 0, hit(0, 0));
        assert!(log.events().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = EventLog::new(true);
        log.push(Cycles::new(0), 0, hit(0, 1));
        log.push(Cycles::new(50), 1, hit(1, 2));
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].slot, 0);
        assert_eq!(log.events()[1].at, Cycles::new(50));
    }

    #[test]
    fn slot_and_kind_filters() {
        let mut log = EventLog::new(true);
        log.push(Cycles::new(0), 0, hit(0, 1));
        log.push(Cycles::new(50), 1, hit(1, 2));
        log.push(
            Cycles::new(50),
            1,
            EventKind::Blocked {
                core: CoreId::new(0),
                reason: BlockReason::NotHead,
            },
        );
        assert_eq!(log.in_slot(1).count(), 2);
        assert_eq!(
            log.filter(|k| matches!(k, EventKind::Blocked { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn block_reason_display() {
        assert_eq!(BlockReason::NotHead.to_string(), "not at sequencer head");
        assert_eq!(
            BlockReason::SlotUsedForWriteback.to_string(),
            "slot used for write-back"
        );
    }
}
