//! Sampled wall-clock profiling of the engine's per-slot stages.
//!
//! An [`EngineProfile`] hands the engine four log-bucketed
//! [`TimingHistogram`]s — one per stage of a processed slot — plus a
//! sampling cadence. Profiling is **opt-in per run**
//! ([`Simulator::run_profiled`](crate::Simulator::run_profiled)); the
//! default [`Simulator::run`](crate::Simulator::run) passes `None`, so
//! the unprofiled hot path costs exactly one branch per slot and zero
//! atomic operations.
//!
//! The profile only ever *reads* wall-clock time — nothing it measures
//! feeds back into simulated time, so a profiled run's [`RunReport`]
//! is bit-identical to an unprofiled one by construction.
//!
//! [`RunReport`]: crate::RunReport

use std::sync::atomic::{AtomicU64, Ordering};

use predllc_obs::{Registry, TimingHistogram};

/// The metric family engine-stage timings register under.
pub const STAGE_METRIC: &str = "predllc_engine_stage_ns";

/// Sampled per-stage wall-clock timings of the simulation engine.
///
/// Stages of one processed slot:
///
/// * `arbiter` — grant selection: write-back/request hazard checks and
///   the [`SlotArbiter`](predllc_bus) decision.
/// * `llc` — a granted transaction that stayed inside the LLC (hits,
///   sequencer traffic, blocked probes).
/// * `dram` — a granted transaction whose LLC service or write-back
///   touched the memory backend.
/// * `idle_jump` — the fast-forward loop's event selection when it
///   decides to leap over idle slots (calendar validation + the
///   four-way precedence pick).
///
/// Only every `sample_every`-th profiling opportunity is timed, so the
/// observer cost stays bounded on multi-million-slot runs.
#[derive(Debug)]
pub struct EngineProfile {
    sample_every: u64,
    tick: AtomicU64,
    /// Grant-selection timings.
    pub arbiter: TimingHistogram,
    /// LLC-only transaction timings.
    pub llc: TimingHistogram,
    /// Memory-touching transaction timings.
    pub dram: TimingHistogram,
    /// Fast-forward idle-jump event-selection timings.
    pub idle_jump: TimingHistogram,
}

impl EngineProfile {
    /// A standalone profile sampling every `sample_every`-th slot
    /// (`0` is treated as `1`: sample everything).
    pub fn new(sample_every: u64) -> EngineProfile {
        EngineProfile {
            sample_every: sample_every.max(1),
            tick: AtomicU64::new(0),
            arbiter: TimingHistogram::default(),
            llc: TimingHistogram::default(),
            dram: TimingHistogram::default(),
            idle_jump: TimingHistogram::default(),
        }
    }

    /// A profile whose four stage histograms are registered in
    /// `registry` as `predllc_engine_stage_ns{stage="..."}`, so a
    /// `/metrics` scrape sees them.
    pub fn registered(registry: &Registry, sample_every: u64) -> EngineProfile {
        const HELP: &str = "Sampled wall-clock time per engine stage";
        EngineProfile {
            sample_every: sample_every.max(1),
            tick: AtomicU64::new(0),
            arbiter: registry.histogram_with(STAGE_METRIC, HELP, "stage", "arbiter"),
            llc: registry.histogram_with(STAGE_METRIC, HELP, "stage", "llc"),
            dram: registry.histogram_with(STAGE_METRIC, HELP, "stage", "dram"),
            idle_jump: registry.histogram_with(STAGE_METRIC, HELP, "stage", "idle_jump"),
        }
    }

    /// The configured sampling cadence.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Whether this profiling opportunity should be timed. Consumes one
    /// tick of the sampling counter.
    pub fn should_sample(&self) -> bool {
        self.tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every)
    }

    /// Total samples recorded across all four stages.
    pub fn samples(&self) -> u64 {
        self.arbiter.count() + self.llc.count() + self.dram.count() + self.idle_jump.count()
    }
}

impl Default for EngineProfile {
    /// Samples every 64th opportunity — cheap enough for production
    /// runs while still resolving stage distributions.
    fn default() -> EngineProfile {
        EngineProfile::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_cadence_is_respected() {
        let p = EngineProfile::new(4);
        let hits = (0..16).filter(|_| p.should_sample()).count();
        assert_eq!(hits, 4);
        // Zero clamps to "sample everything".
        let all = EngineProfile::new(0);
        assert!((0..5).all(|_| all.should_sample()));
    }

    #[test]
    fn registered_profile_appears_in_exposition() {
        let reg = Registry::new();
        let p = EngineProfile::registered(&reg, 1);
        p.arbiter.record(std::time::Duration::from_nanos(120));
        p.dram.record(std::time::Duration::from_nanos(900));
        let text = reg.render();
        assert!(text.contains("predllc_engine_stage_ns_count{stage=\"arbiter\"} 1"));
        assert!(text.contains("predllc_engine_stage_ns_count{stage=\"dram\"} 1"));
        assert!(text.contains("predllc_engine_stage_ns_count{stage=\"llc\"} 0"));
        assert_eq!(p.samples(), 2);
    }
}
