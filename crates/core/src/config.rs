//! Simulator configuration: the whole platform in one validated value.

use predllc_bus::{ArbiterPolicy, TdmSchedule};
use predllc_cache::ReplacementKind;
use predllc_dram::MemoryConfig;
use predllc_model::{CacheGeometry, CoreId, Cycles, SlotWidth};

use std::fmt;

use crate::error::ConfigError;
use crate::partition::{PartitionMap, PartitionSpec, SharingMode};

/// Which simulation loop [`crate::Simulator::run`] executes.
///
/// Both engines produce bit-identical [`crate::RunReport`]s — same
/// [`crate::SimStats`], same latency histograms, same event logs — the
/// fast-forward engine just gets there without walking every bus slot:
/// it batch-advances private-hit runs, jumps time across slots in which
/// no core can transmit, and services steady LLC-hit runs through a
/// specialized path with bulk histogram updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EngineMode {
    /// Fast-forward when possible, reference otherwise: event recording
    /// attaches a per-slot event sink, so
    /// [`SystemConfigBuilder::record_events`] automatically selects the
    /// reference path. This is the default.
    #[default]
    Auto,
    /// Always the slot-by-slot reference loop (the oracle the
    /// fast-forward engine is differentially tested against).
    Reference,
    /// Always the fast-forward loop. With `record_events(true)` this
    /// still falls back to the reference path — the event log's per-slot
    /// granularity is exactly what fast-forward skips.
    FastForward,
}

impl fmt::Display for EngineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineMode::Auto => f.write_str("auto"),
            EngineMode::Reference => f.write_str("reference"),
            EngineMode::FastForward => f.write_str("fast-forward"),
        }
    }
}

/// A validated simulator configuration.
///
/// Use the convenience constructors for the paper's three configuration
/// families, or [`SystemConfig::builder`] for full control.
///
/// # Examples
///
/// ```
/// use predllc_core::{SharingMode, SystemConfig};
///
/// # fn main() -> Result<(), predllc_core::ConfigError> {
/// // NSS(1,2,4): four cores share a 1-set x 2-way partition, best effort.
/// let nss = SystemConfig::shared_partition(1, 2, 4, SharingMode::BestEffort)?;
/// assert_eq!(nss.num_cores(), 4);
///
/// // P(8,2) x 4: every core gets a private 8-set x 2-way partition.
/// let p = SystemConfig::private_partitions(8, 2, 4)?;
/// assert!(p.partitions().partitions().iter().all(|s| s.is_private()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfig {
    num_cores: u16,
    schedule: TdmSchedule,
    slot_width: SlotWidth,
    l1i: CacheGeometry,
    l1d: CacheGeometry,
    l2: CacheGeometry,
    l1_latency: Cycles,
    l2_latency: Cycles,
    partitions: PartitionMap,
    llc_replacement: ReplacementKind,
    private_replacement: ReplacementKind,
    arbiter: ArbiterPolicy,
    memory: MemoryConfig,
    max_cycles: Option<u64>,
    record_events: bool,
    precise_sharers: bool,
    engine: EngineMode,
    attribution: bool,
}

impl SystemConfig {
    /// Starts building a configuration with the paper's platform
    /// defaults: 50-cycle slots, 1S-TDM, L2 = 16×4, LLC replacement LRU,
    /// write-back-first arbitration, fixed 30-cycle DRAM.
    pub fn builder(num_cores: u16) -> SystemConfigBuilder {
        SystemConfigBuilder::new(num_cores)
    }

    /// `SS(sets, ways, n)` / `NSS(sets, ways, n)`: all `n` cores share one
    /// partition under the given mode, with paper defaults elsewhere.
    ///
    /// # Errors
    ///
    /// Propagates validation failures (degenerate geometry, oversized
    /// partition, …).
    pub fn shared_partition(
        sets: u32,
        ways: u32,
        n: u16,
        mode: SharingMode,
    ) -> Result<SystemConfig, ConfigError> {
        SystemConfigBuilder::new(n)
            .partitions(vec![PartitionSpec::shared(
                sets,
                ways,
                CoreId::first(n).collect(),
                mode,
            )])
            .build()
    }

    /// `P(sets, ways)` for each of `n` cores: fully private partitioning.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn private_partitions(sets: u32, ways: u32, n: u16) -> Result<SystemConfig, ConfigError> {
        SystemConfigBuilder::new(n)
            .partitions(
                CoreId::first(n)
                    .map(|c| PartitionSpec::private(sets, ways, c))
                    .collect(),
            )
            .build()
    }

    /// Number of cores.
    pub fn num_cores(&self) -> u16 {
        self.num_cores
    }

    /// The TDM bus schedule.
    pub fn schedule(&self) -> &TdmSchedule {
        &self.schedule
    }

    /// The bus slot width.
    pub fn slot_width(&self) -> SlotWidth {
        self.slot_width
    }

    /// L1 instruction cache geometry.
    pub fn l1i(&self) -> CacheGeometry {
        self.l1i
    }

    /// L1 data cache geometry.
    pub fn l1d(&self) -> CacheGeometry {
        self.l1d
    }

    /// Private L2 geometry.
    pub fn l2(&self) -> CacheGeometry {
        self.l2
    }

    /// L1 hit latency.
    pub fn l1_latency(&self) -> Cycles {
        self.l1_latency
    }

    /// L2 hit latency (also the miss-detection delay before a request
    /// enters the PRB).
    pub fn l2_latency(&self) -> Cycles {
        self.l2_latency
    }

    /// The LLC partitioning.
    pub fn partitions(&self) -> &PartitionMap {
        &self.partitions
    }

    /// LLC replacement policy.
    pub fn llc_replacement(&self) -> ReplacementKind {
        self.llc_replacement
    }

    /// Private-cache replacement policy.
    pub fn private_replacement(&self) -> ReplacementKind {
        self.private_replacement
    }

    /// PRB/PWB arbitration policy.
    pub fn arbiter(&self) -> ArbiterPolicy {
        self.arbiter
    }

    /// The memory-backend selection behind the LLC. A fresh backend is
    /// built from this value for every [`crate::Simulator::run`].
    pub fn memory(&self) -> &MemoryConfig {
        &self.memory
    }

    /// The backend's worst-case access latency (guaranteed to fit in a
    /// slot by validation). For the default fixed-latency backend this
    /// is the configured DRAM latency, preserving the seed-era meaning
    /// of this accessor.
    pub fn dram_latency(&self) -> Cycles {
        self.memory.worst_case_latency()
    }

    /// Optional simulation cycle cap (for potentially unbounded runs,
    /// such as the Fig. 2 scenario).
    pub fn max_cycles(&self) -> Option<u64> {
        self.max_cycles
    }

    /// Whether the event log records.
    pub fn record_events(&self) -> bool {
        self.record_events
    }

    /// The selected engine mode (see [`EngineMode`]).
    pub fn engine_mode(&self) -> EngineMode {
        self.engine
    }

    /// The engine [`crate::Simulator::run`] will actually execute:
    /// resolves [`EngineMode::Auto`] and the event-recording fallback.
    pub fn effective_engine(&self) -> EngineMode {
        if self.record_events {
            EngineMode::Reference
        } else {
            match self.engine {
                EngineMode::Reference => EngineMode::Reference,
                EngineMode::Auto | EngineMode::FastForward => EngineMode::FastForward,
            }
        }
    }

    /// Whether the LLC tracks private sharers precisely (clean L2 drops
    /// notify the LLC, so evictions of no-longer-cached lines complete
    /// in-slot). On by default, matching the paper's simulator; turning
    /// it off keeps sharer bits conservatively stale, which only adds
    /// acknowledgement slots and is useful as an ablation.
    pub fn precise_sharers(&self) -> bool {
        self.precise_sharers
    }

    /// Whether latency attribution is enabled (see
    /// [`crate::attribution`]). Off by default. Attribution only *reads*
    /// the simulation — every counter, histogram and event in the
    /// [`crate::RunReport`] is bit-identical with it on or off.
    pub fn attribution(&self) -> bool {
        self.attribution
    }

    /// A copy of this configuration with attribution toggled — for
    /// layers (the experiment-spec grid) that decide the flag after the
    /// platform was built and validated. No re-validation is needed:
    /// attribution does not participate in any build-time check.
    pub fn with_attribution(mut self, on: bool) -> SystemConfig {
        self.attribution = on;
        self
    }

    /// The configuration a [`crate::attribution::WclWitness`] is
    /// replayed under: the same platform, truncated at `cap` cycles and
    /// forced onto the reference engine with attribution off — the
    /// independent oracle re-deriving the witness's latency.
    pub fn witness_replay_config(&self, cap: Cycles) -> SystemConfig {
        let mut cfg = self.clone();
        cfg.max_cycles = Some(cap.as_u64());
        cfg.engine = EngineMode::Reference;
        cfg.attribution = false;
        cfg.record_events = false;
        cfg
    }
}

/// Builder for [`SystemConfig`]; see [`SystemConfig::builder`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    num_cores: u16,
    schedule: Option<TdmSchedule>,
    slot_width: SlotWidth,
    l1i: CacheGeometry,
    l1d: CacheGeometry,
    l2: CacheGeometry,
    l1_latency: Cycles,
    l2_latency: Cycles,
    partitions: Option<Vec<PartitionSpec>>,
    physical_llc: CacheGeometry,
    llc_replacement: ReplacementKind,
    private_replacement: ReplacementKind,
    arbiter: ArbiterPolicy,
    memory: MemoryConfig,
    max_cycles: Option<u64>,
    record_events: bool,
    precise_sharers: bool,
    engine: EngineMode,
    attribution: bool,
}

impl SystemConfigBuilder {
    /// Creates a builder with paper defaults for `num_cores` cores.
    pub fn new(num_cores: u16) -> Self {
        SystemConfigBuilder {
            num_cores,
            schedule: None,
            slot_width: SlotWidth::PAPER,
            l1i: CacheGeometry::DEFAULT_L1,
            l1d: CacheGeometry::DEFAULT_L1,
            l2: CacheGeometry::PAPER_L2,
            l1_latency: Cycles::new(1),
            l2_latency: Cycles::new(10),
            partitions: None,
            physical_llc: CacheGeometry::PAPER_L3,
            llc_replacement: ReplacementKind::Lru,
            private_replacement: ReplacementKind::Lru,
            arbiter: ArbiterPolicy::WritebackFirst,
            memory: MemoryConfig::default(),
            max_cycles: None,
            record_events: false,
            precise_sharers: true,
            engine: EngineMode::Auto,
            attribution: false,
        }
    }

    /// Overrides the TDM schedule (default: 1S-TDM over all cores).
    pub fn schedule(mut self, schedule: TdmSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Overrides the slot width.
    pub fn slot_width(mut self, sw: SlotWidth) -> Self {
        self.slot_width = sw;
        self
    }

    /// Overrides the L1 instruction geometry.
    pub fn l1i(mut self, g: CacheGeometry) -> Self {
        self.l1i = g;
        self
    }

    /// Overrides the L1 data geometry.
    pub fn l1d(mut self, g: CacheGeometry) -> Self {
        self.l1d = g;
        self
    }

    /// Overrides the private L2 geometry.
    pub fn l2(mut self, g: CacheGeometry) -> Self {
        self.l2 = g;
        self
    }

    /// Overrides the L1 hit latency.
    pub fn l1_latency(mut self, c: Cycles) -> Self {
        self.l1_latency = c;
        self
    }

    /// Overrides the L2 hit latency.
    pub fn l2_latency(mut self, c: Cycles) -> Self {
        self.l2_latency = c;
        self
    }

    /// Sets the partition list (required).
    pub fn partitions(mut self, partitions: Vec<PartitionSpec>) -> Self {
        self.partitions = Some(partitions);
        self
    }

    /// Overrides the physical LLC the partitions must fit in.
    pub fn physical_llc(mut self, g: CacheGeometry) -> Self {
        self.physical_llc = g;
        self
    }

    /// Overrides the LLC replacement policy.
    pub fn llc_replacement(mut self, k: ReplacementKind) -> Self {
        self.llc_replacement = k;
        self
    }

    /// Overrides the private-cache replacement policy.
    pub fn private_replacement(mut self, k: ReplacementKind) -> Self {
        self.private_replacement = k;
        self
    }

    /// Overrides the PRB/PWB arbitration policy.
    pub fn arbiter(mut self, a: ArbiterPolicy) -> Self {
        self.arbiter = a;
        self
    }

    /// Selects the fixed-latency memory backend with the given access
    /// latency (must fit inside a slot). Shorthand for
    /// `memory(MemoryConfig::fixed(c))`.
    pub fn dram_latency(self, c: Cycles) -> Self {
        self.memory(MemoryConfig::fixed(c))
    }

    /// Selects the memory backend (default: the seed's fixed 30-cycle
    /// DRAM). The backend's analytical worst-case access latency must
    /// fit inside a slot — `build` rejects the configuration otherwise.
    pub fn memory(mut self, m: MemoryConfig) -> Self {
        self.memory = m;
        self
    }

    /// Caps the simulation length (needed for unbounded scenarios).
    pub fn max_cycles(mut self, cap: u64) -> Self {
        self.max_cycles = Some(cap);
        self
    }

    /// Enables the event log.
    pub fn record_events(mut self, on: bool) -> Self {
        self.record_events = on;
        self
    }

    /// Enables or disables precise LLC sharer tracking (default: on).
    pub fn precise_sharers(mut self, on: bool) -> Self {
        self.precise_sharers = on;
        self
    }

    /// Selects the simulation engine (default: [`EngineMode::Auto`] —
    /// fast-forward unless event recording forces the reference path).
    pub fn engine(mut self, mode: EngineMode) -> Self {
        self.engine = mode;
        self
    }

    /// Enables latency attribution (default: off): every request's
    /// latency is decomposed into causal components and the worst-case
    /// request is captured as a replayable witness (see
    /// [`crate::attribution`]). Purely observational — the simulation
    /// itself is bit-identical either way.
    pub fn attribution(mut self, on: bool) -> Self {
        self.attribution = on;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] from partition-map validation, schedule/core
    /// mismatch, an invalid memory backend, or a backend whose
    /// worst-case access latency does not fit in the slot
    /// ([`ConfigError::DramExceedsSlot`] for the fixed-latency backend,
    /// [`ConfigError::BackendExceedsSlot`] for every other).
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::NoCores);
        }
        let schedule = match self.schedule {
            Some(s) => s,
            None => TdmSchedule::one_slot(self.num_cores),
        };
        if schedule.num_cores() != self.num_cores {
            return Err(ConfigError::ScheduleCoreMismatch {
                schedule_cores: schedule.num_cores(),
                system_cores: self.num_cores,
            });
        }
        let partitions = self.partitions.unwrap_or_default();
        let partitions = PartitionMap::new(partitions, self.num_cores, self.physical_llc)?;
        self.memory.validate(self.num_cores)?;
        let worst_case = self.memory.worst_case_latency();
        if worst_case >= self.slot_width.cycles() {
            // The slot-budget invariant (§3): every memory access — at
            // its analytical worst — completes within the requester's
            // slot. The fixed backend keeps its seed-era error shape.
            return Err(match self.memory {
                MemoryConfig::FixedLatency { .. } => ConfigError::DramExceedsSlot {
                    dram_latency: worst_case.as_u64(),
                    slot_width: self.slot_width.as_u64(),
                },
                _ => ConfigError::BackendExceedsSlot {
                    backend: self.memory.label(),
                    worst_case: worst_case.as_u64(),
                    slot_width: self.slot_width.as_u64(),
                },
            });
        }
        Ok(SystemConfig {
            num_cores: self.num_cores,
            schedule,
            slot_width: self.slot_width,
            l1i: self.l1i,
            l1d: self.l1d,
            l2: self.l2,
            l1_latency: self.l1_latency,
            l2_latency: self.l2_latency,
            partitions,
            llc_replacement: self.llc_replacement,
            private_replacement: self.private_replacement,
            arbiter: self.arbiter,
            memory: self.memory,
            max_cycles: self.max_cycles,
            record_events: self.record_events,
            precise_sharers: self.precise_sharers,
            engine: self.engine,
            attribution: self.attribution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_partition_defaults() {
        let cfg = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer).unwrap();
        assert_eq!(cfg.num_cores(), 4);
        assert!(cfg.schedule().is_one_slot());
        assert_eq!(cfg.slot_width(), SlotWidth::PAPER);
        assert_eq!(cfg.partitions().len(), 1);
        assert_eq!(cfg.partitions().spec_of(CoreId::new(2)).sharers(), 4);
        assert_eq!(cfg.l2().lines(), 64);
    }

    #[test]
    fn private_partitions_give_one_each() {
        let cfg = SystemConfig::private_partitions(8, 2, 4).unwrap();
        assert_eq!(cfg.partitions().len(), 4);
        for i in 0..4 {
            let spec = cfg.partitions().spec_of(CoreId::new(i));
            assert!(spec.is_private());
            assert_eq!(spec.cores, vec![CoreId::new(i)]);
        }
    }

    #[test]
    fn rejects_schedule_mismatch() {
        let err = SystemConfigBuilder::new(4)
            .schedule(TdmSchedule::one_slot(3))
            .partitions(vec![PartitionSpec::shared(
                1,
                2,
                CoreId::first(4).collect(),
                SharingMode::BestEffort,
            )])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ScheduleCoreMismatch {
                schedule_cores: 3,
                system_cores: 4
            }
        );
    }

    #[test]
    fn rejects_oversized_dram() {
        let err = SystemConfigBuilder::new(1)
            .partitions(vec![PartitionSpec::private(1, 1, CoreId::new(0))])
            .dram_latency(Cycles::new(50))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::DramExceedsSlot { .. }));
    }

    #[test]
    fn rejects_banked_backend_exceeding_the_slot() {
        // Paper timing has a 30-cycle worst case: a 30-cycle slot is too
        // narrow, and the error names the backend.
        let err = SystemConfigBuilder::new(1)
            .partitions(vec![PartitionSpec::private(1, 1, CoreId::new(0))])
            .slot_width(SlotWidth::new(30).unwrap())
            .memory(MemoryConfig::banked())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BackendExceedsSlot {
                backend: "banked(1x8,interleaved)".into(),
                worst_case: 30,
                slot_width: 30,
            }
        );
    }

    #[test]
    fn rejects_invalid_bank_private_slicing() {
        let err = SystemConfigBuilder::new(3)
            .partitions(
                CoreId::first(3)
                    .map(|c| PartitionSpec::private(1, 1, c))
                    .collect(),
            )
            .memory(MemoryConfig::bank_private())
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::Memory(_)));
    }

    #[test]
    fn memory_selection_sticks_and_reports_worst_case() {
        let cfg = SystemConfigBuilder::new(4)
            .partitions(
                CoreId::first(4)
                    .map(|c| PartitionSpec::private(1, 2, c))
                    .collect(),
            )
            .memory(MemoryConfig::bank_private())
            .build()
            .unwrap();
        assert_eq!(cfg.memory(), &MemoryConfig::bank_private());
        // Paper-calibrated banked timing matches the seed's fixed charge.
        assert_eq!(cfg.dram_latency(), Cycles::new(30));
    }

    #[test]
    fn rejects_missing_partitions() {
        let err = SystemConfigBuilder::new(2).build().unwrap_err();
        assert!(matches!(err, ConfigError::CoreWithoutPartition { .. }));
    }

    #[test]
    fn rejects_zero_cores() {
        assert_eq!(
            SystemConfigBuilder::new(0).build().unwrap_err(),
            ConfigError::NoCores
        );
    }

    #[test]
    fn builder_overrides_stick() {
        let cfg = SystemConfigBuilder::new(2)
            .partitions(vec![PartitionSpec::shared(
                2,
                2,
                CoreId::first(2).collect(),
                SharingMode::BestEffort,
            )])
            .slot_width(SlotWidth::new(100).unwrap())
            .l1_latency(Cycles::new(2))
            .l2_latency(Cycles::new(12))
            .dram_latency(Cycles::new(70))
            .llc_replacement(ReplacementKind::RoundRobin)
            .arbiter(ArbiterPolicy::RoundRobin)
            .max_cycles(1_000_000)
            .record_events(true)
            .build()
            .unwrap();
        assert_eq!(cfg.slot_width().as_u64(), 100);
        assert_eq!(cfg.l1_latency(), Cycles::new(2));
        assert_eq!(cfg.l2_latency(), Cycles::new(12));
        assert_eq!(cfg.dram_latency(), Cycles::new(70));
        assert_eq!(cfg.llc_replacement(), ReplacementKind::RoundRobin);
        assert_eq!(cfg.arbiter(), ArbiterPolicy::RoundRobin);
        assert_eq!(cfg.max_cycles(), Some(1_000_000));
        assert!(cfg.record_events());
    }
}
