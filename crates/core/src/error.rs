//! Configuration and runtime error types for the simulator.

use std::error::Error;
use std::fmt;

use predllc_model::CoreId;

/// Errors raised while validating a simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The system has zero cores.
    NoCores,
    /// A core is mapped to no partition.
    CoreWithoutPartition {
        /// The unmapped core.
        core: CoreId,
    },
    /// A core is mapped to more than one partition.
    CoreInMultiplePartitions {
        /// The multiply-mapped core.
        core: CoreId,
    },
    /// A partition lists a core outside the system.
    PartitionCoreOutOfRange {
        /// The out-of-range core.
        core: CoreId,
        /// The number of cores in the system.
        num_cores: u16,
    },
    /// A partition has no cores mapped to it.
    EmptyPartition {
        /// Index of the empty partition in the map.
        index: usize,
    },
    /// A partition has a zero dimension.
    ZeroPartition {
        /// Index of the degenerate partition in the map.
        index: usize,
    },
    /// The partitions exceed the physical LLC capacity.
    PartitionsExceedLlc {
        /// Total lines requested across all partitions.
        requested_lines: u64,
        /// Lines available in the physical LLC.
        available_lines: u64,
    },
    /// A partition is wider or taller than the physical LLC.
    PartitionExceedsGeometry {
        /// Index of the oversized partition in the map.
        index: usize,
    },
    /// The TDM schedule covers a different number of cores than the
    /// system.
    ScheduleCoreMismatch {
        /// Cores covered by the schedule.
        schedule_cores: u16,
        /// Cores in the system.
        system_cores: u16,
    },
    /// The DRAM latency does not fit into a bus slot, violating the
    /// system-model requirement that a miss fill completes within the
    /// requester's slot.
    DramExceedsSlot {
        /// Configured DRAM latency in cycles.
        dram_latency: u64,
        /// Configured slot width in cycles.
        slot_width: u64,
    },
    /// The number of traces handed to [`crate::Simulator::run`] does not
    /// match the number of cores.
    TraceCountMismatch {
        /// Traces provided.
        traces: usize,
        /// Cores configured.
        cores: u16,
    },
    /// An invalid model-level value (slot width, geometry) was supplied.
    Model(predllc_model::ModelError),
    /// An invalid bus schedule was supplied.
    Schedule(predllc_bus::ScheduleError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoCores => write!(f, "system must have at least one core"),
            ConfigError::CoreWithoutPartition { core } => {
                write!(f, "core {core} is not mapped to any partition")
            }
            ConfigError::CoreInMultiplePartitions { core } => {
                write!(f, "core {core} is mapped to more than one partition")
            }
            ConfigError::PartitionCoreOutOfRange { core, num_cores } => {
                write!(
                    f,
                    "partition references {core} but the system has only {num_cores} cores"
                )
            }
            ConfigError::EmptyPartition { index } => {
                write!(f, "partition {index} has no cores mapped to it")
            }
            ConfigError::ZeroPartition { index } => {
                write!(f, "partition {index} has a zero dimension")
            }
            ConfigError::PartitionsExceedLlc {
                requested_lines,
                available_lines,
            } => write!(
                f,
                "partitions request {requested_lines} lines but the LLC has {available_lines}"
            ),
            ConfigError::PartitionExceedsGeometry { index } => {
                write!(f, "partition {index} is larger than the physical LLC in some dimension")
            }
            ConfigError::ScheduleCoreMismatch {
                schedule_cores,
                system_cores,
            } => write!(
                f,
                "schedule covers {schedule_cores} cores but the system has {system_cores}"
            ),
            ConfigError::DramExceedsSlot {
                dram_latency,
                slot_width,
            } => write!(
                f,
                "dram latency {dram_latency} does not fit in the {slot_width}-cycle slot"
            ),
            ConfigError::TraceCountMismatch { traces, cores } => {
                write!(f, "{traces} traces provided for {cores} cores")
            }
            ConfigError::Model(e) => write!(f, "invalid model parameter: {e}"),
            ConfigError::Schedule(e) => write!(f, "invalid schedule: {e}"),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Model(e) => Some(e),
            ConfigError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<predllc_model::ModelError> for ConfigError {
    fn from(e: predllc_model::ModelError) -> Self {
        ConfigError::Model(e)
    }
}

impl From<predllc_bus::ScheduleError> for ConfigError {
    fn from(e: predllc_bus::ScheduleError) -> Self {
        ConfigError::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<ConfigError>();
    }

    #[test]
    fn displays_are_nonempty_and_unpunctuated() {
        let samples: Vec<ConfigError> = vec![
            ConfigError::NoCores,
            ConfigError::CoreWithoutPartition {
                core: CoreId::new(1),
            },
            ConfigError::PartitionsExceedLlc {
                requested_lines: 600,
                available_lines: 512,
            },
            ConfigError::DramExceedsSlot {
                dram_latency: 80,
                slot_width: 50,
            },
            ConfigError::Model(predllc_model::ModelError::ZeroSlotWidth),
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        let e = ConfigError::Model(predllc_model::ModelError::ZeroGeometry);
        assert!(e.source().is_some());
        assert!(ConfigError::NoCores.source().is_none());
    }
}
