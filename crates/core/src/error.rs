//! Configuration and runtime error types for the simulator.

use std::error::Error;
use std::fmt;

use predllc_model::{CoreId, Cycles};

/// Errors raised while validating a simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The system has zero cores.
    NoCores,
    /// A core is mapped to no partition.
    CoreWithoutPartition {
        /// The unmapped core.
        core: CoreId,
    },
    /// A core is mapped to more than one partition.
    CoreInMultiplePartitions {
        /// The multiply-mapped core.
        core: CoreId,
    },
    /// A partition lists a core outside the system.
    PartitionCoreOutOfRange {
        /// The out-of-range core.
        core: CoreId,
        /// The number of cores in the system.
        num_cores: u16,
    },
    /// A partition has no cores mapped to it.
    EmptyPartition {
        /// Index of the empty partition in the map.
        index: usize,
    },
    /// A partition has a zero dimension.
    ZeroPartition {
        /// Index of the degenerate partition in the map.
        index: usize,
    },
    /// The partitions exceed the physical LLC capacity.
    PartitionsExceedLlc {
        /// Total lines requested across all partitions.
        requested_lines: u64,
        /// Lines available in the physical LLC.
        available_lines: u64,
    },
    /// A partition is wider or taller than the physical LLC.
    PartitionExceedsGeometry {
        /// Index of the oversized partition in the map.
        index: usize,
    },
    /// The TDM schedule covers a different number of cores than the
    /// system.
    ScheduleCoreMismatch {
        /// Cores covered by the schedule.
        schedule_cores: u16,
        /// Cores in the system.
        system_cores: u16,
    },
    /// The DRAM latency does not fit into a bus slot, violating the
    /// system-model requirement that a miss fill completes within the
    /// requester's slot.
    DramExceedsSlot {
        /// Configured DRAM latency in cycles.
        dram_latency: u64,
        /// Configured slot width in cycles.
        slot_width: u64,
    },
    /// A (non-fixed-latency) memory backend's analytical worst-case
    /// access latency does not fit into a bus slot — the slot-budget
    /// invariant every backend must satisfy (the banked analogue of
    /// [`ConfigError::DramExceedsSlot`]).
    BackendExceedsSlot {
        /// Report label of the offending backend.
        backend: String,
        /// The backend's analytical worst-case latency in cycles.
        worst_case: u64,
        /// Configured slot width in cycles.
        slot_width: u64,
    },
    /// An invalid memory-backend configuration was supplied.
    Memory(predllc_dram::DramError),
    /// An invalid model-level value (slot width, geometry) was supplied.
    Model(predllc_model::ModelError),
    /// An invalid bus schedule was supplied.
    Schedule(predllc_bus::ScheduleError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoCores => write!(f, "system must have at least one core"),
            ConfigError::CoreWithoutPartition { core } => {
                write!(f, "core {core} is not mapped to any partition")
            }
            ConfigError::CoreInMultiplePartitions { core } => {
                write!(f, "core {core} is mapped to more than one partition")
            }
            ConfigError::PartitionCoreOutOfRange { core, num_cores } => {
                write!(
                    f,
                    "partition references {core} but the system has only {num_cores} cores"
                )
            }
            ConfigError::EmptyPartition { index } => {
                write!(f, "partition {index} has no cores mapped to it")
            }
            ConfigError::ZeroPartition { index } => {
                write!(f, "partition {index} has a zero dimension")
            }
            ConfigError::PartitionsExceedLlc {
                requested_lines,
                available_lines,
            } => write!(
                f,
                "partitions request {requested_lines} lines but the LLC has {available_lines}"
            ),
            ConfigError::PartitionExceedsGeometry { index } => {
                write!(
                    f,
                    "partition {index} is larger than the physical LLC in some dimension"
                )
            }
            ConfigError::ScheduleCoreMismatch {
                schedule_cores,
                system_cores,
            } => write!(
                f,
                "schedule covers {schedule_cores} cores but the system has {system_cores}"
            ),
            ConfigError::DramExceedsSlot {
                dram_latency,
                slot_width,
            } => write!(
                f,
                "dram latency {dram_latency} does not fit in the {slot_width}-cycle slot"
            ),
            ConfigError::BackendExceedsSlot {
                backend,
                worst_case,
                slot_width,
            } => write!(
                f,
                "memory backend {backend} has worst-case latency {worst_case}, which does \
                 not fit in the {slot_width}-cycle slot"
            ),
            ConfigError::Memory(e) => write!(f, "invalid memory backend: {e}"),
            ConfigError::Model(e) => write!(f, "invalid model parameter: {e}"),
            ConfigError::Schedule(e) => write!(f, "invalid schedule: {e}"),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Model(e) => Some(e),
            ConfigError::Schedule(e) => Some(e),
            ConfigError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<predllc_model::ModelError> for ConfigError {
    fn from(e: predllc_model::ModelError) -> Self {
        ConfigError::Model(e)
    }
}

impl From<predllc_bus::ScheduleError> for ConfigError {
    fn from(e: predllc_bus::ScheduleError) -> Self {
        ConfigError::Schedule(e)
    }
}

impl From<predllc_dram::DramError> for ConfigError {
    fn from(e: predllc_dram::DramError) -> Self {
        ConfigError::Memory(e)
    }
}

/// Errors raised while running a simulation ([`crate::Simulator::run`]).
///
/// The redesigned run API is panic-free: conditions the engine used to
/// `panic!` on (most notably the deadlock guard) are reported as typed
/// errors so long sweeps can skip a bad point and keep going.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The workload drives a different number of cores than the system
    /// has (`Workload::num_cores()` must equal `SystemConfig::num_cores`).
    CoreCountMismatch {
        /// Cores the workload drives.
        workload_cores: u16,
        /// Cores in the system.
        system_cores: u16,
    },
    /// The engine observed no bus transaction for its guard interval
    /// while cores still had unfinished work. A correct configuration
    /// always makes progress eventually, so this indicates a simulator
    /// bug — but it is reported as an error, not a panic, so a sweep can
    /// record the failure and continue.
    Deadlock {
        /// The cycle at which the deadlock was declared.
        cycle: Cycles,
        /// The cores that still had unfinished work.
        pending: Vec<CoreId>,
    },
    /// A configuration failed validation on the way into a run — raised
    /// by batch surfaces (sweeps, experiment grids) that construct
    /// simulators from declared configurations, so one bad column is a
    /// typed error instead of a panic.
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CoreCountMismatch {
                workload_cores,
                system_cores,
            } => write!(
                f,
                "workload drives {workload_cores} cores but the system has {system_cores}"
            ),
            SimError::Deadlock { cycle, pending } => {
                write!(
                    f,
                    "deadlock at cycle {}: no bus transaction while {} core(s) have \
                     unfinished work (simulator bug)",
                    cycle.as_u64(),
                    pending.len()
                )
            }
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<ConfigError>();
        assert_good::<SimError>();
    }

    #[test]
    fn sim_error_displays() {
        let e = SimError::CoreCountMismatch {
            workload_cores: 2,
            system_cores: 4,
        };
        assert_eq!(
            e.to_string(),
            "workload drives 2 cores but the system has 4"
        );
        let d = SimError::Deadlock {
            cycle: Cycles::new(5_000_000),
            pending: vec![CoreId::new(0), CoreId::new(3)],
        };
        let msg = d.to_string();
        assert!(msg.contains("5000000") && msg.contains("2 core(s)"));
        assert!(!msg.ends_with('.'));
        let c = SimError::from(ConfigError::NoCores);
        assert!(c.to_string().contains("invalid configuration"));
        assert!(c.source().is_some());
    }

    #[test]
    fn displays_are_nonempty_and_unpunctuated() {
        let samples: Vec<ConfigError> = vec![
            ConfigError::NoCores,
            ConfigError::CoreWithoutPartition {
                core: CoreId::new(1),
            },
            ConfigError::PartitionsExceedLlc {
                requested_lines: 600,
                available_lines: 512,
            },
            ConfigError::DramExceedsSlot {
                dram_latency: 80,
                slot_width: 50,
            },
            ConfigError::BackendExceedsSlot {
                backend: "banked(1x8,interleaved)".into(),
                worst_case: 60,
                slot_width: 50,
            },
            ConfigError::Memory(predllc_dram::DramError::BanksNotDivisibleByCores {
                banks: 8,
                cores: 3,
            }),
            ConfigError::Model(predllc_model::ModelError::ZeroSlotWidth),
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        let e = ConfigError::Model(predllc_model::ModelError::ZeroGeometry);
        assert!(e.source().is_some());
        let m = ConfigError::from(predllc_dram::DramError::BanksNotDivisibleByCores {
            banks: 8,
            cores: 3,
        });
        assert!(m.source().is_some());
        assert!(ConfigError::NoCores.source().is_none());
    }
}
