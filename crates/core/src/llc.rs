//! The shared, inclusive, partitioned last-level cache controller.
//!
//! This is where the paper's mechanism lives. The controller serves one
//! bus transaction per TDM slot and implements:
//!
//! * **hits** — answered within the requester's slot; the requester is
//!   recorded as a private sharer of the line (inclusion tracking);
//! * **fills** — a miss with a free way in the partition's set allocates,
//!   fetches from DRAM and answers within the slot;
//! * **the eviction protocol** — a miss into a full set *triggers* an
//!   eviction: the victim entry transitions to `Evicting`, every private
//!   sharer receives a back-invalidation and must acknowledge with a
//!   write-back in one of its own slots (the `Evict l → WB l` pattern of
//!   Figures 2–4); the entry frees when the last sharer acknowledges.
//!   A victim with no private sharers frees — and is re-allocated —
//!   immediately;
//! * **sequencer gating** — in [`SharingMode::SetSequencer`] partitions,
//!   pending requests are queued per set in bus broadcast order and only
//!   the head may claim a free way or trigger an eviction (§4.5). In
//!   [`SharingMode::BestEffort`] (`NSS`) the first core whose slot comes
//!   up wins, which is exactly the interception that Observation 3 shows
//!   makes distances grow.
//!
//! Each pending request carries an *eviction credit*: it may have at most
//! one eviction in flight, and the credit is returned when the line it
//! victimized frees (even if another core then steals the entry, as in
//! Fig. 3 slot 4). This reproduces the paper's per-request eviction
//! triggering: Fig. 4 has two evictions in flight in one set, one per
//! pending request.

use predllc_bus::WbKind;
use predllc_cache::{ReplacementKind, SetAssocCache};
use predllc_dram::{MemAccess, MemRequest, MemStats, MemoryBackend};
use predllc_model::{CoreId, Cycles, LineAddr, PartitionId, SetIdx, WayIdx};

use crate::events::BlockReason;
use crate::partition::{PartitionMap, SharingMode};
use crate::sequencer::SetSequencer;

/// A set of cores, as a bitmask (the simulator supports up to 64 cores).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    pub const EMPTY: SharerSet = SharerSet(0);

    /// Inserts a core.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1 << core.index();
    }

    /// Removes a core; returns whether it was present.
    pub fn remove(&mut self, core: CoreId) -> bool {
        let bit = 1 << core.index();
        let was = self.0 & bit != 0;
        self.0 &= !bit;
        was
    }

    /// Whether a core is present.
    pub fn contains(&self, core: CoreId) -> bool {
        self.0 & (1 << core.index()) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over member cores in index order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let bits = self.0;
        (0..64u16)
            .filter(move |i| bits & (1 << i) != 0)
            .map(CoreId::new)
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = SharerSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// Lifecycle of one LLC entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Normal valid line.
    Valid,
    /// Eviction in progress: the entry is reserved-dead, waiting for the
    /// remaining sharers' write-back acknowledgements before it frees.
    Evicting,
}

/// Per-line LLC metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcMeta {
    /// While `Valid`: the cores believed to cache the line privately.
    /// While `Evicting`: the cores whose acknowledgements are still owed.
    pub sharers: SharerSet,
    /// Lifecycle state.
    pub state: LineState,
}

/// One pending (unanswered) LLC request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingReq {
    core: CoreId,
    line: LineAddr,
    /// The victim line this request has an eviction in flight for.
    triggered_victim: Option<LineAddr>,
}

/// How the LLC answered a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// Answered from LLC contents.
    Hit,
    /// Answered after allocating a way and fetching from DRAM.
    Fill,
}

/// What happened when the LLC serviced a request in its owner's slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOutcome {
    /// The LLC responds within this slot.
    Responded(ResponseKind),
    /// No response this slot.
    Blocked(BlockReason),
}

/// Details of an eviction triggered during service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionInfo {
    /// The victimized line.
    pub victim: LineAddr,
    /// Private sharers that must acknowledge (0 = freed immediately).
    pub sharers: u32,
}

/// One memory-backend access performed during an LLC operation, for
/// event logging and per-access latency checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTraffic {
    /// The line fetched or written back.
    pub line: LineAddr,
    /// Whether this was a write-back (`true`) or a fill (`false`).
    pub write: bool,
    /// The backend's answer: latency, bank, row outcome.
    pub access: MemAccess,
}

/// Full result of [`SharedLlc::service`].
///
/// Eviction semantics: when a victim is chosen, every private sharer's
/// copy is invalidated immediately (via the service callback). Sharers
/// whose copy was **clean** are done — clean data needs no transfer, so
/// their invalidation costs no bus slot. Sharers whose copy was **dirty**
/// owe a data-carrying write-back in one of their own slots (the
/// `Evict l → WB l` pattern of Figs. 2–4); the entry frees when the last
/// of those retires. A dirty copy held by the *requester itself*
/// transfers inline — the requester owns the bus this slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceResult {
    /// The response/blocking outcome.
    pub outcome: ServiceOutcome,
    /// Private copies invalidated during this slot (all sharers of the
    /// victim, for events/stats).
    pub invalidations: Vec<(CoreId, LineAddr)>,
    /// The subset of invalidated sharers whose copy was dirty and who
    /// must therefore transmit an acknowledgement write-back; the engine
    /// queues one data-carrying write-back per entry.
    pub ack_required: Vec<(CoreId, LineAddr)>,
    /// Eviction triggered during this service, if any.
    pub eviction: Option<EvictionInfo>,
    /// If the request was newly enqueued in the set sequencer, its queue
    /// position (0 = head).
    pub sequencer_position: Option<usize>,
    /// The partition-local set the request maps to.
    pub set: SetIdx,
    /// Memory-backend accesses performed in this slot, in order — at
    /// most two (a dirty-victim write-back plus the fill re-using the
    /// freed entry), held inline to keep the miss path allocation-free.
    pub mem_traffic: [Option<MemTraffic>; 2],
}

impl ServiceResult {
    /// Records a backend access in the next free inline slot.
    fn record_traffic(&mut self, traffic: MemTraffic) {
        let slot = self
            .mem_traffic
            .iter_mut()
            .find(|s| s.is_none())
            .expect("at most two memory accesses per slot");
        *slot = Some(traffic);
    }
}

/// What a pending request could do with its next slot — a pure probe the
/// bus arbiter consults so a slot is never wasted retrying a request that
/// cannot move (e.g. while the acknowledgement it waits for sits in the
/// same core's PWB, which would otherwise livelock a request-first
/// arbiter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The request would be answered (hit, or allocation possible).
    WouldRespond,
    /// The request would trigger an eviction (progress, not a response).
    WouldTrigger,
    /// Nothing would happen: the slot is better spent on a write-back.
    Stuck,
}

/// Result of [`SharedLlc::writeback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritebackResult {
    /// The line whose entry completed eviction and freed, if any.
    pub freed: Option<LineAddr>,
    /// The memory-backend access this write-back caused, if the data
    /// went to DRAM.
    pub mem_traffic: Option<MemTraffic>,
}

/// Per-partition controller state.
#[derive(Debug)]
struct PartitionState {
    mode: SharingMode,
    shared: bool,
    cache: SetAssocCache<LlcMeta>,
    sequencer: SetSequencer,
    pending: Vec<PendingReq>,
}

impl PartitionState {
    fn pending_of(&self, core: CoreId) -> Option<&PendingReq> {
        self.pending.iter().find(|p| p.core == core)
    }

    fn pending_of_mut(&mut self, core: CoreId) -> Option<&mut PendingReq> {
        self.pending.iter_mut().find(|p| p.core == core)
    }

    fn remove_pending(&mut self, core: CoreId) {
        self.pending.retain(|p| p.core != core);
    }

    /// Returns the eviction credit of every request that victimized
    /// `line` (its eviction completed; it may trigger again).
    fn return_credits(&mut self, line: LineAddr) {
        for p in &mut self.pending {
            if p.triggered_victim == Some(line) {
                p.triggered_victim = None;
            }
        }
    }

    fn uses_sequencer(&self) -> bool {
        self.shared && self.mode == SharingMode::SetSequencer
    }
}

/// The shared LLC: one controller over all partitions, plus the memory
/// backend behind it.
///
/// All methods are called by the simulation engine at slot boundaries;
/// the controller performs no timing itself (the engine owns the clock
/// and hands each operation its slot-start timestamp, which the backend
/// uses to drive its per-bank state machines).
#[derive(Debug)]
pub struct SharedLlc {
    partitions: Vec<PartitionState>,
    map: PartitionMap,
    memory: Box<dyn MemoryBackend>,
}

impl SharedLlc {
    /// Builds the controller for a partition map.
    ///
    /// # Panics
    ///
    /// Panics if a partition's geometry is invalid — impossible for a
    /// [`PartitionMap`] that passed validation.
    pub fn new(
        map: PartitionMap,
        line_size: u32,
        replacement: ReplacementKind,
        memory: Box<dyn MemoryBackend>,
    ) -> Self {
        let partitions = map
            .partitions()
            .iter()
            .map(|spec| {
                let geometry = spec
                    .geometry(line_size)
                    .expect("validated partition has a valid geometry");
                PartitionState {
                    mode: spec.mode,
                    shared: !spec.is_private(),
                    cache: SetAssocCache::new(geometry, replacement),
                    sequencer: SetSequencer::new(),
                    pending: Vec::new(),
                }
            })
            .collect();
        SharedLlc {
            partitions,
            map,
            memory,
        }
    }

    /// The partition map this controller was built from.
    pub fn partition_map(&self) -> &PartitionMap {
        &self.map
    }

    /// Counters of the memory backend behind the LLC.
    pub fn memory_stats(&self) -> &MemStats {
        self.memory.mem_stats()
    }

    /// The backend's analytical worst-case access latency.
    pub fn memory_worst_case(&self) -> Cycles {
        self.memory.worst_case_latency()
    }

    /// Sequencer high-water marks across partitions: `(max tracked sets,
    /// max queue depth)`.
    pub fn sequencer_pressure(&self) -> (usize, usize) {
        self.partitions
            .iter()
            .map(|p| {
                (
                    p.sequencer.max_tracked_sets(),
                    p.sequencer.max_queue_depth(),
                )
            })
            .fold((0, 0), |(s, d), (ps, pd)| (s.max(ps), d.max(pd)))
    }

    /// Whether `line` is present and valid in `core`'s partition, with
    /// `core` recorded as a sharer (test/invariant helper).
    pub fn is_valid_sharer(&self, core: CoreId, line: LineAddr) -> bool {
        let p = &self.partitions[self.map.partition_of(core).as_usize()];
        p.cache
            .peek(line)
            .is_some_and(|e| e.meta.state == LineState::Valid && e.meta.sharers.contains(core))
    }

    /// The state of `line` in `partition`, if present (test helper).
    pub fn line_state(&self, partition: PartitionId, line: LineAddr) -> Option<(LineState, u32)> {
        self.partitions[partition.as_usize()]
            .cache
            .peek(line)
            .map(|e| (e.meta.state, e.meta.sharers.count()))
    }

    /// Occupancy of `core`'s partition (test helper).
    pub fn partition_occupancy(&self, core: CoreId) -> usize {
        self.partitions[self.map.partition_of(core).as_usize()]
            .cache
            .occupancy()
    }

    /// Pure dry-run of [`SharedLlc::service`]: what would `core`'s
    /// pending request accomplish in a slot right now?
    ///
    /// Used by the engine's grant logic; never mutates state and assumes
    /// the request has already been broadcast (a first broadcast is
    /// always progress regardless of this probe).
    pub fn probe(&self, core: CoreId, line: LineAddr) -> Probe {
        let pid = self.map.partition_of(core);
        let p = &self.partitions[pid.as_usize()];
        let set = p.cache.set_of(line);
        if let Some(e) = p.cache.peek(line) {
            if e.meta.state == LineState::Valid {
                return Probe::WouldRespond;
            }
        }
        let is_head = !p.uses_sequencer()
            || !p.sequencer.contains(set, core)
            || p.sequencer.is_head(set, core);
        let free_way = p.cache.free_way_in(set).is_some();
        if is_head && free_way {
            return Probe::WouldRespond;
        }
        if free_way
            || p.pending_of(core)
                .is_some_and(|r| r.triggered_victim.is_some())
        {
            return Probe::Stuck;
        }
        let has_eligible_victim = (0..p.cache.geometry().ways()).any(|w| {
            p.cache
                .entry(set, WayIdx(w))
                .is_some_and(|e| e.meta.state == LineState::Valid)
        });
        if has_eligible_victim {
            Probe::WouldTrigger
        } else {
            Probe::Stuck
        }
    }

    /// Fast path for the most common slot of all: a request that hits a
    /// valid resident line.
    ///
    /// Performs exactly the mutations of [`SharedLlc::service`]'s hit
    /// case — recency touch, sharer registration, pending/sequencer
    /// cleanup — and returns `true`; returns `false` *without mutating
    /// anything* when the request would not be a hit (absent line or one
    /// mid-eviction), in which case the caller must fall back to the full
    /// [`SharedLlc::service`] protocol.
    pub fn try_service_hit(&mut self, core: CoreId, line: LineAddr) -> bool {
        let pid = self.map.partition_of(core);
        let p = &mut self.partitions[pid.as_usize()];
        let Some(way) = p.cache.way_of(line) else {
            return false;
        };
        let set = p.cache.set_of(line);
        let entry = p.cache.entry(set, way).expect("way_of found it");
        if entry.meta.state != LineState::Valid {
            return false;
        }
        p.cache.touch(set, way);
        let entry = p.cache.entry_mut(set, way).expect("way_of found it");
        entry.meta.sharers.insert(core);
        p.remove_pending(core);
        if p.uses_sequencer() {
            p.sequencer.remove(set, core);
        }
        true
    }

    /// The backend's residual busyness horizon (see
    /// [`MemoryBackend::next_busy_until`]): the latest cycle any DRAM
    /// bank is still busy from past accesses. The fast-forward engine
    /// asserts idle-slot jumps never land in front of it.
    pub fn memory_next_busy_until(&self) -> Cycles {
        self.memory.next_busy_until()
    }

    /// The rows currently open across the backend's DRAM banks (empty
    /// for flat backends). A read-only snapshot for diagnostics — the
    /// WCL witness records it as the bank state a worst-case request
    /// ran into.
    pub fn open_rows(&self) -> Vec<(predllc_model::BankId, u64)> {
        self.memory.open_rows()
    }

    /// Services `core`'s pending request for `line` within `core`'s
    /// slot, which starts at cycle `now`.
    ///
    /// Called by the engine when the arbiter grants the bus to the PRB.
    /// The same call covers the first broadcast and every subsequent
    /// retry; the controller tracks pending state internally. `now` is
    /// forwarded to the memory backend, whose banked implementations use
    /// it to track per-bank readiness.
    ///
    /// `evict` is invoked once per private sharer of a chosen victim: it
    /// must purge the line from that core's private hierarchy and return
    /// whether the purged copy was dirty. Dirty remote copies then owe an
    /// acknowledgement write-back slot; clean copies and the requester's
    /// own copy complete within this slot (the latter because the
    /// requester owns the bus — this is what gives private partitions
    /// their `(2N+1)·SW` bound).
    pub fn service(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: Cycles,
        evict: &mut dyn FnMut(CoreId, LineAddr) -> bool,
    ) -> ServiceResult {
        let pid = self.map.partition_of(core);
        let p = &mut self.partitions[pid.as_usize()];
        let set = p.cache.set_of(line);
        let mut result = ServiceResult {
            outcome: ServiceOutcome::Blocked(BlockReason::WaitingForEviction),
            invalidations: Vec::new(),
            ack_required: Vec::new(),
            eviction: None,
            sequencer_position: None,
            set,
            mem_traffic: [None, None],
        };

        // 1. Hit on a valid line: respond regardless of sequencer state —
        //    the sequencer orders *allocations*, not reads of resident
        //    lines.
        if let Some(way) = p.cache.way_of(line) {
            let entry = p.cache.entry(set, way).expect("way_of found it");
            if entry.meta.state == LineState::Valid {
                p.cache.touch(set, way);
                let entry = p.cache.entry_mut(set, way).expect("way_of found it");
                entry.meta.sharers.insert(core);
                p.remove_pending(core);
                if p.uses_sequencer() {
                    p.sequencer.remove(set, core);
                }
                result.outcome = ServiceOutcome::Responded(ResponseKind::Hit);
                return result;
            }
            // Mid-eviction lines are not hits; fall through to the
            // pending path and wait for the entry to free.
        }

        // 2. Register the request (idempotent).
        if p.pending_of(core).is_none() {
            p.pending.push(PendingReq {
                core,
                line,
                triggered_victim: None,
            });
        }

        // 3. Sequencer: enqueue in broadcast order. The queue orders
        //    *occupation* of cache line entries (only the head may claim
        //    a free way, §4.5); eviction triggering stays concurrent, as
        //    under best effort — serializing it would only inflate
        //    latencies without strengthening the Theorem 4.8 bound.
        if p.uses_sequencer() && !p.sequencer.contains(set, core) {
            let position = p.sequencer.queue_len(set);
            p.sequencer.enqueue(set, core);
            result.sequencer_position = Some(position);
        }
        let is_head = !p.uses_sequencer() || p.sequencer.is_head(set, core);
        let blocked_reason = if is_head {
            BlockReason::WaitingForEviction
        } else {
            BlockReason::NotHead
        };

        // 4. Free way + at the head of the queue: allocate, fetch,
        //    respond within the slot.
        if is_head {
            if let Some(way) = p.cache.free_way_in(set) {
                let traffic = Self::allocate(p, &mut self.memory, core, line, set, way, now);
                result.record_traffic(traffic);
                result.outcome = ServiceOutcome::Responded(ResponseKind::Fill);
                return result;
            }
        }

        // 5. Full set: trigger an eviction if this request holds no
        //    in-flight eviction credit (any queue position may trigger).
        if p.pending_of(core)
            .expect("registered above")
            .triggered_victim
            .is_some()
            || p.cache.free_way_in(set).is_some()
        {
            result.outcome = ServiceOutcome::Blocked(blocked_reason);
            return result;
        }
        let ways = p.cache.geometry().ways() as usize;
        let eligible: Vec<bool> = (0..ways)
            .map(|w| {
                p.cache
                    .entry(set, WayIdx(w as u32))
                    .is_some_and(|e| e.meta.state == LineState::Valid)
            })
            .collect();
        let Some(victim_way) = p.cache.choose_victim(set, &eligible) else {
            result.outcome = ServiceOutcome::Blocked(if is_head {
                BlockReason::AllWaysEvicting
            } else {
                BlockReason::NotHead
            });
            return result;
        };
        let victim_entry = p
            .cache
            .entry(set, victim_way)
            .expect("eligible way occupied");
        let victim_line = victim_entry.line;
        let victim_sharers = victim_entry.meta.sharers;
        p.pending_of_mut(core)
            .expect("registered above")
            .triggered_victim = Some(victim_line);
        result.eviction = Some(EvictionInfo {
            victim: victim_line,
            sharers: victim_sharers.count(),
        });

        // Invalidate every private copy now. Clean copies are done (no
        // data to transfer); dirty remote copies owe a write-back slot;
        // a dirty copy of the requester itself transfers inline.
        let mut waiting = SharerSet::EMPTY;
        let mut inline_dirty = false;
        for sharer in victim_sharers.iter() {
            let dirty = evict(sharer, victim_line);
            result.invalidations.push((sharer, victim_line));
            if dirty {
                if sharer == core {
                    inline_dirty = true;
                } else {
                    waiting.insert(sharer);
                    result.ack_required.push((sharer, victim_line));
                }
            }
        }
        {
            let entry = p.cache.entry_mut(set, victim_way).expect("victim occupied");
            entry.dirty |= inline_dirty;
            entry.meta.sharers = waiting;
        }

        if waiting.is_empty() {
            // No data-carrying acknowledgements owed: the entry frees in
            // this slot.
            let evicted = p.cache.take(set, victim_way).expect("victim occupied");
            if evicted.dirty {
                let access = self
                    .memory
                    .access(MemRequest::write_back(victim_line, core, now));
                result.record_traffic(MemTraffic {
                    line: victim_line,
                    write: true,
                    access,
                });
            }
            p.return_credits(victim_line);
            if is_head {
                // …and the head re-uses it immediately.
                let traffic = Self::allocate(p, &mut self.memory, core, line, set, victim_way, now);
                result.record_traffic(traffic);
                result.outcome = ServiceOutcome::Responded(ResponseKind::Fill);
            } else {
                // The freed entry waits for the queue head.
                result.outcome = ServiceOutcome::Blocked(BlockReason::NotHead);
            }
        } else {
            // Start the multi-slot eviction protocol for the dirty
            // remote copies.
            let entry = p.cache.entry_mut(set, victim_way).expect("victim occupied");
            entry.meta.state = LineState::Evicting;
            result.outcome = ServiceOutcome::Blocked(blocked_reason);
        }
        result
    }

    /// Processes a write-back (capacity eviction or back-invalidation
    /// acknowledgement) transmitted by `core` in its slot starting at
    /// cycle `now`.
    pub fn writeback(
        &mut self,
        core: CoreId,
        line: LineAddr,
        dirty: bool,
        kind: WbKind,
        now: Cycles,
    ) -> WritebackResult {
        let pid = self.map.partition_of(core);
        let p = &mut self.partitions[pid.as_usize()];
        let set = p.cache.set_of(line);
        let Some(way) = p.cache.way_of(line) else {
            // The entry is gone (already freed). Dirty data still goes to
            // memory.
            let mem_traffic = dirty.then(|| MemTraffic {
                line,
                write: true,
                access: self.memory.access(MemRequest::write_back(line, core, now)),
            });
            return WritebackResult {
                freed: None,
                mem_traffic,
            };
        };
        let entry = p.cache.entry_mut(set, way).expect("way_of found it");
        match entry.meta.state {
            LineState::Evicting => {
                entry.meta.sharers.remove(core);
                entry.dirty |= dirty;
                if entry.meta.sharers.is_empty() {
                    let evicted = p.cache.take(set, way).expect("entry exists");
                    let mem_traffic = evicted.dirty.then(|| MemTraffic {
                        line,
                        write: true,
                        access: self.memory.access(MemRequest::write_back(line, core, now)),
                    });
                    p.return_credits(line);
                    return WritebackResult {
                        freed: Some(line),
                        mem_traffic,
                    };
                }
                WritebackResult {
                    freed: None,
                    mem_traffic: None,
                }
            }
            LineState::Valid => {
                // A capacity write-back updates the (still valid) LLC
                // copy; either kind means the core no longer holds the
                // line privately.
                entry.meta.sharers.remove(core);
                if kind == WbKind::CapacityEviction {
                    entry.dirty = true;
                }
                WritebackResult {
                    freed: None,
                    mem_traffic: None,
                }
            }
        }
    }

    /// Records that `core` silently dropped a clean private copy of
    /// `line` — *not* a bus transaction.
    ///
    /// The paper's model would leave the sharer bit conservatively stale;
    /// the simulator keeps that behaviour by default (this method is only
    /// used by the `precise-sharers` ablation in tests).
    pub fn note_clean_drop(&mut self, core: CoreId, line: LineAddr) {
        let pid = self.map.partition_of(core);
        let p = &mut self.partitions[pid.as_usize()];
        if let Some(e) = p.cache.peek_mut(line) {
            if e.meta.state == LineState::Valid {
                e.meta.sharers.remove(core);
            }
        }
    }

    /// Whether `core` has a registered pending request.
    pub fn has_pending(&self, core: CoreId) -> bool {
        let pid = self.map.partition_of(core);
        self.partitions[pid.as_usize()].pending_of(core).is_some()
    }

    fn allocate(
        p: &mut PartitionState,
        memory: &mut Box<dyn MemoryBackend>,
        core: CoreId,
        line: LineAddr,
        set: SetIdx,
        way: WayIdx,
        now: Cycles,
    ) -> MemTraffic {
        let access = memory.access(MemRequest::fetch(line, core, now));
        let mut sharers = SharerSet::EMPTY;
        sharers.insert(core);
        p.cache.install_at(
            set,
            way,
            line,
            false,
            LlcMeta {
                sharers,
                state: LineState::Valid,
            },
        );
        p.remove_pending(core);
        if p.uses_sequencer() {
            // The allocating core is the head by construction.
            debug_assert!(p.sequencer.is_head(set, core) || !p.sequencer.contains(set, core));
            if p.sequencer.is_head(set, core) {
                p.sequencer.pop(set);
            }
        }
        MemTraffic {
            line,
            write: false,
            access,
        }
    }
}

/// Timing-free latency bookkeeping helper: the response to a request
/// serviced in the slot starting at `slot_start` arrives at
/// `slot_start + slot_width` (the first cycle after the slot).
pub fn response_time(slot_start: Cycles, slot_width: predllc_model::SlotWidth) -> Cycles {
    slot_start + slot_width.cycles()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionSpec;
    use predllc_model::CacheGeometry;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    /// Service treating every invalidated private copy as clean.
    fn svc(llc: &mut SharedLlc, core: CoreId, line: LineAddr) -> ServiceResult {
        llc.service(core, line, Cycles::ZERO, &mut |_, _| false)
    }

    /// Service treating every invalidated private copy as dirty — the
    /// worst case the paper's figures depict (`Evict l → WB l`).
    fn svc_dirty(llc: &mut SharedLlc, core: CoreId, line: LineAddr) -> ServiceResult {
        llc.service(core, line, Cycles::ZERO, &mut |_, _| true)
    }

    /// `cores` cores sharing one 1-set × `ways` partition.
    fn shared_llc(mode: SharingMode, cores: u16, ways: u32) -> SharedLlc {
        let map = PartitionMap::new(
            vec![PartitionSpec::shared(
                1,
                ways,
                CoreId::first(cores).collect(),
                mode,
            )],
            cores,
            CacheGeometry::PAPER_L3,
        )
        .unwrap();
        SharedLlc::new(
            map,
            64,
            ReplacementKind::Lru,
            Box::new(predllc_dram::FixedLatency::default()),
        )
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::EMPTY;
        assert!(s.is_empty());
        s.insert(c(3));
        s.insert(c(5));
        assert!(s.contains(c(3)));
        assert!(!s.contains(c(4)));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![c(3), c(5)]);
        assert!(s.remove(c(3)));
        assert!(!s.remove(c(3)));
        let s2: SharerSet = [c(1), c(2)].into_iter().collect();
        assert_eq!(s2.count(), 2);
    }

    #[test]
    fn miss_fill_then_hit() {
        let mut llc = shared_llc(SharingMode::BestEffort, 2, 2);
        let r = svc(&mut llc, c(0), l(0));
        assert_eq!(r.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
        assert!(llc.is_valid_sharer(c(0), l(0)));
        // Second core hits the same line and becomes a sharer too.
        let r = svc(&mut llc, c(1), l(0));
        assert_eq!(r.outcome, ServiceOutcome::Responded(ResponseKind::Hit));
        assert!(llc.is_valid_sharer(c(1), l(0)));
        assert_eq!(llc.memory_stats().reads, 1);
    }

    #[test]
    fn dirty_remote_victim_needs_ack_protocol() {
        let mut llc = shared_llc(SharingMode::BestEffort, 2, 2);
        // c1 fills both ways of the single set.
        svc(&mut llc, c(1), l(0));
        svc(&mut llc, c(1), l(1));
        // c0 misses: set full, victim dirty at c1 → ack write-back owed.
        let r = llc.service(c(0), l(2), Cycles::ZERO, &mut |core, _| core == c(1));
        assert_eq!(
            r.outcome,
            ServiceOutcome::Blocked(BlockReason::WaitingForEviction)
        );
        let ev = r.eviction.expect("eviction triggered");
        assert_eq!(ev.sharers, 1);
        assert_eq!(r.invalidations, vec![(c(1), ev.victim)]);
        assert_eq!(r.ack_required, vec![(c(1), ev.victim)]);
        // Retrying before the ack: still blocked, no second eviction.
        let r2 = svc_dirty(&mut llc, c(0), l(2));
        assert_eq!(
            r2.outcome,
            ServiceOutcome::Blocked(BlockReason::WaitingForEviction)
        );
        assert!(r2.eviction.is_none());
        // c1's ack (carrying the data) frees the entry.
        let wr = llc.writeback(c(1), ev.victim, true, WbKind::BackInvalAck, Cycles::ZERO);
        assert_eq!(wr.freed, Some(ev.victim));
        // The dirty data reached DRAM with the free.
        assert_eq!(llc.memory_stats().writes, 1);
        // c0 now allocates.
        let r3 = svc(&mut llc, c(0), l(2));
        assert_eq!(r3.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
    }

    #[test]
    fn clean_remote_victim_evicts_within_the_slot() {
        let mut llc = shared_llc(SharingMode::BestEffort, 2, 2);
        svc(&mut llc, c(1), l(0));
        svc(&mut llc, c(1), l(1));
        // c0 misses into the full set, but c1's copies are clean: the
        // invalidation costs no bus slot and c0 fills immediately.
        let r = svc(&mut llc, c(0), l(2));
        assert_eq!(r.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
        let ev = r.eviction.expect("an eviction still happened");
        assert_eq!(r.invalidations, vec![(c(1), ev.victim)]);
        assert!(r.ack_required.is_empty());
        // Clean data does not go to DRAM.
        assert_eq!(llc.memory_stats().writes, 0);
    }

    #[test]
    fn requesters_own_dirty_victim_transfers_inline() {
        // The basis of the (2N+1)·SW private-partition bound.
        let mut llc = shared_llc(SharingMode::BestEffort, 2, 1);
        svc(&mut llc, c(0), l(0)); // c0 fills, c0 is the sole sharer
        let mut invalidated = Vec::new();
        let r = llc.service(c(0), l(2), Cycles::ZERO, &mut |core, v| {
            invalidated.push((core, v));
            true // the private copy was dirty
        });
        assert_eq!(r.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
        assert_eq!(invalidated, vec![(c(0), l(0))]);
        assert!(r.ack_required.is_empty(), "own slot carries the data");
        // The dirty data went to DRAM within the slot.
        assert_eq!(llc.memory_stats().writes, 1);
        assert!(llc.is_valid_sharer(c(0), l(2)));
    }

    #[test]
    fn mixed_sharers_inline_self_but_waits_for_dirty_remote() {
        let mut llc = shared_llc(SharingMode::BestEffort, 3, 1);
        svc(&mut llc, c(0), l(0));
        svc(&mut llc, c(1), l(0)); // hit: both c0 and c1 share line 0
        let r = svc_dirty(&mut llc, c(0), l(3));
        // Both invalidated now; only remote c1 owes an ack slot.
        assert_eq!(r.invalidations, vec![(c(0), l(0)), (c(1), l(0))]);
        assert_eq!(r.ack_required, vec![(c(1), l(0))]);
        assert_eq!(
            r.outcome,
            ServiceOutcome::Blocked(BlockReason::WaitingForEviction)
        );
        // c1's ack frees the entry; c0 then fills.
        llc.writeback(c(1), l(0), true, WbKind::BackInvalAck, Cycles::ZERO);
        let r = svc(&mut llc, c(0), l(3));
        assert_eq!(r.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
    }

    #[test]
    fn unshared_victim_frees_and_reallocates_in_one_slot() {
        let mut llc = shared_llc(SharingMode::BestEffort, 2, 2);
        svc(&mut llc, c(1), l(0));
        svc(&mut llc, c(1), l(1));
        // Both lines lose their private copies via capacity write-backs.
        llc.writeback(c(1), l(0), true, WbKind::CapacityEviction, Cycles::ZERO);
        llc.writeback(c(1), l(1), true, WbKind::CapacityEviction, Cycles::ZERO);
        // c0's miss victimizes an unshared line: responds immediately.
        let r = svc(&mut llc, c(0), l(2));
        assert_eq!(r.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
        assert_eq!(r.eviction.unwrap().sharers, 0);
        // The (LLC-)dirty victim went to DRAM.
        assert_eq!(llc.memory_stats().writes, 1);
    }

    #[test]
    fn sequencer_orders_occupation_by_broadcast() {
        let mut llc = shared_llc(SharingMode::SetSequencer, 3, 2);
        // c2 fills both ways (dirty copies).
        svc(&mut llc, c(2), l(0));
        svc(&mut llc, c(2), l(1));
        // c0 broadcasts first, then c1: queue order fixed.
        let r0 = svc_dirty(&mut llc, c(0), l(3));
        assert_eq!(r0.sequencer_position, Some(0));
        let ev0 = r0.eviction.expect("head triggers eviction");
        let r1 = svc_dirty(&mut llc, c(1), l(4));
        assert_eq!(r1.sequencer_position, Some(1));
        assert_eq!(r1.outcome, ServiceOutcome::Blocked(BlockReason::NotHead));
        // Eviction triggering is concurrent: the non-head victimizes the
        // other way while waiting its turn to occupy.
        let ev1 = r1.eviction.expect("non-head may trigger");
        assert_ne!(ev1.victim, ev0.victim);
        // c2 acks c0's victim; the entry frees. c1 retries first but is
        // still not the head, so the free entry waits for c0.
        llc.writeback(c(2), ev0.victim, true, WbKind::BackInvalAck, Cycles::ZERO);
        let r1 = svc_dirty(&mut llc, c(1), l(4));
        assert_eq!(r1.outcome, ServiceOutcome::Blocked(BlockReason::NotHead));
        // Head (c0) allocates.
        let r0 = svc_dirty(&mut llc, c(0), l(3));
        assert_eq!(r0.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
        // c2 acks c1's victim too; now the new head (c1) allocates.
        llc.writeback(c(2), ev1.victim, true, WbKind::BackInvalAck, Cycles::ZERO);
        let r1 = svc_dirty(&mut llc, c(1), l(4));
        assert_eq!(r1.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
    }

    #[test]
    fn best_effort_lets_latecomer_steal_freed_entry() {
        // The NSS interception at the heart of the pessimistic WCL.
        let mut llc = shared_llc(SharingMode::BestEffort, 3, 2);
        svc(&mut llc, c(2), l(0));
        svc(&mut llc, c(2), l(1));
        let r0 = svc_dirty(&mut llc, c(0), l(3)); // c0 triggers eviction
        let ev = r0.eviction.unwrap();
        llc.writeback(c(2), ev.victim, true, WbKind::BackInvalAck, Cycles::ZERO);
        // c1's slot comes before c0's: it steals the freed way.
        let r1 = svc_dirty(&mut llc, c(1), l(4));
        assert_eq!(r1.outcome, ServiceOutcome::Responded(ResponseKind::Fill));
        // c0 is still waiting and must trigger a *new* eviction (its
        // credit returned when the victim freed).
        let r0 = svc_dirty(&mut llc, c(0), l(3));
        assert_eq!(
            r0.outcome,
            ServiceOutcome::Blocked(BlockReason::WaitingForEviction)
        );
        assert!(
            r0.eviction.is_some(),
            "credit was returned, so it re-triggers"
        );
    }

    #[test]
    fn eviction_with_multiple_dirty_sharers_waits_for_all() {
        let mut llc = shared_llc(SharingMode::BestEffort, 3, 1);
        // Both c1 and c2 share line 0 (1-way partition).
        svc(&mut llc, c(1), l(0));
        svc(&mut llc, c(2), l(0));
        let r = svc_dirty(&mut llc, c(0), l(5));
        let ev = r.eviction.unwrap();
        assert_eq!(ev.sharers, 2);
        assert_eq!(r.ack_required.len(), 2);
        // First ack: not yet freed.
        let wr = llc.writeback(c(1), ev.victim, true, WbKind::BackInvalAck, Cycles::ZERO);
        assert_eq!(wr.freed, None);
        // Second ack: freed.
        let wr = llc.writeback(c(2), ev.victim, true, WbKind::BackInvalAck, Cycles::ZERO);
        assert_eq!(wr.freed, Some(ev.victim));
        assert_eq!(llc.memory_stats().writes, 1);
    }

    #[test]
    fn capacity_writeback_marks_llc_dirty() {
        let mut llc = shared_llc(SharingMode::BestEffort, 2, 2);
        svc(&mut llc, c(0), l(0));
        llc.writeback(c(0), l(0), true, WbKind::CapacityEviction, Cycles::ZERO);
        let pid = llc.partition_map().partition_of(c(0));
        let (state, sharers) = llc.line_state(pid, l(0)).unwrap();
        assert_eq!(state, LineState::Valid);
        assert_eq!(sharers, 0);
        // Evicting it now: unshared and dirty → immediate free + DRAM WB.
        svc(&mut llc, c(1), l(1));
        let before = llc.memory_stats().writes;
        svc(&mut llc, c(0), l(2)); // LRU victim is the unshared line 0
        assert_eq!(llc.memory_stats().writes, before + 1);
    }

    #[test]
    fn writeback_for_absent_line_goes_to_dram() {
        let mut llc = shared_llc(SharingMode::BestEffort, 2, 2);
        let wr = llc.writeback(c(0), l(9), true, WbKind::CapacityEviction, Cycles::ZERO);
        assert_eq!(wr.freed, None);
        assert_eq!(llc.memory_stats().writes, 1);
        // Clean ack for an absent line: fully ignored.
        let wr = llc.writeback(c(0), l(9), false, WbKind::BackInvalAck, Cycles::ZERO);
        assert_eq!(wr.freed, None);
        assert_eq!(llc.memory_stats().writes, 1);
    }

    #[test]
    fn evicting_line_is_not_a_hit() {
        let mut llc = shared_llc(SharingMode::BestEffort, 3, 1);
        svc(&mut llc, c(1), l(0));
        let ev = svc_dirty(&mut llc, c(0), l(5)).eviction.unwrap();
        assert_eq!(ev.victim, l(0));
        // c2 requests the very line being evicted: not a hit; it becomes
        // pending (and in a 1-way set, blocked).
        let r = svc(&mut llc, c(2), l(0));
        assert!(matches!(r.outcome, ServiceOutcome::Blocked(_)));
        assert!(llc.has_pending(c(2)));
    }

    #[test]
    fn private_partitions_do_not_interfere() {
        let map = PartitionMap::new(
            vec![
                PartitionSpec::private(1, 1, c(0)),
                PartitionSpec::private(1, 1, c(1)),
            ],
            2,
            CacheGeometry::PAPER_L3,
        )
        .unwrap();
        let mut llc = SharedLlc::new(
            map,
            64,
            ReplacementKind::Lru,
            Box::new(predllc_dram::FixedLatency::default()),
        );
        svc(&mut llc, c(0), l(0));
        // c1's fill lands in its own partition; c0's line is untouched.
        svc(&mut llc, c(1), l(0));
        assert!(llc.is_valid_sharer(c(0), l(0)));
        assert!(llc.is_valid_sharer(c(1), l(0)));
        assert_eq!(llc.partition_occupancy(c(0)), 1);
        assert_eq!(llc.partition_occupancy(c(1)), 1);
    }

    #[test]
    fn note_clean_drop_clears_stale_sharer() {
        let mut llc = shared_llc(SharingMode::BestEffort, 2, 2);
        svc(&mut llc, c(0), l(0));
        llc.note_clean_drop(c(0), l(0));
        let pid = llc.partition_map().partition_of(c(0));
        assert_eq!(llc.line_state(pid, l(0)).unwrap().1, 0);
    }

    #[test]
    fn probe_reflects_service_outcomes() {
        let mut llc = shared_llc(SharingMode::BestEffort, 3, 1);
        // Empty set: would respond (free way).
        assert_eq!(llc.probe(c(0), l(0)), Probe::WouldRespond);
        svc(&mut llc, c(1), l(0));
        // Hit on a valid line: would respond.
        assert_eq!(llc.probe(c(1), l(0)), Probe::WouldRespond);
        // Full set, no eviction in flight: would trigger.
        assert_eq!(llc.probe(c(0), l(2)), Probe::WouldTrigger);
        // Trigger it for real (dirty victim): the request is stuck until
        // the ack arrives.
        let r = svc_dirty(&mut llc, c(0), l(2));
        assert!(r.eviction.is_some());
        assert_eq!(llc.probe(c(0), l(2)), Probe::Stuck);
        // A second core with a different line: the only way is mid-
        // eviction, nothing to victimize → stuck.
        let r2 = svc(&mut llc, c(2), l(5));
        assert_eq!(
            r2.outcome,
            ServiceOutcome::Blocked(BlockReason::AllWaysEvicting)
        );
        assert_eq!(llc.probe(c(2), l(5)), Probe::Stuck);
        // The ack frees the entry: the waiting request becomes unstuck.
        llc.writeback(c(1), l(0), true, WbKind::BackInvalAck, Cycles::ZERO);
        assert_eq!(llc.probe(c(0), l(2)), Probe::WouldRespond);
    }

    #[test]
    fn probe_respects_sequencer_ordering() {
        let mut llc = shared_llc(SharingMode::SetSequencer, 3, 1);
        svc(&mut llc, c(2), l(0));
        let r = svc_dirty(&mut llc, c(0), l(3)); // head, triggers eviction
        assert!(r.eviction.is_some());
        svc_dirty(&mut llc, c(1), l(4)); // queued behind c0
        assert_eq!(llc.probe(c(1), l(4)), Probe::Stuck);
        llc.writeback(c(2), l(0), true, WbKind::BackInvalAck, Cycles::ZERO);
        // Entry free: head would respond, non-head still stuck.
        assert_eq!(llc.probe(c(0), l(3)), Probe::WouldRespond);
        assert_eq!(llc.probe(c(1), l(4)), Probe::Stuck);
    }

    #[test]
    fn response_time_is_end_of_slot() {
        use predllc_model::SlotWidth;
        assert_eq!(
            response_time(Cycles::new(100), SlotWidth::PAPER),
            Cycles::new(150)
        );
    }
}
