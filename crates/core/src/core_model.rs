//! Stream-driven execution of one core.
//!
//! Each core pulls memory operations from its workload stream on demand,
//! with at most one outstanding LLC request (paper §3). Private L1/L2
//! hits advance the core's local clock without bus traffic; a private
//! miss parks the operation in the PRB (timestamped after the L2 lookup
//! latency) and stalls the core until the LLC responds in one of its TDM
//! slots.
//!
//! Because operations are pulled lazily — exactly one look-ahead, the
//! op being executed — a core's memory footprint is independent of the
//! workload length: a million-op generator stream costs the same as a
//! ten-op one.

use predllc_bus::{Prb, Pwb, SlotArbiter, WbKind, WriteBack};
use predllc_cache::{PrivateHierarchy, PrivateLookup};
use predllc_model::{CoreId, Cycles, LineAddr, MemOp};

use crate::stats::CoreStats;

/// What a call to [`CoreModel::advance_to`] may leave behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreProgress {
    /// The core is still executing private hits (or waiting for its local
    /// clock to catch up).
    Running,
    /// The core has a request parked in its PRB and is stalled.
    Stalled,
    /// The trace is exhausted.
    Finished,
}

/// What a [`CoreModel::advance_run`] batch advance accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// The core's state after the run.
    pub progress: CoreProgress,
    /// Start time of the last operation the run executed, if any — the
    /// moment the reference engine would have counted that operation's
    /// completion (at the first slot boundary at or after it).
    pub last_op_start: Option<Cycles>,
}

/// One simulated core: workload stream, private hierarchy, bus-side
/// buffers.
///
/// Generic over the operation source `I` so the engine can drive it from
/// any [`Workload`](predllc_workload::Workload) stream; tests and tools
/// can instantiate it with a plain `vec.into_iter()`.
#[derive(Debug)]
pub struct CoreModel<I> {
    id: CoreId,
    ops: I,
    /// The private L1I/L1D/L2 stack.
    pub private: PrivateHierarchy,
    /// The pending request buffer (capacity one).
    pub prb: Prb,
    /// The pending write-back buffer.
    pub pwb: Pwb,
    /// The PRB/PWB slot arbiter.
    pub arbiter: SlotArbiter,
    /// The next cycle at which the core can execute an operation.
    resume_at: Cycles,
    finished: bool,
    l1_latency: Cycles,
    l2_latency: Cycles,
}

impl<I: Iterator<Item = MemOp>> CoreModel<I> {
    /// Creates a core over its operation stream.
    pub fn new(
        id: CoreId,
        ops: I,
        private: PrivateHierarchy,
        arbiter: SlotArbiter,
        l1_latency: Cycles,
        l2_latency: Cycles,
    ) -> Self {
        CoreModel {
            id,
            ops,
            private,
            prb: Prb::new(),
            pwb: Pwb::new(),
            arbiter,
            resume_at: Cycles::ZERO,
            finished: false,
            l1_latency,
            l2_latency,
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Whether the stream is exhausted and the last operation completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The cycle at which the core finished (meaningful once
    /// [`Self::is_finished`]).
    pub fn finished_at(&self) -> Cycles {
        self.resume_at
    }

    /// Executes private-hit operations up to (and including) cycle `now`,
    /// stopping at the first private miss, which is parked in the PRB.
    ///
    /// Never advances past `now`: the outcome of an operation issued
    /// after `now` could still be changed by back-invalidations arriving
    /// at the `now` slot boundary.
    pub fn advance_to(&mut self, now: Cycles, stats: &mut CoreStats) -> CoreProgress {
        self.advance_run(now, stats).progress
    }

    /// Batch-advances the core through its whole private-hit run: executes
    /// operations until the next private miss, the end of the stream, or
    /// the first operation that would start after `horizon`.
    ///
    /// Behaviour is identical to [`CoreModel::advance_to`]`(horizon)` —
    /// runs are pure-local, so executing them in one call instead of one
    /// slot-boundary-bounded call per slot changes nothing observable —
    /// but the loop keeps its accumulators in locals and folds them into
    /// `stats` once, and it reports the start time of the last executed
    /// operation so the fast-forward engine can account op progress at
    /// the exact slot boundary where the reference engine would have seen
    /// it (its deadlock guard counts slots without progress).
    pub fn advance_run(&mut self, horizon: Cycles, stats: &mut CoreStats) -> RunSummary {
        let mut ops = 0u64;
        let mut l1 = 0u64;
        let mut l2 = 0u64;
        let mut last_op_start = None;
        let progress = loop {
            if self.finished {
                break CoreProgress::Finished;
            }
            if !self.prb.is_empty() {
                break CoreProgress::Stalled;
            }
            if self.resume_at > horizon {
                break CoreProgress::Running;
            }
            let Some(op) = self.ops.next() else {
                self.finished = true;
                stats.finished_at = self.resume_at;
                break CoreProgress::Finished;
            };
            match self.private.access(op) {
                PrivateLookup::L1Hit => {
                    last_op_start = Some(self.resume_at);
                    self.resume_at += self.l1_latency;
                    ops += 1;
                    l1 += 1;
                }
                PrivateLookup::L2Hit => {
                    last_op_start = Some(self.resume_at);
                    self.resume_at += self.l2_latency;
                    ops += 1;
                    l2 += 1;
                }
                PrivateLookup::Miss => {
                    let ready = self.resume_at + self.l2_latency;
                    self.prb.insert(op, ready);
                    break CoreProgress::Stalled;
                }
            }
        };
        stats.ops_completed += ops;
        stats.l1_hits += l1;
        stats.l2_hits += l2;
        RunSummary {
            progress,
            last_op_start,
        }
    }

    /// Whether the PRB holds a request that is ready for the bus at
    /// `now` (it has finished its private lookup).
    pub fn request_ready(&self, now: Cycles) -> bool {
        self.prb.peek().is_some_and(|r| r.issued_at <= now)
    }

    /// Whether the PRB request targets a line for which this core still
    /// has a write-back queued — a hazard that forces the write-back to
    /// drain first regardless of arbiter policy.
    pub fn request_hazard(&self) -> bool {
        self.prb
            .peek()
            .is_some_and(|r| self.pwb.contains_line(r.op.addr.line()))
    }

    /// Completes the outstanding request: refills the private hierarchy
    /// and resumes execution at `resume` (the end of the response slot).
    ///
    /// Returns the request's issue timestamp (for latency accounting)
    /// and the clean L2 victim the refill silently dropped, if any —
    /// the engine forwards the drop to the LLC's sharer tracking when
    /// precise tracking is enabled. A dirty victim is pushed to the PWB
    /// as a capacity write-back instead.
    ///
    /// # Panics
    ///
    /// Panics if no request is outstanding.
    pub fn complete_request(
        &mut self,
        resume: Cycles,
        stats: &mut CoreStats,
    ) -> (Cycles, Option<LineAddr>) {
        let req = self.prb.take().expect("a response needs a pending request");
        let effect = self.private.refill(req.op);
        if let Some(line) = effect.dirty_writeback {
            self.pwb.push(WriteBack {
                line,
                dirty: true,
                kind: WbKind::CapacityEviction,
                enqueued_at: resume,
            });
        }
        self.resume_at = resume;
        stats.ops_completed += 1;
        (req.issued_at, effect.clean_drop)
    }

    /// Applies an LLC back-invalidation: purges the line from the private
    /// hierarchy and queues the acknowledgement write-back.
    pub fn apply_back_invalidation(&mut self, line: LineAddr, now: Cycles, stats: &mut CoreStats) {
        let out = self.private.back_invalidate(line);
        self.pwb.push(WriteBack {
            line,
            dirty: out.dirty,
            kind: WbKind::BackInvalAck,
            enqueued_at: now,
        });
        stats.back_invalidations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_bus::ArbiterPolicy;
    use predllc_model::Address;

    fn core_with(trace: Vec<MemOp>) -> CoreModel<std::vec::IntoIter<MemOp>> {
        CoreModel::new(
            CoreId::new(0),
            trace.into_iter(),
            PrivateHierarchy::paper_default(),
            SlotArbiter::new(ArbiterPolicy::WritebackFirst),
            Cycles::new(1),
            Cycles::new(10),
        )
    }

    fn read(line: u64) -> MemOp {
        MemOp::read(Address::new(line * 64))
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let mut c = core_with(vec![]);
        let mut stats = CoreStats::default();
        assert_eq!(
            c.advance_to(Cycles::ZERO, &mut stats),
            CoreProgress::Finished
        );
        assert!(c.is_finished());
        assert_eq!(stats.finished_at, Cycles::ZERO);
    }

    #[test]
    fn first_access_misses_and_parks_in_prb() {
        let mut c = core_with(vec![read(0)]);
        let mut stats = CoreStats::default();
        assert_eq!(
            c.advance_to(Cycles::ZERO, &mut stats),
            CoreProgress::Stalled
        );
        // Miss detected after the 10-cycle L2 lookup.
        assert_eq!(c.prb.peek().unwrap().issued_at, Cycles::new(10));
        assert!(!c.request_ready(Cycles::new(9)));
        assert!(c.request_ready(Cycles::new(10)));
    }

    #[test]
    fn completion_resumes_and_hits_privately() {
        let mut c = core_with(vec![read(0), read(0), read(0)]);
        let mut stats = CoreStats::default();
        c.advance_to(Cycles::ZERO, &mut stats);
        let (issued, clean_drop) = c.complete_request(Cycles::new(100), &mut stats);
        assert_eq!(issued, Cycles::new(10));
        assert_eq!(clean_drop, None);
        assert_eq!(stats.ops_completed, 1);
        // The two remaining reads are L1 hits at 1 cycle each.
        assert_eq!(
            c.advance_to(Cycles::new(200), &mut stats),
            CoreProgress::Finished
        );
        assert_eq!(stats.l1_hits, 2);
        assert_eq!(stats.finished_at, Cycles::new(102));
    }

    #[test]
    fn advance_does_not_run_past_now() {
        let mut c = core_with(vec![read(0), read(0)]);
        let mut stats = CoreStats::default();
        c.advance_to(Cycles::ZERO, &mut stats);
        c.complete_request(Cycles::new(100), &mut stats);
        // At now = 100 the core issues the op at 100; it completes at 101,
        // past the boundary, so the core reports Running (not Finished) —
        // finishing is only observed once `now` reaches the completion.
        assert_eq!(
            c.advance_to(Cycles::new(100), &mut stats),
            CoreProgress::Running,
        );
        assert_eq!(
            c.advance_to(Cycles::new(101), &mut stats),
            CoreProgress::Finished,
        );
        assert_eq!(stats.finished_at, Cycles::new(101));
    }

    #[test]
    fn back_invalidation_queues_ack_and_purges() {
        let mut c = core_with(vec![read(0), read(64)]);
        let mut stats = CoreStats::default();
        c.advance_to(Cycles::ZERO, &mut stats);
        c.complete_request(Cycles::new(50), &mut stats);
        assert!(c.private.contains(LineAddr::new(0)));
        c.apply_back_invalidation(LineAddr::new(0), Cycles::new(60), &mut stats);
        assert!(!c.private.contains(LineAddr::new(0)));
        assert_eq!(c.pwb.len(), 1);
        assert_eq!(c.pwb.peek().unwrap().kind, WbKind::BackInvalAck);
        assert_eq!(stats.back_invalidations, 1);
    }

    #[test]
    fn hazard_detected_when_request_line_has_queued_writeback() {
        let mut c = core_with(vec![read(0)]);
        let mut stats = CoreStats::default();
        c.advance_to(Cycles::ZERO, &mut stats);
        assert!(!c.request_hazard());
        c.pwb.push(WriteBack {
            line: LineAddr::new(0),
            dirty: true,
            kind: WbKind::BackInvalAck,
            enqueued_at: Cycles::ZERO,
        });
        assert!(c.request_hazard());
    }

    #[test]
    fn dirty_refill_victim_lands_in_pwb() {
        // Tiny L2 so a refill evicts a dirty line quickly.
        let mut c = CoreModel::new(
            CoreId::new(0),
            vec![
                MemOp::write(Address::new(0)),
                MemOp::read(Address::new(64)),
                MemOp::read(Address::new(128)),
            ]
            .into_iter(),
            PrivateHierarchy::new(
                predllc_model::CacheGeometry::new(1, 1, 64).unwrap(),
                predllc_model::CacheGeometry::new(1, 1, 64).unwrap(),
                predllc_model::CacheGeometry::new(1, 2, 64).unwrap(),
                predllc_cache::ReplacementKind::Lru,
            ),
            SlotArbiter::new(ArbiterPolicy::WritebackFirst),
            Cycles::new(1),
            Cycles::new(10),
        );
        let mut stats = CoreStats::default();
        c.advance_to(Cycles::ZERO, &mut stats);
        c.complete_request(Cycles::new(50), &mut stats); // write 0 (dirty)
        c.advance_to(Cycles::new(50), &mut stats);
        c.complete_request(Cycles::new(100), &mut stats); // read 64
        c.advance_to(Cycles::new(100), &mut stats);
        // Refilling line 2 evicts the dirty line 0 from the 2-way L2.
        c.complete_request(Cycles::new(150), &mut stats);
        assert_eq!(c.pwb.len(), 1);
        let wb = c.pwb.peek().unwrap();
        assert_eq!(wb.line, LineAddr::new(0));
        assert_eq!(wb.kind, WbKind::CapacityEviction);
        assert!(wb.dirty);
    }
}
