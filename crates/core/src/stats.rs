//! Simulation statistics: per-core and system-wide counters, plus the
//! request-latency records the WCL experiments are built on.

use predllc_model::{CoreId, Cycles};

use crate::histogram::LatencyHistogram;

/// Counters for one core.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CoreStats {
    /// Memory operations completed.
    pub ops_completed: u64,
    /// Hits in the private L1 (instruction or data).
    pub l1_hits: u64,
    /// Hits in the private L2.
    pub l2_hits: u64,
    /// LLC hits (request answered from LLC contents).
    pub llc_hits: u64,
    /// LLC fills (request answered after a DRAM fetch).
    pub llc_fills: u64,
    /// Back-invalidations received from the LLC.
    pub back_invalidations: u64,
    /// Write-backs transmitted on the bus (acks + capacity evictions).
    pub writebacks_sent: u64,
    /// Slots in which this core's pending request made no progress.
    pub blocked_slots: u64,
    /// Worst observed request latency (PRB entry → response).
    pub max_request_latency: Cycles,
    /// Sum of all request latencies (for averages).
    pub total_request_latency: Cycles,
    /// Number of LLC requests measured.
    pub requests: u64,
    /// Cycle at which the core finished its trace (0 if unfinished).
    pub finished_at: Cycles,
    /// The full request-latency distribution (log-bucketed; its exact
    /// maximum always equals [`CoreStats::max_request_latency`]).
    pub latencies: LatencyHistogram,
}

impl CoreStats {
    /// Records a completed LLC request's latency.
    pub fn record_latency(&mut self, latency: Cycles) {
        self.requests += 1;
        self.total_request_latency += latency;
        if latency > self.max_request_latency {
            self.max_request_latency = latency;
        }
        self.latencies.record(latency);
    }

    /// Records `n` completed LLC requests that all observed the same
    /// latency — the bulk path the engine's fast-forward mode uses for
    /// steady-state runs of identical response latencies. Equivalent to
    /// `n` calls to [`CoreStats::record_latency`].
    pub fn record_latency_n(&mut self, latency: Cycles, n: u64) {
        if n == 0 {
            return;
        }
        self.requests += n;
        self.total_request_latency += latency * n;
        if latency > self.max_request_latency {
            self.max_request_latency = latency;
        }
        self.latencies.record_n(latency, n);
    }

    /// Mean request latency, or zero if no requests were measured.
    pub fn mean_request_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_request_latency.as_u64() as f64 / self.requests as f64
        }
    }

    /// Private-hierarchy hit rate over all completed operations.
    pub fn private_hit_rate(&self) -> f64 {
        if self.ops_completed == 0 {
            0.0
        } else {
            (self.l1_hits + self.l2_hits) as f64 / self.ops_completed as f64
        }
    }
}

/// System-wide counters and the per-core breakdown.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SimStats {
    /// Per-core statistics, indexed by core.
    pub cores: Vec<CoreStats>,
    /// Total slots simulated.
    pub slots: u64,
    /// Slots in which the owner transmitted nothing.
    pub idle_slots: u64,
    /// LLC evictions triggered.
    pub evictions_triggered: u64,
    /// LLC entries freed after completing the eviction protocol.
    pub lines_freed: u64,
    /// DRAM line fetches.
    pub dram_reads: u64,
    /// DRAM line write-backs.
    pub dram_writes: u64,
    /// DRAM accesses that hit the open row (banked backends only).
    pub dram_row_hits: u64,
    /// DRAM accesses to a bank with no open row (banked backends only).
    pub dram_row_empties: u64,
    /// DRAM accesses that conflicted with a different open row (banked
    /// backends only).
    pub dram_row_conflicts: u64,
    /// DRAM accesses that waited on a busy bank (banked backends only).
    pub dram_busy_waits: u64,
    /// Worst single DRAM access latency observed.
    pub max_dram_latency: Cycles,
    /// Row conflicts per bank, indexed by global bank id (empty for the
    /// fixed-latency backend).
    pub dram_bank_conflicts: Vec<u64>,
    /// Largest sequencer queue depth observed across partitions.
    pub max_sequencer_depth: usize,
    /// Deepest any core's pending-write-back buffer ever got. The
    /// paper's Corollary 4.5 argument bounds it by the sharer count.
    pub max_pwb_depth: usize,
    /// Largest number of simultaneously tracked sets across partitions.
    pub max_sequencer_sets: usize,
}

impl SimStats {
    /// Creates zeroed stats for `n` cores.
    pub fn new(n: u16) -> Self {
        SimStats {
            cores: (0..n).map(|_| CoreStats::default()).collect(),
            ..SimStats::default()
        }
    }

    /// Statistics of one core.
    pub fn core(&self, core: CoreId) -> &CoreStats {
        &self.cores[core.as_usize()]
    }

    /// Mutable statistics of one core.
    pub fn core_mut(&mut self, core: CoreId) -> &mut CoreStats {
        &mut self.cores[core.as_usize()]
    }

    /// The worst request latency observed on any core.
    pub fn max_request_latency(&self) -> Cycles {
        self.cores
            .iter()
            .map(|c| c.max_request_latency)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// The system-wide request-latency distribution: every core's
    /// histogram merged (lossless counter addition).
    pub fn request_latencies(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for core in &self.cores {
            merged.merge(&core.latencies);
        }
        merged
    }

    /// The cycle at which the last core finished (the workload's
    /// execution time).
    pub fn makespan(&self) -> Cycles {
        self.cores
            .iter()
            .map(|c| c.finished_at)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Fraction of banked DRAM accesses that hit the open row (0 when
    /// no banked access was recorded, e.g. under the fixed-latency
    /// backend).
    pub fn dram_row_hit_rate(&self) -> f64 {
        predllc_dram::backend::row_hit_rate(
            self.dram_row_hits,
            self.dram_row_empties,
            self.dram_row_conflicts,
        )
    }

    /// Folds a memory backend's counters into the report fields.
    pub fn absorb_memory(&mut self, mem: &predllc_dram::MemStats) {
        self.dram_reads = mem.reads;
        self.dram_writes = mem.writes;
        self.dram_row_hits = mem.row_hits;
        self.dram_row_empties = mem.row_empties;
        self.dram_row_conflicts = mem.row_conflicts;
        self.dram_busy_waits = mem.busy_waits;
        self.max_dram_latency = mem.max_latency;
        self.dram_bank_conflicts = mem.per_bank_conflicts.clone();
    }

    /// Bus utilization: fraction of slots carrying a transaction.
    pub fn bus_utilization(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            (self.slots - self.idle_slots) as f64 / self.slots as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_recording_tracks_max_and_mean() {
        let mut s = CoreStats::default();
        s.record_latency(Cycles::new(100));
        s.record_latency(Cycles::new(300));
        s.record_latency(Cycles::new(200));
        assert_eq!(s.max_request_latency, Cycles::new(300));
        assert_eq!(s.requests, 3);
        assert!((s.mean_request_latency() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CoreStats::default();
        assert_eq!(s.mean_request_latency(), 0.0);
        assert_eq!(s.private_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_counts_both_private_levels() {
        let s = CoreStats {
            ops_completed: 10,
            l1_hits: 6,
            l2_hits: 2,
            ..CoreStats::default()
        };
        assert!((s.private_hit_rate() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn latency_histogram_tracks_every_record() {
        let mut s = SimStats::new(2);
        s.core_mut(CoreId::new(0)).record_latency(Cycles::new(90));
        s.core_mut(CoreId::new(0)).record_latency(Cycles::new(450));
        s.core_mut(CoreId::new(1)).record_latency(Cycles::new(140));
        let merged = s.request_latencies();
        assert_eq!(merged.count(), 3);
        // The distribution's exact max is the scalar the experiments
        // always reported.
        assert_eq!(merged.max(), s.max_request_latency());
        assert_eq!(merged.percentile(100.0), Cycles::new(450));
        // Per core, the histogram agrees with the scalar counters too.
        let c0 = s.core(CoreId::new(0));
        assert_eq!(c0.latencies.count(), c0.requests);
        assert_eq!(c0.latencies.max(), c0.max_request_latency);
        assert_eq!(c0.latencies.total(), c0.total_request_latency);
    }

    #[test]
    fn sim_stats_aggregates() {
        let mut s = SimStats::new(2);
        s.core_mut(CoreId::new(0)).record_latency(Cycles::new(10));
        s.core_mut(CoreId::new(1)).record_latency(Cycles::new(99));
        s.core_mut(CoreId::new(0)).finished_at = Cycles::new(1000);
        s.core_mut(CoreId::new(1)).finished_at = Cycles::new(2000);
        assert_eq!(s.max_request_latency(), Cycles::new(99));
        assert_eq!(s.makespan(), Cycles::new(2000));
    }

    #[test]
    fn memory_counters_fold_into_the_report() {
        let mem = predllc_dram::MemStats {
            reads: 7,
            writes: 3,
            row_hits: 4,
            row_empties: 2,
            row_conflicts: 4,
            busy_waits: 1,
            max_latency: Cycles::new(23),
            per_bank_conflicts: vec![0, 4],
        };
        let mut s = SimStats::new(1);
        s.absorb_memory(&mem);
        assert_eq!((s.dram_reads, s.dram_writes), (7, 3));
        assert_eq!(s.dram_row_conflicts, 4);
        assert_eq!(s.max_dram_latency, Cycles::new(23));
        assert_eq!(s.dram_bank_conflicts, vec![0, 4]);
        assert!((s.dram_row_hit_rate() - 0.4).abs() < 1e-9);
        // No banked accesses → rate is defined as zero.
        assert_eq!(SimStats::new(1).dram_row_hit_rate(), 0.0);
    }

    #[test]
    fn bus_utilization_fraction() {
        let s = SimStats {
            slots: 10,
            idle_slots: 4,
            ..SimStats::new(1)
        };
        assert!((s.bus_utilization() - 0.6).abs() < 1e-9);
        assert_eq!(SimStats::new(1).bus_utilization(), 0.0);
    }
}
