fn main() {
    // Simulate a connection thread (Rust spawned-thread default stack 2MiB)
    let h = std::thread::spawn(|| {
        let depth = 500_000; // 1MB body allows ~1M bytes of '['
        let doc = "[".repeat(depth) + &"]".repeat(depth);
        let r = predllc_explore::json::parse(&doc);
        println!("parsed ok? {:?}", r.is_ok());
    });
    match h.join() {
        Ok(_) => println!("thread finished"),
        Err(_) => println!("thread panicked"),
    }
}
