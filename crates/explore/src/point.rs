//! Point-granular work descriptions: the wire format a fleet
//! coordinator uses to ship one grid point to a worker and get the
//! measurements back, serialized through the in-tree [`json`] layer.
//!
//! The format is **lossless by construction**: a [`PointRequest`]
//! round-trips through the same spec-schema parsers the experiment file
//! uses, and a [`PointMeasurement`] carries only exact integers — the
//! full [`LatencyHistogram`] parts plus the raw DRAM row counters — so
//! every derived float (mean latency, row-buffer hit rate) is
//! recomputed on the receiving side with the same arithmetic the
//! in-process grid uses. That is what makes fleet results bit-identical
//! to [`run_spec`](crate::run_spec), whatever the fleet shape.
//!
//! [`measure`] is the single simulation path: the in-process grid
//! ([`run_grid_observed`](crate::run_grid_observed)) and the fleet
//! worker endpoint both call it, so there is no second implementation
//! to drift.

use std::fmt;

use predllc_core::{ConfigError, LatencyHistogram, SimError, Simulator, SystemConfig};
use predllc_dram::{BankMapping, DramTiming, MemoryConfig};
use predllc_model::Cycles;
use predllc_workload::{Workload, WorkloadSpec};

use crate::attribution::PointAttribution;
use crate::grid::GridResult;
use crate::hash::{point_fingerprint, Fingerprint};
use crate::json::{self, Json};
use crate::spec::{check_keys, parse_config, parse_workload, ConfigSpec, Partitioning, SpecError};
use crate::WorkloadEntry;

/// Why one grid point failed to simulate — positioned by the caller,
/// who knows the labels.
#[derive(Debug, Clone, PartialEq)]
pub enum PointError {
    /// The platform configuration failed to build.
    Config(ConfigError),
    /// The simulation itself failed.
    Sim(SimError),
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Config(e) => write!(f, "{e}"),
            PointError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PointError::Config(e) => Some(e),
            PointError::Sim(e) => Some(e),
        }
    }
}

/// One grid point as shippable work: the core count plus the full
/// configuration and workload descriptions, labels included.
///
/// Serializes with [`PointRequest::render`] and parses back with
/// [`PointRequest::parse`] through the exact spec-schema parsers, so a
/// round trip is identity and the [fingerprint](PointRequest::fingerprint)
/// — which ignores labels — agrees on both ends of the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRequest {
    /// Core count the platform and workload are built for.
    pub cores: u16,
    /// The configuration column.
    pub config: ConfigSpec,
    /// The workload row.
    pub workload: WorkloadEntry,
    /// Whether the point runs with latency attribution — the worker
    /// then ships the [`PointAttribution`] extension back with the
    /// measurement.
    pub attribution: bool,
}

impl PointRequest {
    /// The point's content address: [`point_fingerprint`] over the
    /// simulation inputs (labels and x-axis values excluded).
    pub fn fingerprint(&self) -> Fingerprint {
        point_fingerprint(self.cores, &self.config, &self.workload, self.attribution)
    }

    /// Renders the request as a JSON document. The `attribution` key is
    /// emitted only when the flag is on, so attribution-off requests
    /// are byte-identical to those of older peers.
    ///
    /// # Errors
    ///
    /// A message when the configuration is not expressible in the spec
    /// schema (a programmatically built [`MemoryConfig`] with custom
    /// DRAM timing or row geometry) — spec-file experiments always
    /// render.
    pub fn render(&self) -> Result<String, String> {
        let mut members = vec![
            ("cores".into(), Json::UInt(u64::from(self.cores))),
            ("config".into(), render_config(&self.config)?),
            ("workload".into(), render_workload(&self.workload)),
        ];
        if self.attribution {
            members.push(("attribution".into(), Json::Bool(true)));
        }
        Ok(Json::Object(members).render())
    }

    /// Parses a request document rendered by [`PointRequest::render`].
    ///
    /// # Errors
    ///
    /// [`SpecError`] positioned exactly like experiment-spec parsing.
    pub fn parse(input: &str) -> Result<PointRequest, SpecError> {
        let doc = json::parse(input).map_err(SpecError::Json)?;
        check_keys(
            &doc,
            &["cores", "config", "workload", "attribution"],
            "point",
        )?;
        let cores = doc
            .get("cores")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::Invalid {
                at: "point.cores".into(),
                message: "required non-negative integer missing".into(),
            })?;
        let cores = u16::try_from(cores)
            .ok()
            .filter(|&c| c > 0)
            .ok_or_else(|| SpecError::Invalid {
                at: "point.cores".into(),
                message: format!("core count {cores} out of range"),
            })?;
        let config = parse_config(
            doc.get("config").ok_or_else(|| SpecError::Invalid {
                at: "point.config".into(),
                message: "required object missing".into(),
            })?,
            "config",
        )?;
        let workload = parse_workload(
            doc.get("workload").ok_or_else(|| SpecError::Invalid {
                at: "point.workload".into(),
                message: "required object missing".into(),
            })?,
            "workload",
        )?;
        let attribution = match doc.get("attribution") {
            None => false,
            Some(v) => v.as_bool().ok_or_else(|| SpecError::Invalid {
                at: "point.attribution".into(),
                message: "must be a boolean".into(),
            })?,
        };
        Ok(PointRequest {
            cores,
            config,
            workload,
            attribution,
        })
    }
}

/// The measured outcome of one grid point, as exact integers only: the
/// serialized [`LatencyHistogram`] parts, the scalar extremes and the
/// raw DRAM row counters. Everything a [`GridResult`] derives from
/// these ships losslessly; the floats are recomputed at the receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMeasurement {
    /// The full request-latency distribution.
    pub latency: LatencyHistogram,
    /// Worst observed request latency (the scalar per-core counter).
    pub observed_wcl: u64,
    /// Execution time (makespan), cycles.
    pub execution_time: u64,
    /// DRAM row-buffer hits.
    pub row_hits: u64,
    /// DRAM row-buffer empties.
    pub row_empties: u64,
    /// DRAM row-buffer conflicts.
    pub row_conflicts: u64,
    /// The attribution extension: component totals, WCL witness and gap
    /// split, shipped as exact integers when the point ran with
    /// attribution on.
    pub attribution: Option<PointAttribution>,
}

impl PointMeasurement {
    /// Renders the measurement as a JSON document of exact integers.
    /// The `attribution` member is emitted only when present, so
    /// attribution-off measurements are byte-identical to those of
    /// older peers.
    pub fn render(&self) -> String {
        let buckets = self
            .latency
            .bucket_entries()
            .into_iter()
            .map(|(low, n)| Json::Array(vec![Json::UInt(low), Json::UInt(n)]))
            .collect();
        let mut members = vec![
            ("requests".into(), Json::UInt(self.latency.count())),
            ("total".into(), Json::UInt(self.latency.total().as_u64())),
            ("min".into(), Json::UInt(self.latency.min().as_u64())),
            ("max".into(), Json::UInt(self.latency.max().as_u64())),
            ("observed_wcl".into(), Json::UInt(self.observed_wcl)),
            ("execution_time".into(), Json::UInt(self.execution_time)),
            ("row_hits".into(), Json::UInt(self.row_hits)),
            ("row_empties".into(), Json::UInt(self.row_empties)),
            ("row_conflicts".into(), Json::UInt(self.row_conflicts)),
            ("buckets".into(), Json::Array(buckets)),
        ];
        if let Some(attr) = &self.attribution {
            members.push(("attribution".into(), attr.to_json()));
        }
        Json::Object(members).render()
    }

    /// Rebuilds a measurement from a parsed document.
    ///
    /// # Errors
    ///
    /// A message naming what is missing or inconsistent (the histogram
    /// parts must reconstruct exactly and sum to `requests`).
    pub fn from_json(doc: &Json) -> Result<PointMeasurement, String> {
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("measurement field '{key}' missing or not an integer"))
        };
        let mut entries = Vec::new();
        for (i, pair) in doc
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or("measurement field 'buckets' missing or not an array")?
            .iter()
            .enumerate()
        {
            match pair.as_array() {
                Some([low, n]) => entries.push((
                    low.as_u64()
                        .ok_or(format!("buckets[{i}] low not an integer"))?,
                    n.as_u64()
                        .ok_or(format!("buckets[{i}] count not an integer"))?,
                )),
                _ => return Err(format!("buckets[{i}] is not a [low, count] pair")),
            }
        }
        let latency = LatencyHistogram::from_parts(
            Cycles::new(field("total")?),
            Cycles::new(field("min")?),
            Cycles::new(field("max")?),
            &entries,
        )
        .ok_or("histogram parts are inconsistent")?;
        if latency.count() != field("requests")? {
            return Err("bucket counts do not sum to 'requests'".into());
        }
        let attribution = match doc.get("attribution") {
            None => None,
            Some(a) => Some(PointAttribution::from_json(a)?),
        };
        Ok(PointMeasurement {
            latency,
            observed_wcl: field("observed_wcl")?,
            execution_time: field("execution_time")?,
            row_hits: field("row_hits")?,
            row_empties: field("row_empties")?,
            row_conflicts: field("row_conflicts")?,
            attribution,
        })
    }

    /// Parses a document rendered by [`PointMeasurement::render`].
    ///
    /// # Errors
    ///
    /// Same as [`PointMeasurement::from_json`], plus JSON syntax errors.
    pub fn parse(input: &str) -> Result<PointMeasurement, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        PointMeasurement::from_json(&doc)
    }

    /// Derives the [`GridResult`] row for this measurement — the same
    /// arithmetic, applied to the same integers, as the in-process grid
    /// path, so local and remote rows are bit-identical.
    pub fn to_grid_result(
        &self,
        config: &str,
        workload: &str,
        backend: &str,
        x: u64,
        analytical_wcl: Option<u64>,
    ) -> GridResult {
        GridResult {
            config: config.to_string(),
            workload: workload.to_string(),
            backend: backend.to_string(),
            x,
            attribution: self.attribution.clone(),
            requests: self.latency.count(),
            p50: self.latency.percentile(50.0).as_u64(),
            p90: self.latency.percentile(90.0).as_u64(),
            p99: self.latency.percentile(99.0).as_u64(),
            p100: self.latency.percentile(100.0).as_u64(),
            observed_wcl: self.observed_wcl,
            mean_latency: self.latency.mean(),
            execution_time: self.execution_time,
            analytical_wcl,
            row_hit_rate: predllc_dram::backend::row_hit_rate(
                self.row_hits,
                self.row_empties,
                self.row_conflicts,
            ),
        }
    }
}

/// Simulates one grid point on a validated platform — the single
/// measurement path shared by the in-process grid and fleet workers.
///
/// # Errors
///
/// [`PointError::Config`] when the simulator rejects the platform, or
/// [`PointError::Sim`] when the run fails.
pub fn measure(
    config: &SystemConfig,
    workload: impl Workload,
) -> Result<PointMeasurement, PointError> {
    let sim = Simulator::new(config.clone()).map_err(PointError::Config)?;
    let report = sim.run(workload).map_err(PointError::Sim)?;
    Ok(PointMeasurement {
        latency: report.latency_histogram(),
        observed_wcl: report.max_request_latency().as_u64(),
        execution_time: report.execution_time().as_u64(),
        row_hits: report.stats.dram_row_hits,
        row_empties: report.stats.dram_row_empties,
        row_conflicts: report.stats.dram_row_conflicts,
        attribution: report
            .attribution()
            .map(|a| PointAttribution::from_report(config, a)),
    })
}

fn render_config(c: &ConfigSpec) -> Result<Json, String> {
    let partition = match c.partitioning {
        Partitioning::SharedAll { sets, ways, mode } => Json::Object(vec![
            ("kind".into(), Json::Str("shared".into())),
            ("sets".into(), Json::UInt(u64::from(sets))),
            ("ways".into(), Json::UInt(u64::from(ways))),
            ("mode".into(), Json::Str(mode_name(mode).into())),
        ]),
        Partitioning::PrivateEach { sets, ways } => Json::Object(vec![
            ("kind".into(), Json::Str("private".into())),
            ("sets".into(), Json::UInt(u64::from(sets))),
            ("ways".into(), Json::UInt(u64::from(ways))),
        ]),
    };
    let mut members = vec![
        ("label".into(), Json::Str(c.label.clone())),
        ("partition".into(), partition),
        ("memory".into(), render_memory(&c.memory)?),
    ];
    if let Some(owners) = &c.schedule {
        members.push((
            "schedule".into(),
            Json::Array(owners.iter().map(|&o| Json::UInt(u64::from(o))).collect()),
        ));
    }
    Ok(Json::Object(members))
}

fn mode_name(mode: predllc_core::SharingMode) -> &'static str {
    match mode {
        predllc_core::SharingMode::SetSequencer => "SS",
        predllc_core::SharingMode::BestEffort => "NSS",
    }
}

/// Renders a memory configuration back to its spec-schema object.
///
/// The schema can only express the paper-calibrated banked timing and
/// 64-line rows; anything else was built programmatically and has no
/// wire form — shipping an approximation would silently simulate a
/// different platform, so refuse instead.
fn render_memory(m: &MemoryConfig) -> Result<Json, String> {
    match m {
        MemoryConfig::FixedLatency { latency } => Ok(Json::Object(vec![
            ("kind".into(), Json::Str("fixed".into())),
            ("latency".into(), Json::UInt(latency.as_u64())),
        ])),
        MemoryConfig::Banked {
            timing,
            geometry,
            mapping,
        } => {
            if *timing != DramTiming::PAPER || geometry.row_lines() != 64 {
                return Err(
                    "memory backend uses custom DRAM timing or row geometry, which the \
                     spec schema cannot express"
                        .into(),
                );
            }
            Ok(Json::Object(vec![
                ("kind".into(), Json::Str("banked".into())),
                (
                    "banks".into(),
                    Json::UInt(u64::from(geometry.banks_per_channel())),
                ),
                (
                    "channels".into(),
                    Json::UInt(u64::from(geometry.channels())),
                ),
                (
                    "mapping".into(),
                    Json::Str(
                        match mapping {
                            BankMapping::Interleaved => "interleaved",
                            BankMapping::BankPrivate => "bank-private",
                        }
                        .into(),
                    ),
                ),
            ]))
        }
        MemoryConfig::WorstCaseOf(inner) => {
            if matches!(**inner, MemoryConfig::WorstCaseOf(_)) {
                return Err("nested worst-case memory adapters have no wire form".into());
            }
            let mut members = match render_memory(inner)? {
                Json::Object(m) => m,
                _ => unreachable!("render_memory returns objects"),
            };
            members.push(("worst_case".into(), Json::Bool(true)));
            Ok(Json::Object(members))
        }
        // `MemoryConfig` is non-exhaustive; a backend this crate does
        // not know cannot be expressed in the spec schema either.
        other => Err(format!(
            "memory backend {} has no spec-schema wire form",
            other.label()
        )),
    }
}

fn render_workload(w: &WorkloadEntry) -> Json {
    let mut members = vec![
        ("label".into(), Json::Str(w.label.clone())),
        ("x".into(), Json::UInt(w.x)),
        ("kind".into(), Json::Str(w.spec.kind().into())),
    ];
    let push_u64 = |members: &mut Vec<(String, Json)>, key: &str, v: u64| {
        members.push((key.into(), Json::UInt(v)));
    };
    match w.spec {
        WorkloadSpec::Uniform {
            range_bytes,
            ops,
            seed,
            write_fraction,
        } => {
            push_u64(&mut members, "range_bytes", range_bytes);
            push_u64(&mut members, "ops", ops as u64);
            push_u64(&mut members, "seed", seed);
            members.push(("write_fraction".into(), Json::Float(write_fraction)));
        }
        WorkloadSpec::Stride {
            range_bytes,
            stride,
            ops,
        } => {
            push_u64(&mut members, "range_bytes", range_bytes);
            push_u64(&mut members, "stride", stride);
            push_u64(&mut members, "ops", ops as u64);
        }
        WorkloadSpec::PointerChase {
            range_bytes,
            ops,
            seed,
        } => {
            push_u64(&mut members, "range_bytes", range_bytes);
            push_u64(&mut members, "ops", ops as u64);
            push_u64(&mut members, "seed", seed);
        }
        WorkloadSpec::HotCold {
            range_bytes,
            ops,
            seed,
            hot_fraction,
            hot_probability,
        } => {
            push_u64(&mut members, "range_bytes", range_bytes);
            push_u64(&mut members, "ops", ops as u64);
            push_u64(&mut members, "seed", seed);
            members.push(("hot_fraction".into(), Json::Float(hot_fraction)));
            members.push(("hot_probability".into(), Json::Float(hot_probability)));
        }
    }
    Json::Object(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    const SPEC: &str = r#"{
        "name": "point-test", "cores": 2,
        "configs": [
            {"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "NSS"}},
            {"label": "wc", "partition": {"kind": "private", "sets": 4, "ways": 2},
             "memory": {"kind": "banked", "banks": 4, "mapping": "bank-private",
                        "worst_case": true},
             "schedule": [0, 1]}
        ],
        "workloads": [
            {"kind": "uniform", "range_bytes": 2048, "ops": 100, "seed": 3,
             "write_fraction": 0.25},
            {"label": "hc", "x": 9, "kind": "hotcold", "range_bytes": 2048, "ops": 100,
             "seed": 11, "hot_fraction": 0.125, "hot_probability": 0.75},
            {"kind": "stride", "range_bytes": 2048, "stride": 128, "ops": 100},
            {"kind": "chase", "range_bytes": 2048, "ops": 100, "seed": 5}
        ]
    }"#;

    fn points() -> Vec<PointRequest> {
        let spec = ExperimentSpec::parse(SPEC).unwrap();
        spec.configs
            .iter()
            .flat_map(|c| {
                spec.workloads.iter().map(move |w| PointRequest {
                    cores: spec.cores,
                    config: c.clone(),
                    workload: w.clone(),
                    attribution: false,
                })
            })
            .collect()
    }

    #[test]
    fn requests_round_trip_identically() {
        for point in points() {
            let wire = point.render().unwrap();
            let back = PointRequest::parse(&wire).unwrap();
            assert_eq!(back, point, "round trip changed the point: {wire}");
            assert_eq!(back.fingerprint(), point.fingerprint());
            // Rendering is deterministic, so the wire form is too.
            assert_eq!(back.render().unwrap(), wire);
        }
    }

    #[test]
    fn malformed_requests_are_positioned() {
        assert!(matches!(PointRequest::parse("{"), Err(SpecError::Json(_))));
        for (doc, at) in [
            (r#"{"config":{},"workload":{}}"#, "point.cores"),
            (r#"{"cores":0,"config":{},"workload":{}}"#, "point.cores"),
            (r#"{"cores":2,"workload":{}}"#, "point.config"),
            (
                r#"{"cores":2,"config":{"partition":{"kind":"shared","sets":1,"ways":4}}}"#,
                "point.workload",
            ),
            (
                r#"{"cores":2,"config":{"partition":{"kind":"shared","sets":1,"ways":4}},
                    "workload":{"kind":"uniform","range_bytes":64,"ops":1},"extra":1}"#,
                "point",
            ),
        ] {
            match PointRequest::parse(doc).unwrap_err() {
                SpecError::Invalid { at: got, .. } => assert_eq!(got, at, "for {doc}"),
                other => panic!("expected Invalid for {doc}, got {other:?}"),
            }
        }
    }

    #[test]
    fn unrepresentable_memory_is_refused_not_approximated() {
        let mut point = points().remove(0);
        point.config.memory = MemoryConfig::Banked {
            timing: DramTiming {
                t_rcd: 1,
                t_rp: 1,
                t_cas: 1,
                t_wr: 1,
                t_bus: 1,
            },
            geometry: predllc_model::DramGeometry::PAPER,
            mapping: BankMapping::Interleaved,
        };
        assert!(point.render().unwrap_err().contains("custom DRAM timing"));
        let nested = MemoryConfig::banked().worst_case().worst_case();
        point.config.memory = nested;
        assert!(point.render().unwrap_err().contains("nested worst-case"));
    }

    #[test]
    fn measurements_round_trip_and_rederive_rows() {
        for point in points() {
            let config = point.config.build(point.cores).unwrap();
            let workload = point.workload.spec.build(point.cores);
            let measured = measure(&config, &workload).unwrap();
            let back = PointMeasurement::parse(&measured.render()).unwrap();
            assert_eq!(back, measured);
            let row = measured.to_grid_result("c", "w", &config.memory().label(), 7, None);
            let rerow = back.to_grid_result("c", "w", &config.memory().label(), 7, None);
            assert_eq!(row, rerow, "wire trip changed a derived row");
            assert_eq!(row.p100, row.observed_wcl);
            assert!(row.requests > 0);
        }
    }

    #[test]
    fn attributed_requests_and_measurements_round_trip() {
        for mut point in points() {
            point.attribution = true;
            let wire = point.render().unwrap();
            assert!(wire.contains("\"attribution\":true"));
            let back = PointRequest::parse(&wire).unwrap();
            assert_eq!(back, point);
            // The flag addresses a different cache slot than the same
            // point without it.
            let mut off = point.clone();
            off.attribution = false;
            assert_ne!(point.fingerprint(), off.fingerprint());
            // An attribution-off request never mentions the key.
            assert!(!off.render().unwrap().contains("attribution"));

            // The worker path: build with attribution, measure, ship.
            let config = point
                .config
                .build(point.cores)
                .unwrap()
                .with_attribution(true);
            let workload = point.workload.spec.build(point.cores);
            let measured = measure(&config, &workload).unwrap();
            let attr = measured.attribution.as_ref().expect("attribution was on");
            // Component totals sum exactly to the total recorded latency.
            assert_eq!(
                attr.components.total().as_u64(),
                measured.latency.total().as_u64()
            );
            let shipped = PointMeasurement::parse(&measured.render()).unwrap();
            assert_eq!(shipped, measured, "attribution wire trip lost data");
            // The derived grid row carries the attribution along.
            let row = shipped.to_grid_result("c", "w", &config.memory().label(), 1, None);
            assert_eq!(row.attribution.as_ref(), Some(attr));
        }
    }

    #[test]
    fn corrupt_measurements_are_rejected() {
        let point = points().remove(0);
        let config = point.config.build(point.cores).unwrap();
        let measured = measure(&config, point.workload.spec.build(point.cores)).unwrap();
        let wire = measured.render();
        // Drop a field, break the count, break a bucket pair.
        let no_field = wire.replace("\"observed_wcl\"", "\"observed\"");
        assert!(PointMeasurement::parse(&no_field)
            .unwrap_err()
            .contains("observed_wcl"));
        let doc = json::parse(&wire).unwrap();
        let mut members = doc.as_object().unwrap().to_vec();
        for m in &mut members {
            if m.0 == "requests" {
                m.1 = Json::UInt(1_000_000);
            }
        }
        assert!(PointMeasurement::from_json(&Json::Object(members))
            .unwrap_err()
            .contains("sum"));
        assert!(PointMeasurement::parse("nope").is_err());
        assert!(PointMeasurement::parse("{}").is_err());
    }

    #[test]
    fn measure_positions_config_failures() {
        // A platform too large to build reaches measure as a Sim/Config
        // error, not a panic.
        let spec = ExperimentSpec::parse(
            r#"{
            "name": "bad", "cores": 2,
            "configs": [{"partition": {"kind": "private", "sets": 1, "ways": 1}}],
            "workloads": [{"kind": "uniform", "range_bytes": 64, "ops": 4, "seed": 1}]
        }"#,
        )
        .unwrap();
        let config = spec.configs[0].build(spec.cores).unwrap();
        // A workload built for the wrong core count fails in the engine.
        let wrong = spec.workloads[0].spec.build(spec.cores + 1);
        assert!(matches!(
            measure(&config, &wrong).unwrap_err(),
            PointError::Sim(_)
        ));
    }
}
