//! Rendering grid and search results: CSV for plots, JSON for the
//! benchmark-artifact trajectory.
//!
//! The attribution renderers ([`render_attribution_csv`],
//! [`render_attribution_json`]) are **separate artifacts**: the classic
//! [`render_csv`] / [`render_json`] outputs never mention attribution
//! and are byte-identical whether a spec ran with it or not.

use predllc_core::Component;

use crate::grid::GridResult;
use crate::json::{render_string, Json};
use crate::search::SearchOutcome;

/// The CSV header line shared by [`render_csv`] and incremental
/// renderers (the serve layer streams `CSV_HEADER` + [`csv_row`] per
/// row, chunked, and must stay byte-identical to the one-shot render).
pub const CSV_HEADER: &str = "config,workload,backend,x,requests,p50,p90,p99,p100,mean_latency,\
                              execution_time,analytical_wcl,row_hit_rate\n";

/// One grid row as a CSV line (trailing newline included).
pub fn csv_row(r: &GridResult) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{:.3},{},{},{:.3}\n",
        r.config,
        r.workload,
        r.backend,
        r.x,
        r.requests,
        r.p50,
        r.p90,
        r.p99,
        r.p100,
        r.mean_latency,
        r.execution_time,
        r.analytical_wcl.map_or(String::new(), |v| v.to_string()),
        r.row_hit_rate,
    )
}

/// Renders grid rows as CSV, percentiles included.
pub fn render_csv(rows: &[GridResult]) -> String {
    let mut out = String::from(CSV_HEADER);
    for r in rows {
        out.push_str(&csv_row(r));
    }
    out
}

/// Renders the attribution columns of an attributed grid as CSV: one
/// line per row that carries attribution (an attribution-off run yields
/// just the header), with the exact per-component cycle totals, the
/// witness latency and the signed analytical gap.
pub fn render_attribution_csv(rows: &[GridResult]) -> String {
    let mut out = String::from("config,workload");
    for c in Component::ALL {
        out.push(',');
        out.push_str(c.label());
    }
    out.push_str(",total,observed_wcl,analytical_wcl,gap\n");
    for r in rows {
        let Some(attr) = &r.attribution else { continue };
        out.push_str(&format!("{},{}", r.config, r.workload));
        for (_, cycles) in attr.components.iter() {
            out.push_str(&format!(",{}", cycles.as_u64()));
        }
        let (analytical, gap) = match &attr.gap {
            Some(g) => (g.analytical_wcl.to_string(), g.gap().to_string()),
            None => (String::new(), String::new()),
        };
        out.push_str(&format!(
            ",{},{},{},{}\n",
            attr.components.total().as_u64(),
            r.observed_wcl,
            analytical,
            gap,
        ));
    }
    out
}

/// Renders the attribution of an attributed grid as a JSON document —
/// the `BENCH_explore_attribution.json` artifact: per point, the
/// component totals, the full replayable witness and the gap split
/// (exactly the [`PointAttribution`](crate::PointAttribution) wire
/// form).
pub fn render_attribution_json(name: &str, rows: &[GridResult]) -> String {
    let points = rows
        .iter()
        .filter_map(|r| {
            r.attribution.as_ref().map(|attr| {
                Json::Object(vec![
                    ("config".into(), Json::Str(r.config.clone())),
                    ("workload".into(), Json::Str(r.workload.clone())),
                    ("attribution".into(), attr.to_json()),
                ])
            })
        })
        .collect();
    Json::Object(vec![
        ("name".into(), Json::Str(name.to_string())),
        ("points".into(), Json::Array(points)),
    ])
    .render()
}

/// Renders a search outcome as a human-readable table: the winner, then
/// every candidate up to and including it (the ones it had to beat),
/// with an explicit count of the costlier candidates elided.
pub fn render_search(outcome: &SearchOutcome) -> String {
    let mut out = String::new();
    match &outcome.winner {
        Some(w) => out.push_str(&format!(
            "minimal schedulable configuration: {} ({} LLC lines)\n",
            w.label, w.lines_used
        )),
        None => out.push_str("no candidate configuration is schedulable\n"),
    }
    out.push_str(&format!(
        "{:>14} {:>6} {:>7} {:>12}\n",
        "candidate", "lines", "placed", "schedulable"
    ));
    // Up to the winner, every candidate matters (it was rejected on the
    // way); past it the table is noise, so elide with a count.
    let shown = match &outcome.winner {
        Some(w) => outcome
            .evaluated
            .iter()
            .position(|v| v == w)
            .map_or(outcome.evaluated.len(), |i| i + 1),
        None => outcome.evaluated.len(),
    };
    for v in &outcome.evaluated[..shown] {
        out.push_str(&format!(
            "{:>14} {:>6} {:>7} {:>12}\n",
            v.label,
            v.lines_used,
            if v.placed { "yes" } else { "no" },
            if v.schedulable { "yes" } else { "no" }
        ));
    }
    if shown < outcome.evaluated.len() {
        out.push_str(&format!(
            "... and {} costlier candidate(s) not shown\n",
            outcome.evaluated.len() - shown
        ));
    }
    out
}

/// The opening of the JSON report document, up to and including the
/// `"grid":[` bracket. Incremental renderers emit `json_head` +
/// comma-joined [`json_row`]s + [`json_tail`]; [`render_json`] is the
/// same parts concatenated, so both spellings are byte-identical.
pub fn json_head(name: &str, threads: usize, wall_ms: Option<u64>) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"name\":{},", render_string(name)));
    out.push_str(&format!("\"threads\":{threads},"));
    if let Some(ms) = wall_ms {
        out.push_str(&format!("\"wall_ms\":{ms},"));
    }
    out.push_str("\"grid\":[");
    out
}

/// One grid row as a JSON object (no surrounding separators).
pub fn json_row(r: &GridResult) -> String {
    format!(
        "{{\"config\":{},\"workload\":{},\"backend\":{},\"x\":{},\"requests\":{},\
         \"p50\":{},\"p90\":{},\"p99\":{},\"p100\":{},\"mean_latency\":{:.3},\
         \"execution_time\":{},\"analytical_wcl\":{},\"row_hit_rate\":{:.3}}}",
        render_string(&r.config),
        render_string(&r.workload),
        render_string(&r.backend),
        r.x,
        r.requests,
        r.p50,
        r.p90,
        r.p99,
        r.p100,
        r.mean_latency,
        r.execution_time,
        r.analytical_wcl
            .map_or("null".to_string(), |v| v.to_string()),
        r.row_hit_rate,
    )
}

/// The closing of the JSON report document: the grid `]`, the optional
/// `"search"` block, and the final `}`.
pub fn json_tail(search: Option<&SearchOutcome>) -> String {
    let mut out = String::from("]");
    if let Some(outcome) = search {
        out.push_str(",\"search\":{");
        match &outcome.winner {
            Some(w) => out.push_str(&format!(
                "\"winner\":{{\"label\":{},\"lines_used\":{}}},",
                render_string(&w.label),
                w.lines_used
            )),
            None => out.push_str("\"winner\":null,"),
        }
        out.push_str(&format!(
            "\"evaluated\":{},\"schedulable\":{}}}",
            outcome.evaluated.len(),
            outcome.schedulable_count()
        ));
    }
    out.push('}');
    out
}

/// Renders the whole experiment — grid rows, optional search outcome,
/// run metadata — as a JSON document (the `BENCH_explore.json`
/// artifact format).
pub fn render_json(
    name: &str,
    threads: usize,
    wall_ms: Option<u64>,
    rows: &[GridResult],
    search: Option<&SearchOutcome>,
) -> String {
    let mut out = json_head(name, threads, wall_ms);
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_row(r));
    }
    out.push_str(&json_tail(search));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::search::{Candidate, CandidateVerdict};
    use crate::spec::Arrangement;
    use predllc_core::SharingMode;

    fn row() -> GridResult {
        GridResult {
            config: "SS(1,4)".into(),
            workload: "u/2KiB".into(),
            backend: "fixed(30)".into(),
            x: 2048,
            requests: 100,
            p50: 150,
            p90: 300,
            p99: 400,
            p100: 450,
            observed_wcl: 450,
            mean_latency: 180.5,
            execution_time: 12_345,
            analytical_wcl: Some(5_000),
            row_hit_rate: 0.0,
            attribution: None,
        }
    }

    fn outcome() -> SearchOutcome {
        let verdict = CandidateVerdict {
            candidate: Candidate {
                arrangement: Arrangement::Shared(SharingMode::SetSequencer),
                sets: 1,
                ways: 2,
            },
            label: "SS(1,2,4)".into(),
            lines_used: 2,
            placed: true,
            schedulable: true,
            response_times: vec![Some(1_000)],
        };
        SearchOutcome {
            winner: Some(verdict.clone()),
            evaluated: vec![verdict],
        }
    }

    #[test]
    fn csv_has_a_line_per_row_and_all_percentiles() {
        let csv = render_csv(&[row()]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("config,workload,backend,"));
        assert!(csv.contains("SS(1,4),u/2KiB,fixed(30),2048,100,150,300,400,450,180.500"));
        // A row with no analytical bound leaves the column empty.
        let mut no_bound = row();
        no_bound.analytical_wcl = None;
        assert!(render_csv(&[no_bound]).contains(",12345,,0.000"));
    }

    #[test]
    fn attribution_artifacts_cover_only_attributed_rows() {
        use crate::executor::Executor;
        use crate::grid::run_grid;
        use crate::spec::ExperimentSpec;

        // Rows without attribution yield header-only artifacts.
        let empty = render_attribution_csv(&[row()]);
        assert_eq!(empty.lines().count(), 1);
        assert!(empty.starts_with(
            "config,workload,arbitration,writeback,llc_wait,bus,dram_row_hit,\
             dram_row_empty,dram_row_conflict,dram_flat,total,observed_wcl,\
             analytical_wcl,gap"
        ));

        // A real attributed run fills both artifacts, losslessly.
        let spec = ExperimentSpec::parse(
            r#"{"name":"a","cores":2,"attribution":true,
                "configs":[{"partition":{"kind":"shared","sets":1,"ways":4,"mode":"SS"}}],
                "workloads":[{"kind":"stride","range_bytes":2048,"stride":64,"ops":100}]}"#,
        )
        .unwrap();
        let rows = run_grid(&spec, &Executor::new(1)).unwrap();
        let csv = render_attribution_csv(&rows);
        assert_eq!(csv.lines().count(), 2);
        let attr = rows[0].attribution.as_ref().unwrap();
        assert!(csv.contains(&format!(",{},", attr.components.total().as_u64())));
        let gap = attr.gap.as_ref().unwrap();
        assert!(csv.trim_end().ends_with(&format!(
            ",{},{},{}",
            rows[0].observed_wcl,
            gap.analytical_wcl,
            gap.gap()
        )));

        let doc = json::parse(&render_attribution_json("a", &rows)).unwrap();
        let points = doc.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 1);
        let back =
            crate::attribution::PointAttribution::from_json(points[0].get("attribution").unwrap())
                .unwrap();
        assert_eq!(&back, attr);
    }

    #[test]
    fn json_report_is_parseable_and_complete() {
        let text = render_json("demo", 4, Some(12), &[row()], Some(&outcome()));
        let doc = json::parse(&text).expect("report must be valid json");
        assert_eq!(doc.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(doc.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("wall_ms").unwrap().as_u64(), Some(12));
        let grid = doc.get("grid").unwrap().as_array().unwrap();
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].get("p100").unwrap().as_u64(), Some(450));
        assert_eq!(grid[0].get("analytical_wcl").unwrap().as_u64(), Some(5_000));
        let search = doc.get("search").unwrap();
        assert_eq!(
            search.get("winner").unwrap().get("label").unwrap().as_str(),
            Some("SS(1,2,4)")
        );
        assert_eq!(search.get("schedulable").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn incremental_parts_recompose_to_the_one_shot_renders() {
        let rows = vec![row(), row()];
        let mut csv = String::from(CSV_HEADER);
        for r in &rows {
            csv.push_str(&csv_row(r));
        }
        assert_eq!(csv, render_csv(&rows));

        let mut json = json_head("demo", 4, Some(12));
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&json_row(r));
        }
        json.push_str(&json_tail(Some(&outcome())));
        assert_eq!(
            json,
            render_json("demo", 4, Some(12), &rows, Some(&outcome()))
        );
    }

    #[test]
    fn json_report_handles_absent_blocks() {
        let text = render_json("x", 1, None, &[], None);
        let doc = json::parse(&text).unwrap();
        assert!(doc.get("wall_ms").is_none());
        assert!(doc.get("search").is_none());
        assert_eq!(doc.get("grid").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn search_table_reports_the_winner() {
        let text = render_search(&outcome());
        assert!(text.contains("minimal schedulable configuration: SS(1,2,4)"));
        assert!(text.contains("SS(1,2,4)") && text.contains("yes"));
        let none = SearchOutcome {
            winner: None,
            evaluated: vec![],
        };
        assert!(render_search(&none).contains("no candidate"));
    }
}
