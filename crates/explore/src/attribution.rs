//! The exact-integer attribution extension of the point wire format:
//! per-component cycle totals, the [`WclWitness`] and the analytical
//! gap decomposition of one grid point, serialized losslessly through
//! the in-tree [`json`](crate::json) layer.
//!
//! Like the rest of [`PointMeasurement`](crate::PointMeasurement), the
//! format carries **only exact integers** — component totals, witness
//! cycles and gap budgets are `u64`s; the signed per-component slack is
//! recomputed from its two unsigned halves at the receiver — so a fleet
//! worker's attribution is bit-identical to the in-process one after a
//! wire round trip. The extension is strictly additive: a measurement
//! without attribution renders byte-identically to one taken before
//! this module existed.

use predllc_core::analysis::{GapComponent, GapEntry, MemoryAwareWcl, WclGapReport};
use predllc_core::{AttributionReport, Component, ComponentSet, SystemConfig, WclWitness};
use predllc_model::{BankId, CoreId, Cycles, LineAddr};

use crate::json::Json;

/// One grid point's attribution summary: the summed per-component
/// decomposition across every completed request, the run's WCL witness
/// and (when the analysis covers the configuration) the analytical gap
/// split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointAttribution {
    /// Per-component cycles summed over every completed request; the
    /// total is exactly the sum of all recorded request latencies.
    pub components: ComponentSet,
    /// The request that achieved the point's observed WCL (`None` when
    /// the run completed no request).
    pub witness: Option<WclWitness>,
    /// The analytical-vs-observed gap decomposition (`None` without a
    /// witness or a sound analytical bound).
    pub gap: Option<PointGap>,
}

/// The wire form of a [`WclGapReport`]: the bound, the observed WCL and
/// the per-component analytical/observed cycles in
/// [`GapComponent::ALL`] order (slack is derived, not shipped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointGap {
    /// The applicable analytical WCL bound.
    pub analytical_wcl: u64,
    /// The observed WCL (the witness's latency).
    pub observed_wcl: u64,
    /// Per-component entries in [`GapComponent::ALL`] order.
    pub entries: Vec<GapEntry>,
}

impl PointGap {
    fn from_report(report: &WclGapReport) -> PointGap {
        PointGap {
            analytical_wcl: report.analytical_wcl.as_u64(),
            observed_wcl: report.observed_wcl.as_u64(),
            entries: report.entries().to_vec(),
        }
    }

    /// `analytical_wcl − observed_wcl`, signed; the entries' slacks sum
    /// to it exactly.
    pub fn gap(&self) -> i64 {
        self.analytical_wcl as i64 - self.observed_wcl as i64
    }
}

impl PointAttribution {
    /// Summarizes a run's [`AttributionReport`] for the wire, deriving
    /// the gap split from `config`'s analytical bound when one exists.
    pub fn from_report(config: &SystemConfig, report: &AttributionReport) -> PointAttribution {
        let witness = report.witness().cloned();
        let gap = witness.as_ref().and_then(|w| {
            MemoryAwareWcl::from_config(config)
                .ok()
                .and_then(|m| m.bound())
                .map(|bound| PointGap::from_report(&WclGapReport::against(config, bound, w)))
        });
        PointAttribution {
            components: report.total_components(),
            witness,
            gap,
        }
    }

    /// Renders the attribution as a JSON value of exact integers.
    pub fn to_json(&self) -> Json {
        let mut members = vec![("components".into(), components_json(&self.components))];
        if let Some(w) = &self.witness {
            members.push(("witness".into(), witness_json(w)));
        }
        if let Some(g) = &self.gap {
            members.push(("gap".into(), gap_json(g)));
        }
        Json::Object(members)
    }

    /// Rebuilds an attribution from a value rendered by
    /// [`PointAttribution::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<PointAttribution, String> {
        let components = parse_components(
            doc.get("components")
                .ok_or("attribution field 'components' missing")?,
            "components",
        )?;
        let witness = match doc.get("witness") {
            None => None,
            Some(w) => Some(parse_witness(w)?),
        };
        let gap = match doc.get("gap") {
            None => None,
            Some(g) => Some(parse_gap(g)?),
        };
        Ok(PointAttribution {
            components,
            witness,
            gap,
        })
    }
}

fn components_json(set: &ComponentSet) -> Json {
    Json::Array(set.as_parts().iter().map(|&v| Json::UInt(v)).collect())
}

fn parse_components(value: &Json, at: &str) -> Result<ComponentSet, String> {
    let items = value
        .as_array()
        .ok_or_else(|| format!("attribution field '{at}' is not an array"))?;
    if items.len() != Component::ALL.len() {
        return Err(format!(
            "attribution field '{at}' has {} entries, expected {}",
            items.len(),
            Component::ALL.len()
        ));
    }
    let mut parts = [0u64; Component::ALL.len()];
    for (i, item) in items.iter().enumerate() {
        parts[i] = item
            .as_u64()
            .ok_or_else(|| format!("attribution field '{at}[{i}]' is not an integer"))?;
    }
    Ok(ComponentSet::from_parts(parts))
}

fn witness_json(w: &WclWitness) -> Json {
    let interferers = w
        .interferers
        .iter()
        .map(|s| {
            let mut members = vec![("core".into(), Json::UInt(u64::from(s.core.index())))];
            if let Some(line) = s.pending_line {
                members.push(("pending_line".into(), Json::UInt(line.as_u64())));
            }
            if let Some(since) = s.pending_since {
                members.push(("pending_since".into(), Json::UInt(since.as_u64())));
            }
            members.push(("pwb_depth".into(), Json::UInt(s.pwb_depth as u64)));
            members.push(("writebacks_sent".into(), Json::UInt(s.writebacks_sent)));
            members.push(("blocked_slots".into(), Json::UInt(s.blocked_slots)));
            Json::Object(members)
        })
        .collect();
    let open_rows = w
        .open_rows
        .iter()
        .map(|&(bank, row)| Json::Array(vec![Json::UInt(u64::from(bank.index())), Json::UInt(row)]))
        .collect();
    Json::Object(vec![
        ("core".into(), Json::UInt(u64::from(w.core.index()))),
        ("line".into(), Json::UInt(w.line.as_u64())),
        ("issued_at".into(), Json::UInt(w.issued_at.as_u64())),
        ("completed_at".into(), Json::UInt(w.completed_at.as_u64())),
        ("latency".into(), Json::UInt(w.latency.as_u64())),
        ("slot".into(), Json::UInt(w.slot)),
        ("components".into(), components_json(&w.components)),
        ("interferers".into(), Json::Array(interferers)),
        ("open_rows".into(), Json::Array(open_rows)),
    ])
}

fn field_u64(doc: &Json, key: &str, at: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{at} field '{key}' missing or not an integer"))
}

fn core_id(value: u64, at: &str) -> Result<CoreId, String> {
    u16::try_from(value)
        .map(CoreId::new)
        .map_err(|_| format!("{at} core id {value} out of range"))
}

fn parse_witness(doc: &Json) -> Result<WclWitness, String> {
    let mut interferers = Vec::new();
    for (i, s) in doc
        .get("interferers")
        .and_then(Json::as_array)
        .ok_or("witness field 'interferers' missing or not an array")?
        .iter()
        .enumerate()
    {
        let at = format!("witness interferer[{i}]");
        interferers.push(predllc_core::attribution::InterfererSnapshot {
            core: core_id(field_u64(s, "core", &at)?, &at)?,
            pending_line: s
                .get("pending_line")
                .map(Json::as_u64)
                .map(|v| {
                    v.map(LineAddr::new)
                        .ok_or_else(|| format!("{at} pending_line not an integer"))
                })
                .transpose()?,
            pending_since: s
                .get("pending_since")
                .map(Json::as_u64)
                .map(|v| {
                    v.map(Cycles::new)
                        .ok_or_else(|| format!("{at} pending_since not an integer"))
                })
                .transpose()?,
            pwb_depth: field_u64(s, "pwb_depth", &at)? as usize,
            writebacks_sent: field_u64(s, "writebacks_sent", &at)?,
            blocked_slots: field_u64(s, "blocked_slots", &at)?,
        });
    }
    let mut open_rows = Vec::new();
    for (i, pair) in doc
        .get("open_rows")
        .and_then(Json::as_array)
        .ok_or("witness field 'open_rows' missing or not an array")?
        .iter()
        .enumerate()
    {
        match pair.as_array() {
            Some([bank, row]) => {
                let bank = bank
                    .as_u64()
                    .and_then(|b| u32::try_from(b).ok())
                    .ok_or(format!("witness open_rows[{i}] bank not a valid integer"))?;
                open_rows.push((
                    BankId::new(bank),
                    row.as_u64()
                        .ok_or(format!("witness open_rows[{i}] row not an integer"))?,
                ));
            }
            _ => return Err(format!("witness open_rows[{i}] is not a [bank, row] pair")),
        }
    }
    Ok(WclWitness {
        core: core_id(field_u64(doc, "core", "witness")?, "witness")?,
        line: LineAddr::new(field_u64(doc, "line", "witness")?),
        issued_at: Cycles::new(field_u64(doc, "issued_at", "witness")?),
        completed_at: Cycles::new(field_u64(doc, "completed_at", "witness")?),
        latency: Cycles::new(field_u64(doc, "latency", "witness")?),
        slot: field_u64(doc, "slot", "witness")?,
        components: parse_components(
            doc.get("components")
                .ok_or("witness field 'components' missing")?,
            "witness components",
        )?,
        interferers,
        open_rows,
    })
}

fn gap_json(g: &PointGap) -> Json {
    Json::Object(vec![
        ("analytical_wcl".into(), Json::UInt(g.analytical_wcl)),
        ("observed_wcl".into(), Json::UInt(g.observed_wcl)),
        (
            "analytical".into(),
            Json::Array(
                g.entries
                    .iter()
                    .map(|e| Json::UInt(e.analytical.as_u64()))
                    .collect(),
            ),
        ),
        (
            "observed".into(),
            Json::Array(
                g.entries
                    .iter()
                    .map(|e| Json::UInt(e.observed.as_u64()))
                    .collect(),
            ),
        ),
    ])
}

fn parse_gap(doc: &Json) -> Result<PointGap, String> {
    let axis = |key: &str| -> Result<Vec<u64>, String> {
        let items = doc
            .get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("gap field '{key}' missing or not an array"))?;
        if items.len() != GapComponent::ALL.len() {
            return Err(format!(
                "gap field '{key}' has {} entries, expected {}",
                items.len(),
                GapComponent::ALL.len()
            ));
        }
        items
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_u64()
                    .ok_or_else(|| format!("gap field '{key}[{i}]' is not an integer"))
            })
            .collect()
    };
    let analytical = axis("analytical")?;
    let observed = axis("observed")?;
    let entries = GapComponent::ALL
        .iter()
        .enumerate()
        .map(|(i, &component)| GapEntry {
            component,
            analytical: Cycles::new(analytical[i]),
            observed: Cycles::new(observed[i]),
            slack: analytical[i] as i64 - observed[i] as i64,
        })
        .collect();
    Ok(PointGap {
        analytical_wcl: field_u64(doc, "analytical_wcl", "gap")?,
        observed_wcl: field_u64(doc, "observed_wcl", "gap")?,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use predllc_core::{SharingMode, Simulator, SystemConfig};
    use predllc_model::{Address, MemOp};

    fn attributed_point() -> (SystemConfig, PointAttribution) {
        let cfg = SystemConfig::shared_partition(1, 16, 4, SharingMode::SetSequencer)
            .unwrap()
            .with_attribution(true);
        let traces: Vec<Vec<MemOp>> = (0..4)
            .map(|c| {
                vec![
                    MemOp::read(Address::new(c * 64)),
                    MemOp::read(Address::new(4096 + c * 64)),
                ]
            })
            .collect();
        let report = Simulator::new(cfg.clone()).unwrap().run(traces).unwrap();
        let attr = PointAttribution::from_report(&cfg, report.attribution().unwrap());
        (cfg, attr)
    }

    #[test]
    fn attribution_round_trips_exactly() {
        let (_, attr) = attributed_point();
        assert!(attr.witness.is_some());
        assert!(attr.gap.is_some());
        let wire = attr.to_json().render();
        let back = PointAttribution::from_json(&json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, attr, "round trip changed the attribution: {wire}");
        // Rendering is deterministic, so the wire form is too.
        assert_eq!(back.to_json().render(), wire);
    }

    #[test]
    fn gap_slacks_survive_the_unsigned_wire() {
        let (_, attr) = attributed_point();
        let gap = attr.gap.as_ref().unwrap();
        let slack: i64 = gap.entries.iter().map(|e| e.slack).sum();
        assert_eq!(slack, gap.gap());
        let wire = attr.to_json().render();
        let back = PointAttribution::from_json(&json::parse(&wire).unwrap()).unwrap();
        let back_gap = back.gap.unwrap();
        assert_eq!(back_gap.entries, gap.entries);
        assert_eq!(back_gap.gap(), gap.gap());
    }

    #[test]
    fn corrupt_attribution_is_rejected() {
        let (_, attr) = attributed_point();
        let wire = attr.to_json().render();
        for (needle, replacement, expect) in [
            ("\"components\"", "\"komponents\"", "components"),
            ("\"latency\"", "\"latencia\"", "latency"),
            ("\"analytical_wcl\"", "\"wcl\"", "analytical_wcl"),
        ] {
            let broken = wire.replacen(needle, replacement, 1);
            let err = PointAttribution::from_json(&json::parse(&broken).unwrap()).unwrap_err();
            assert!(err.contains(expect), "{err} should mention {expect}");
        }
        // A truncated component vector is inconsistent, not resized.
        let doc = json::parse(&wire).unwrap();
        let mut members = doc.as_object().unwrap().to_vec();
        for m in &mut members {
            if m.0 == "components" {
                m.1 = Json::Array(vec![Json::UInt(1)]);
            }
        }
        assert!(PointAttribution::from_json(&Json::Object(members))
            .unwrap_err()
            .contains("entries"));
    }
}
