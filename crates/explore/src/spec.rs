//! The experiment-spec layer: a JSON description of a design-space grid
//! — partition geometries, sharing modes, TDM schedules, memory
//! backends, workloads — plus an optional taskset and search block.
//!
//! The schema (all `memory`, `schedule`, `tasks` and `search` blocks are
//! optional):
//!
//! ```json
//! {
//!   "name": "demo",
//!   "cores": 4,
//!   "configs": [
//!     {"label": "SS(1,16,4)",
//!      "partition": {"kind": "shared", "sets": 1, "ways": 16, "mode": "SS"},
//!      "memory": {"kind": "banked", "banks": 8, "mapping": "bank-private"},
//!      "schedule": [0, 1, 2, 3]},
//!     {"label": "P(8,2)",
//!      "partition": {"kind": "private", "sets": 8, "ways": 2}}
//!   ],
//!   "workloads": [
//!     {"label": "u/8KiB", "kind": "uniform", "range_bytes": 8192,
//!      "ops": 2000, "seed": 7, "write_fraction": 0.2},
//!     {"kind": "stride", "range_bytes": 8192, "stride": 64, "ops": 2000}
//!   ],
//!   "tasks": [
//!     {"name": "control", "core": 0, "period": 1000000,
//!      "deadline": 1000000, "compute": 100000, "llc_requests": 500}
//!   ],
//!   "search": {"arrangements": ["private", "SS", "NSS"],
//!              "max_sets": 32, "max_ways": 16}
//! }
//! ```

use std::fmt;

use predllc_bus::TdmSchedule;
use predllc_core::analysis::TaskParams;
use predllc_core::{ConfigError, PartitionSpec, SharingMode, SystemConfig, SystemConfigBuilder};
use predllc_dram::{BankMapping, DramTiming, MemoryConfig};
use predllc_model::{CacheGeometry, CoreId, Cycles, DramGeometry};
use predllc_workload::WorkloadSpec;

use crate::json::{self, Json, JsonError};

/// A spec-file failure: either malformed JSON or a well-formed document
/// that violates the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document does not match the spec schema.
    Invalid {
        /// Where in the document (a `configs[2].partition`-style path).
        at: String,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "spec is not valid json: {e}"),
            SpecError::Invalid { at, message } => write!(f, "invalid spec at {at}: {message}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Json(e) => Some(e),
            SpecError::Invalid { .. } => None,
        }
    }
}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

fn invalid(at: impl Into<String>, message: impl Into<String>) -> SpecError {
    SpecError::Invalid {
        at: at.into(),
        message: message.into(),
    }
}

/// How the LLC is carved for one grid configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioning {
    /// One `sets × ways` partition shared by every core.
    SharedAll {
        /// Sets in the partition.
        sets: u32,
        /// Ways per set.
        ways: u32,
        /// How intra-partition contention is resolved.
        mode: SharingMode,
    },
    /// A private `sets × ways` partition per core.
    PrivateEach {
        /// Sets per private partition.
        sets: u32,
        /// Ways per private partition.
        ways: u32,
    },
}

/// One configuration column of the grid: a partitioning, a memory
/// backend and an optional TDM schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpec {
    /// Report label.
    pub label: String,
    /// The LLC carve.
    pub partitioning: Partitioning,
    /// The memory backend (default: the seed's fixed 30-cycle DRAM).
    pub memory: MemoryConfig,
    /// Slot owners of a custom TDM schedule (default: 1S-TDM).
    pub schedule: Option<Vec<u16>>,
}

impl ConfigSpec {
    /// Builds the validated platform configuration for `cores` cores.
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] the builder raises (capacity, schedule,
    /// slot-budget, …).
    pub fn build(&self, cores: u16) -> Result<SystemConfig, ConfigError> {
        let partitions = match self.partitioning {
            Partitioning::SharedAll { sets, ways, mode } => vec![PartitionSpec::shared(
                sets,
                ways,
                CoreId::first(cores).collect(),
                mode,
            )],
            Partitioning::PrivateEach { sets, ways } => CoreId::first(cores)
                .map(|c| PartitionSpec::private(sets, ways, c))
                .collect(),
        };
        let mut builder = SystemConfigBuilder::new(cores)
            .partitions(partitions)
            .memory(self.memory.clone());
        if let Some(owners) = &self.schedule {
            let slots = owners.iter().map(|&i| CoreId::new(i)).collect();
            builder = builder.schedule(TdmSchedule::new(slots)?);
        }
        builder.build()
    }
}

/// One workload row of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEntry {
    /// Report label.
    pub label: String,
    /// Numeric x-axis value (defaults to the spec's `range_bytes`).
    pub x: u64,
    /// The buildable generator description.
    pub spec: WorkloadSpec,
}

/// A partition arrangement the search may propose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrangement {
    /// A private partition per core.
    Private,
    /// One partition shared by every core under `SharingMode`.
    Shared(SharingMode),
}

impl fmt::Display for Arrangement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arrangement::Private => f.write_str("P"),
            Arrangement::Shared(mode) => write!(f, "{mode}"),
        }
    }
}

/// The schedulability-driven search block: which arrangements to try
/// and how large a partition may grow.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// Arrangements to consider, in preference order for ties.
    pub arrangements: Vec<Arrangement>,
    /// Largest set count considered (candidates are the powers of two
    /// up to this).
    pub max_sets: u32,
    /// Largest way count considered (candidates are `1..=max_ways`).
    pub max_ways: u32,
    /// The memory backend candidates run with.
    pub memory: MemoryConfig,
    /// The physical LLC candidates must pack into.
    pub physical: CacheGeometry,
}

/// A fully parsed experiment specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (report header).
    pub name: String,
    /// Core count every configuration and workload is built for.
    pub cores: u16,
    /// The configuration axis.
    pub configs: Vec<ConfigSpec>,
    /// The workload axis.
    pub workloads: Vec<WorkloadEntry>,
    /// The taskset the search block analyzes (may be empty).
    pub tasks: Vec<TaskParams>,
    /// The optional partition search.
    pub search: Option<SearchSpec>,
    /// Whether every grid point runs with latency attribution (exact
    /// per-component latency decomposition, WCL witness, gap report).
    /// Attribution only *reads* the simulation — every existing output
    /// is bit-identical with it on or off.
    pub attribution: bool,
}

impl ExperimentSpec {
    /// Parses a spec document.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the failing path for schema violations, or
    /// the byte offset for JSON syntax errors.
    pub fn parse(input: &str) -> Result<ExperimentSpec, SpecError> {
        let doc = json::parse(input)?;
        check_keys(
            &doc,
            &[
                "name",
                "cores",
                "configs",
                "workloads",
                "tasks",
                "search",
                "attribution",
            ],
            "spec",
        )?;
        let name = require_str(&doc, "name", "spec")?.to_string();
        let cores = require_u64(&doc, "cores", "spec")?;
        if cores == 0 || cores > u64::from(u16::MAX) {
            return Err(invalid("cores", format!("core count {cores} out of range")));
        }
        let cores = cores as u16;

        let configs_json = doc
            .get("configs")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("configs", "required array missing"))?;
        let mut configs = Vec::with_capacity(configs_json.len());
        for (i, c) in configs_json.iter().enumerate() {
            configs.push(parse_config(c, &format!("configs[{i}]"))?);
        }

        let workloads_json = doc
            .get("workloads")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("workloads", "required array missing"))?;
        let mut workloads = Vec::with_capacity(workloads_json.len());
        for (i, w) in workloads_json.iter().enumerate() {
            workloads.push(parse_workload(w, &format!("workloads[{i}]"))?);
        }
        if configs.is_empty() && workloads.is_empty() {
            return Err(invalid("spec", "no configurations or workloads declared"));
        }

        let mut tasks = Vec::new();
        if let Some(list) = doc.get("tasks") {
            let list = list
                .as_array()
                .ok_or_else(|| invalid("tasks", "must be an array"))?;
            for (i, t) in list.iter().enumerate() {
                tasks.push(parse_task(t, cores, &format!("tasks[{i}]"))?);
            }
        }

        let search = match doc.get("search") {
            None => None,
            Some(s) => Some(parse_search(s, "search")?),
        };
        if search.is_some() && tasks.is_empty() {
            return Err(invalid(
                "search",
                "a search block needs a non-empty taskset",
            ));
        }

        let attribution = match doc.get("attribution") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| invalid("attribution", "must be a boolean"))?,
        };

        Ok(ExperimentSpec {
            name,
            cores,
            configs,
            workloads,
            tasks,
            search,
            attribution,
        })
    }

    /// Number of grid points (`configs × workloads`).
    pub fn grid_len(&self) -> usize {
        self.configs.len() * self.workloads.len()
    }
}

/// Rejects objects with keys outside `allowed` — a typo'd field must
/// not silently fall back to a default and change which experiment
/// runs.
pub(crate) fn check_keys(doc: &Json, allowed: &[&str], at: &str) -> Result<(), SpecError> {
    let members = doc
        .as_object()
        .ok_or_else(|| invalid(at, "must be an object"))?;
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(invalid(
                at,
                format!("unknown field '{key}' (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn require<'a>(doc: &'a Json, key: &str, at: &str) -> Result<&'a Json, SpecError> {
    doc.get(key)
        .ok_or_else(|| invalid(format!("{at}.{key}"), "required field missing"))
}

fn require_str<'a>(doc: &'a Json, key: &str, at: &str) -> Result<&'a str, SpecError> {
    require(doc, key, at)?
        .as_str()
        .ok_or_else(|| invalid(format!("{at}.{key}"), "must be a string"))
}

fn require_u64(doc: &Json, key: &str, at: &str) -> Result<u64, SpecError> {
    require(doc, key, at)?
        .as_u64()
        .ok_or_else(|| invalid(format!("{at}.{key}"), "must be a non-negative integer"))
}

fn optional_u64(doc: &Json, key: &str, at: &str, default: u64) -> Result<u64, SpecError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| invalid(format!("{at}.{key}"), "must be a non-negative integer")),
    }
}

fn optional_f64(doc: &Json, key: &str, at: &str, default: f64) -> Result<f64, SpecError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| invalid(format!("{at}.{key}"), "must be a number")),
    }
}

fn geometry_u32(value: u64, key: &str, at: &str) -> Result<u32, SpecError> {
    u32::try_from(value).map_err(|_| invalid(format!("{at}.{key}"), "value too large"))
}

fn parse_mode(text: &str, at: &str) -> Result<SharingMode, SpecError> {
    match text {
        "SS" => Ok(SharingMode::SetSequencer),
        "NSS" => Ok(SharingMode::BestEffort),
        other => Err(invalid(
            at,
            format!("unknown sharing mode '{other}' (SS or NSS)"),
        )),
    }
}

pub(crate) fn parse_config(doc: &Json, at: &str) -> Result<ConfigSpec, SpecError> {
    check_keys(doc, &["label", "partition", "memory", "schedule"], at)?;
    let partition = require(doc, "partition", at)?;
    let p_at = format!("{at}.partition");
    check_keys(partition, &["kind", "sets", "ways", "mode"], &p_at)?;
    let sets = geometry_u32(require_u64(partition, "sets", &p_at)?, "sets", &p_at)?;
    let ways = geometry_u32(require_u64(partition, "ways", &p_at)?, "ways", &p_at)?;
    let partitioning = match require_str(partition, "kind", &p_at)? {
        "shared" => Partitioning::SharedAll {
            sets,
            ways,
            mode: parse_mode(
                partition.get("mode").and_then(Json::as_str).unwrap_or("SS"),
                &format!("{p_at}.mode"),
            )?,
        },
        "private" => Partitioning::PrivateEach { sets, ways },
        other => {
            return Err(invalid(
                format!("{p_at}.kind"),
                format!("unknown partition kind '{other}' (shared or private)"),
            ))
        }
    };
    let memory = match doc.get("memory") {
        None => MemoryConfig::default(),
        Some(m) => parse_memory(m, &format!("{at}.memory"))?,
    };
    let schedule = match doc.get("schedule") {
        None => None,
        Some(s) => {
            let slots = s
                .as_array()
                .ok_or_else(|| invalid(format!("{at}.schedule"), "must be an array of core ids"))?;
            let mut owners = Vec::with_capacity(slots.len());
            for slot in slots {
                let v = slot.as_u64().ok_or_else(|| {
                    invalid(format!("{at}.schedule"), "slot owners must be integers")
                })?;
                owners.push(u16::try_from(v).map_err(|_| {
                    invalid(
                        format!("{at}.schedule"),
                        format!("core id {v} out of range"),
                    )
                })?);
            }
            Some(owners)
        }
    };
    let label = match doc.get("label") {
        Some(l) => l
            .as_str()
            .ok_or_else(|| invalid(format!("{at}.label"), "must be a string"))?
            .to_string(),
        None => match &partitioning {
            Partitioning::SharedAll { sets, ways, mode } => format!("{mode}({sets},{ways})"),
            Partitioning::PrivateEach { sets, ways } => format!("P({sets},{ways})"),
        },
    };
    Ok(ConfigSpec {
        label,
        partitioning,
        memory,
        schedule,
    })
}

fn parse_memory(doc: &Json, at: &str) -> Result<MemoryConfig, SpecError> {
    check_keys(
        doc,
        &[
            "kind",
            "latency",
            "banks",
            "channels",
            "mapping",
            "worst_case",
        ],
        at,
    )?;
    let config = match require_str(doc, "kind", at)? {
        "fixed" => MemoryConfig::fixed(Cycles::new(optional_u64(doc, "latency", at, 30)?)),
        "banked" => {
            let banks = geometry_u32(optional_u64(doc, "banks", at, 8)?, "banks", at)?;
            let channels = geometry_u32(optional_u64(doc, "channels", at, 1)?, "channels", at)?;
            let mapping = match doc
                .get("mapping")
                .and_then(Json::as_str)
                .unwrap_or("interleaved")
            {
                "interleaved" => BankMapping::Interleaved,
                "bank-private" => BankMapping::BankPrivate,
                other => {
                    return Err(invalid(
                        format!("{at}.mapping"),
                        format!("unknown mapping '{other}' (interleaved or bank-private)"),
                    ))
                }
            };
            MemoryConfig::Banked {
                timing: DramTiming::PAPER,
                geometry: DramGeometry::new(channels, banks, 64)
                    .map_err(|e| invalid(at, e.to_string()))?,
                mapping,
            }
        }
        other => {
            return Err(invalid(
                format!("{at}.kind"),
                format!("unknown memory kind '{other}' (fixed or banked)"),
            ))
        }
    };
    Ok(
        if doc.get("worst_case").and_then(Json::as_bool) == Some(true) {
            config.worst_case()
        } else {
            config
        },
    )
}

pub(crate) fn parse_workload(doc: &Json, at: &str) -> Result<WorkloadEntry, SpecError> {
    check_keys(
        doc,
        &[
            "label",
            "x",
            "kind",
            "range_bytes",
            "ops",
            "seed",
            "write_fraction",
            "stride",
            "hot_fraction",
            "hot_probability",
        ],
        at,
    )?;
    let kind = require_str(doc, "kind", at)?;
    let range_bytes = require_u64(doc, "range_bytes", at)?;
    let ops = require_u64(doc, "ops", at)? as usize;
    let seed = optional_u64(doc, "seed", at, 0xD0E5_11C5)?;
    let spec = match kind {
        "uniform" => WorkloadSpec::Uniform {
            range_bytes,
            ops,
            seed,
            write_fraction: optional_f64(doc, "write_fraction", at, 0.0)?,
        },
        "stride" => WorkloadSpec::Stride {
            range_bytes,
            stride: optional_u64(doc, "stride", at, 64)?,
            ops,
        },
        "chase" => WorkloadSpec::PointerChase {
            range_bytes,
            ops,
            seed,
        },
        "hotcold" => WorkloadSpec::HotCold {
            range_bytes,
            ops,
            seed,
            hot_fraction: optional_f64(doc, "hot_fraction", at, 0.1)?,
            hot_probability: optional_f64(doc, "hot_probability", at, 0.9)?,
        },
        other => {
            return Err(invalid(
                format!("{at}.kind"),
                format!("unknown workload kind '{other}' (uniform, stride, chase, hotcold)"),
            ))
        }
    };
    spec.validate().map_err(|m| invalid(at, m))?;
    let label = match doc.get("label") {
        Some(l) => l
            .as_str()
            .ok_or_else(|| invalid(format!("{at}.label"), "must be a string"))?
            .to_string(),
        None => format!("{}/{}B", spec.kind(), range_bytes),
    };
    let x = optional_u64(doc, "x", at, range_bytes)?;
    Ok(WorkloadEntry { label, x, spec })
}

fn parse_task(doc: &Json, cores: u16, at: &str) -> Result<TaskParams, SpecError> {
    check_keys(
        doc,
        &[
            "name",
            "core",
            "period",
            "deadline",
            "compute",
            "llc_requests",
        ],
        at,
    )?;
    let core = require_u64(doc, "core", at)?;
    if core >= u64::from(cores) {
        return Err(invalid(
            format!("{at}.core"),
            format!("core {core} out of range for a {cores}-core system"),
        ));
    }
    let period = require_u64(doc, "period", at)?;
    let deadline = optional_u64(doc, "deadline", at, period)?;
    Ok(TaskParams {
        name: require_str(doc, "name", at)?.to_string(),
        core: CoreId::new(core as u16),
        period: Cycles::new(period),
        deadline: Cycles::new(deadline),
        compute: Cycles::new(require_u64(doc, "compute", at)?),
        llc_requests: require_u64(doc, "llc_requests", at)?,
    })
}

fn parse_search(doc: &Json, at: &str) -> Result<SearchSpec, SpecError> {
    check_keys(
        doc,
        &["arrangements", "max_sets", "max_ways", "memory", "physical"],
        at,
    )?;
    let arrangements_json = doc
        .get("arrangements")
        .and_then(Json::as_array)
        .ok_or_else(|| invalid(format!("{at}.arrangements"), "required array missing"))?;
    let mut arrangements = Vec::with_capacity(arrangements_json.len());
    for a in arrangements_json {
        let text = a
            .as_str()
            .ok_or_else(|| invalid(format!("{at}.arrangements"), "entries must be strings"))?;
        arrangements.push(match text {
            "private" => Arrangement::Private,
            mode => Arrangement::Shared(parse_mode(mode, &format!("{at}.arrangements"))?),
        });
    }
    if arrangements.is_empty() {
        return Err(invalid(format!("{at}.arrangements"), "must not be empty"));
    }
    let max_sets = geometry_u32(require_u64(doc, "max_sets", at)?, "max_sets", at)?;
    let max_ways = geometry_u32(require_u64(doc, "max_ways", at)?, "max_ways", at)?;
    if max_sets == 0 || max_ways == 0 {
        return Err(invalid(at, "max_sets and max_ways must be non-zero"));
    }
    let memory = match doc.get("memory") {
        None => MemoryConfig::default(),
        Some(m) => parse_memory(m, &format!("{at}.memory"))?,
    };
    let physical = match doc.get("physical") {
        None => CacheGeometry::PAPER_L3,
        Some(p) => {
            let p_at = format!("{at}.physical");
            check_keys(p, &["sets", "ways"], &p_at)?;
            CacheGeometry::new(
                geometry_u32(require_u64(p, "sets", &p_at)?, "sets", &p_at)?,
                geometry_u32(require_u64(p, "ways", &p_at)?, "ways", &p_at)?,
                64,
            )
            .map_err(|e| invalid(p_at, e.to_string()))?
        }
    };
    Ok(SearchSpec {
        arrangements,
        max_sets,
        max_ways,
        memory,
        physical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"{
        "name": "demo",
        "cores": 4,
        "configs": [
            {"label": "SS(1,16,4)",
             "partition": {"kind": "shared", "sets": 1, "ways": 16, "mode": "SS"}},
            {"partition": {"kind": "private", "sets": 8, "ways": 2},
             "memory": {"kind": "banked", "banks": 8, "mapping": "bank-private"},
             "schedule": [0, 1, 2, 3]}
        ],
        "workloads": [
            {"kind": "uniform", "range_bytes": 8192, "ops": 200, "seed": 7,
             "write_fraction": 0.2},
            {"label": "walk", "kind": "stride", "range_bytes": 4096, "ops": 100}
        ],
        "tasks": [
            {"name": "control", "core": 0, "period": 1000000,
             "compute": 100000, "llc_requests": 500}
        ],
        "search": {"arrangements": ["private", "SS"], "max_sets": 8, "max_ways": 8}
    }"#;

    #[test]
    fn parses_the_full_schema() {
        let spec = ExperimentSpec::parse(FULL).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.cores, 4);
        assert_eq!(spec.grid_len(), 4);
        // Default labels derive from the content.
        assert_eq!(spec.configs[1].label, "P(8,2)");
        assert_eq!(spec.workloads[0].label, "uniform/8192B");
        assert_eq!(spec.workloads[0].x, 8192);
        assert_eq!(spec.workloads[1].label, "walk");
        // Deadline defaults to the period.
        assert_eq!(spec.tasks[0].deadline, spec.tasks[0].period);
        let search = spec.search.unwrap();
        assert_eq!(search.arrangements.len(), 2);
        assert_eq!(search.physical, CacheGeometry::PAPER_L3);
        assert_eq!(search.memory, MemoryConfig::default());
    }

    #[test]
    fn attribution_flag_parses_and_defaults_off() {
        assert!(!ExperimentSpec::parse(FULL).unwrap().attribution);
        let on = FULL.replacen(
            "\"name\": \"demo\",",
            "\"name\": \"demo\", \"attribution\": true,",
            1,
        );
        assert!(ExperimentSpec::parse(&on).unwrap().attribution);
        // Non-boolean values are rejected with a positioned error.
        let bad = r#"{"name":"x","cores":2,"configs":[],
            "workloads":[{"kind":"uniform","range_bytes":64,"ops":1}],
            "attribution":1}"#;
        match ExperimentSpec::parse(bad).unwrap_err() {
            SpecError::Invalid { at, .. } => assert_eq!(at, "attribution"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn configs_build_real_platforms() {
        let spec = ExperimentSpec::parse(FULL).unwrap();
        let shared = spec.configs[0].build(4).unwrap();
        assert_eq!(shared.partitions().len(), 1);
        assert_eq!(shared.memory(), &MemoryConfig::default());
        let private = spec.configs[1].build(4).unwrap();
        assert_eq!(private.partitions().len(), 4);
        assert_eq!(private.memory(), &MemoryConfig::bank_private());
        assert_eq!(private.schedule().period(), 4);
    }

    #[test]
    fn schema_violations_name_their_path() {
        for (doc, path) in [
            (r#"{"cores": 2}"#, "spec.name"),
            (
                r#"{"name": "x", "cores": 0, "configs": [], "workloads": []}"#,
                "cores",
            ),
            (
                r#"{"name":"x","cores":2,"configs":[{"partition":{"kind":"lattice","sets":1,"ways":1}}],"workloads":[]}"#,
                "configs[0].partition.kind",
            ),
            (
                r#"{"name":"x","cores":2,"configs":[],"workloads":[{"kind":"uniform","range_bytes":8,"ops":1}]}"#,
                "workloads[0]",
            ),
            (
                r#"{"name":"x","cores":2,"configs":[],"workloads":[{"kind":"uniform","range_bytes":64,"ops":1}],"tasks":[{"name":"t","core":9,"period":1,"compute":1,"llc_requests":0}]}"#,
                "tasks[0].core",
            ),
            (
                r#"{"name":"x","cores":2,"configs":[],"workloads":[{"kind":"uniform","range_bytes":64,"ops":1}],"search":{"arrangements":["SS"],"max_sets":1,"max_ways":1}}"#,
                "search",
            ),
        ] {
            match ExperimentSpec::parse(doc).unwrap_err() {
                SpecError::Invalid { at, .. } => assert_eq!(at, path, "for {doc}"),
                other => panic!("expected Invalid for {doc}, got {other:?}"),
            }
        }
        assert!(matches!(
            ExperimentSpec::parse("{").unwrap_err(),
            SpecError::Json(_)
        ));
    }

    #[test]
    fn unknown_fields_are_rejected_not_defaulted() {
        // A typo'd key must not silently run a different experiment.
        for (doc, path) in [
            (
                r#"{"name":"x","cores":2,"configz":[],"configs":[],"workloads":[{"kind":"uniform","range_bytes":64,"ops":1}]}"#,
                "spec",
            ),
            (
                r#"{"name":"x","cores":2,"workloads":[],"configs":[{"partition":{"kind":"private","sets":1,"ways":1},"memori":{"kind":"banked"}}]}"#,
                "configs[0]",
            ),
            (
                r#"{"name":"x","cores":2,"workloads":[],"configs":[{"partition":{"kind":"private","sets":1,"ways":1},"memory":{"kind":"banked","bank":4}}]}"#,
                "configs[0].memory",
            ),
            (
                r#"{"name":"x","cores":2,"configs":[],"workloads":[{"kind":"uniform","range_bytes":64,"ops":1,"sead":3}]}"#,
                "workloads[0]",
            ),
        ] {
            match ExperimentSpec::parse(doc).unwrap_err() {
                SpecError::Invalid { at, message } => {
                    assert_eq!(at, path, "for {doc}");
                    assert!(message.contains("unknown field"), "{message}");
                }
                other => panic!("expected Invalid for {doc}, got {other:?}"),
            }
        }
    }

    #[test]
    fn memory_blocks_cover_all_backends() {
        let parse = |body: &str| parse_memory(&json::parse(body).unwrap(), "m").unwrap();
        assert_eq!(
            parse(r#"{"kind":"fixed","latency":25}"#),
            MemoryConfig::fixed(Cycles::new(25))
        );
        assert_eq!(parse(r#"{"kind":"banked"}"#), MemoryConfig::banked());
        assert_eq!(
            parse(r#"{"kind":"banked","worst_case":true}"#),
            MemoryConfig::banked().worst_case()
        );
    }

    #[test]
    fn errors_display_helpfully() {
        let err = ExperimentSpec::parse(r#"{"name":1}"#).unwrap_err();
        assert!(err.to_string().contains("spec.name"));
        let jerr = ExperimentSpec::parse("nope").unwrap_err();
        assert!(jerr.to_string().contains("json"));
    }
}
