//! Content-addressed hashing for experiment specs and grid points.
//!
//! Deterministic simulation makes results perfectly memoizable — the
//! same spec never needs to be simulated twice — but memoization needs a
//! stable identity. This module provides it without external
//! dependencies (the build is network-isolated, like the in-tree JSON
//! codec):
//!
//! * [`Fnv1a`] — the classic 64-bit FNV-1a hasher, streamed byte by
//!   byte, with a seedable basis so independent passes decorrelate.
//! * [`Fingerprint`] — a 128-bit content address assembled from two
//!   differently-seeded FNV-1a passes; collision odds on realistic
//!   working sets (thousands of specs) are negligible where a single
//!   64-bit pass would be marginal.
//! * [`canonical_fingerprint`] — the fingerprint of a parsed JSON
//!   document with object keys **sorted**, so two spec files that differ
//!   only in key order (or whitespace, which parsing already erases)
//!   address the same cached result.
//! * [`point_fingerprint`] — the fingerprint of one grid point's
//!   simulation inputs (platform + workload, labels excluded), the key
//!   `run_grid` dedups identical points on.

use crate::json::Json;
use crate::spec::{ConfigSpec, Partitioning, WorkloadEntry};
use predllc_core::SharingMode;
use predllc_dram::{BankMapping, MemoryConfig};
use predllc_workload::WorkloadSpec;

/// The 64-bit FNV-1a offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use predllc_explore::hash::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"hello");
/// // The classic FNV-1a test vector.
/// assert_eq!(h.finish(), 0xa430d84680aabd0b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher at the standard offset basis.
    pub const fn new() -> Self {
        Fnv1a {
            state: OFFSET_BASIS,
        }
    }

    /// A hasher whose basis is perturbed by `seed`, for independent
    /// passes over the same data.
    pub const fn with_seed(seed: u64) -> Self {
        // Folding the seed through one multiply decorrelates the basis
        // even for small seeds.
        Fnv1a {
            state: (OFFSET_BASIS ^ seed).wrapping_mul(PRIME),
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string (the prefix keeps adjacent
    /// strings from colliding with their concatenation).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

/// A 128-bit content address: two independently-seeded FNV-1a passes
/// over the same canonical byte stream.
///
/// Renders as (and parses from) 32 lowercase hex characters — the
/// experiment IDs the service hands out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// Assembles a fingerprint from its two halves.
    pub const fn from_halves(hi: u64, lo: u64) -> Self {
        Fingerprint { hi, lo }
    }

    /// The 32-character lowercase hex form.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the 32-character hex form back into a fingerprint.
    pub fn parse_hex(text: &str) -> Option<Fingerprint> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(Fingerprint {
            hi: u64::from_str_radix(&text[..16], 16).ok()?,
            lo: u64::from_str_radix(&text[16..], 16).ok()?,
        })
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Hashes a canonical byte-stream description of `value` into both
/// passes.
struct Passes {
    a: Fnv1a,
    b: Fnv1a,
}

impl Passes {
    fn new() -> Self {
        Passes {
            a: Fnv1a::new(),
            b: Fnv1a::with_seed(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn u64(&mut self, v: u64) {
        self.a.write_u64(v);
        self.b.write_u64(v);
    }

    fn str(&mut self, s: &str) {
        self.a.write_str(s);
        self.b.write_str(s);
    }

    fn finish(self) -> Fingerprint {
        Fingerprint::from_halves(self.a.finish(), self.b.finish())
    }
}

// Type tags keep values of different types from colliding (`0` vs
// `false` vs `""`).
const TAG_NULL: u64 = 0;
const TAG_BOOL: u64 = 1;
const TAG_UINT: u64 = 2;
const TAG_FLOAT: u64 = 3;
const TAG_STR: u64 = 4;
const TAG_ARRAY: u64 = 5;
const TAG_OBJECT: u64 = 6;

fn hash_json(p: &mut Passes, value: &Json) {
    match value {
        Json::Null => p.u64(TAG_NULL),
        Json::Bool(b) => {
            p.u64(TAG_BOOL);
            p.u64(u64::from(*b));
        }
        Json::UInt(v) => {
            p.u64(TAG_UINT);
            p.u64(*v);
        }
        Json::Float(v) => {
            p.u64(TAG_FLOAT);
            // -0.0 and 0.0 compare equal; hash them equal too.
            let v = if *v == 0.0 { 0.0 } else { *v };
            p.u64(v.to_bits());
        }
        Json::Str(s) => {
            p.u64(TAG_STR);
            p.str(s);
        }
        Json::Array(items) => {
            p.u64(TAG_ARRAY);
            p.u64(items.len() as u64);
            for item in items {
                hash_json(p, item);
            }
        }
        Json::Object(members) => {
            p.u64(TAG_OBJECT);
            p.u64(members.len() as u64);
            // Key order is presentation, not content: sort. The parser
            // rejects duplicate keys, so the sort is a permutation.
            let mut sorted: Vec<&(String, Json)> = members.iter().collect();
            sorted.sort_by(|x, y| x.0.cmp(&y.0));
            for (key, val) in sorted {
                p.str(key);
                hash_json(p, val);
            }
        }
    }
}

/// The content address of a parsed JSON document, insensitive to object
/// key order (and to the formatting that parsing already erases).
///
/// # Examples
///
/// ```
/// use predllc_explore::hash::canonical_fingerprint;
/// use predllc_explore::json;
///
/// let a = json::parse(r#"{"cores": 2, "name": "x"}"#).unwrap();
/// let b = json::parse(r#"{ "name":"x", "cores":2 }"#).unwrap();
/// assert_eq!(canonical_fingerprint(&a), canonical_fingerprint(&b));
/// ```
pub fn canonical_fingerprint(doc: &Json) -> Fingerprint {
    let mut p = Passes::new();
    hash_json(&mut p, doc);
    p.finish()
}

fn hash_memory(p: &mut Passes, memory: &MemoryConfig) {
    match memory {
        MemoryConfig::FixedLatency { latency } => {
            p.u64(0);
            p.u64(latency.as_u64());
        }
        MemoryConfig::Banked {
            timing,
            geometry,
            mapping,
        } => {
            p.u64(1);
            p.u64(timing.t_rcd);
            p.u64(timing.t_rp);
            p.u64(timing.t_cas);
            p.u64(timing.t_wr);
            p.u64(timing.t_bus);
            p.u64(u64::from(geometry.channels()));
            p.u64(u64::from(geometry.banks_per_channel()));
            p.u64(u64::from(geometry.row_lines()));
            p.u64(match mapping {
                BankMapping::Interleaved => 0,
                BankMapping::BankPrivate => 1,
            });
        }
        MemoryConfig::WorstCaseOf(inner) => {
            p.u64(2);
            hash_memory(p, inner);
        }
        // `MemoryConfig` is non_exhaustive; an unknown future variant
        // must not silently collide with an existing one.
        other => {
            p.u64(u64::MAX);
            p.str(&format!("{other:?}"));
        }
    }
}

fn hash_workload(p: &mut Passes, spec: &WorkloadSpec) {
    match spec {
        WorkloadSpec::Uniform {
            range_bytes,
            ops,
            seed,
            write_fraction,
        } => {
            p.u64(0);
            p.u64(*range_bytes);
            p.u64(*ops as u64);
            p.u64(*seed);
            p.u64(write_fraction.to_bits());
        }
        WorkloadSpec::Stride {
            range_bytes,
            stride,
            ops,
        } => {
            p.u64(1);
            p.u64(*range_bytes);
            p.u64(*stride);
            p.u64(*ops as u64);
        }
        WorkloadSpec::PointerChase {
            range_bytes,
            ops,
            seed,
        } => {
            p.u64(2);
            p.u64(*range_bytes);
            p.u64(*ops as u64);
            p.u64(*seed);
        }
        WorkloadSpec::HotCold {
            range_bytes,
            ops,
            seed,
            hot_fraction,
            hot_probability,
        } => {
            p.u64(3);
            p.u64(*range_bytes);
            p.u64(*ops as u64);
            p.u64(*seed);
            p.u64(hot_fraction.to_bits());
            p.u64(hot_probability.to_bits());
        }
    }
}

/// The fingerprint of one grid point's **simulation inputs**: core
/// count, partitioning, memory backend, TDM schedule and workload
/// description. Report labels and x-axis values are presentation and do
/// not participate, so two differently-labelled but physically identical
/// points share a fingerprint — exactly the points `run_grid` simulates
/// once.
///
/// `attribution` participates only when **on** (the byte stream of an
/// attribution-off point is unchanged from before the flag existed):
/// attribution never changes the simulation, but an attribution-on
/// point's measurement carries extra data, so the two must not share a
/// cache slot in a fleet coordinator's measurement cache.
pub fn point_fingerprint(
    cores: u16,
    config: &ConfigSpec,
    workload: &WorkloadEntry,
    attribution: bool,
) -> Fingerprint {
    let mut p = Passes::new();
    if attribution {
        p.str("attribution");
    }
    p.u64(u64::from(cores));
    match &config.partitioning {
        Partitioning::SharedAll { sets, ways, mode } => {
            p.u64(0);
            p.u64(u64::from(*sets));
            p.u64(u64::from(*ways));
            p.u64(match mode {
                SharingMode::SetSequencer => 0,
                SharingMode::BestEffort => 1,
            });
        }
        Partitioning::PrivateEach { sets, ways } => {
            p.u64(1);
            p.u64(u64::from(*sets));
            p.u64(u64::from(*ways));
        }
    }
    hash_memory(&mut p, &config.memory);
    match &config.schedule {
        None => p.u64(0),
        Some(owners) => {
            p.u64(1);
            p.u64(owners.len() as u64);
            for &owner in owners {
                p.u64(u64::from(owner));
            }
        }
    }
    hash_workload(&mut p, &workload.spec);
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::spec::ExperimentSpec;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        for (input, want) in [
            (&b""[..], 0xcbf2_9ce4_8422_2325u64),
            (&b"a"[..], 0xaf63_dc4c_8601_ec8c),
            (&b"foobar"[..], 0x85944171f73967e8),
        ] {
            let mut h = Fnv1a::new();
            h.write(input);
            assert_eq!(h.finish(), want, "for {input:?}");
        }
        // Seeded passes diverge from the unseeded one.
        let mut s = Fnv1a::with_seed(1);
        s.write(b"foobar");
        assert_ne!(s.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprints_render_and_parse_hex() {
        let fp = Fingerprint::from_halves(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        let hex = fp.to_hex();
        assert_eq!(hex, "0123456789abcdeffedcba9876543210");
        assert_eq!(Fingerprint::parse_hex(&hex), Some(fp));
        assert_eq!(hex, fp.to_string());
        assert_eq!(Fingerprint::parse_hex("xyz"), None);
        assert_eq!(Fingerprint::parse_hex(&hex[..31]), None);
    }

    #[test]
    fn key_order_is_canonicalized_but_values_are_not() {
        let a = json::parse(r#"{"x": 1, "y": [true, null], "z": {"a": 1, "b": 2}}"#).unwrap();
        let b = json::parse(r#"{"z": {"b": 2, "a": 1}, "y": [true, null], "x": 1}"#).unwrap();
        assert_eq!(canonical_fingerprint(&a), canonical_fingerprint(&b));
        // Array order IS content.
        let c = json::parse(r#"{"x": 1, "y": [null, true], "z": {"a": 1, "b": 2}}"#).unwrap();
        assert_ne!(canonical_fingerprint(&a), canonical_fingerprint(&c));
    }

    #[test]
    fn near_miss_documents_do_not_collide() {
        let base = json::parse(r#"{"ops": 100, "seed": 7}"#).unwrap();
        for other in [
            r#"{"ops": 100, "seed": 8}"#,
            r#"{"ops": 101, "seed": 7}"#,
            r#"{"ops": "100", "seed": 7}"#,
            r#"{"ops": 100.0, "seed": 7}"#,
            r#"{"ops": 100, "seed": 7, "extra": null}"#,
            r#"{"ops": [100], "seed": 7}"#,
        ] {
            let doc = json::parse(other).unwrap();
            assert_ne!(
                canonical_fingerprint(&base),
                canonical_fingerprint(&doc),
                "collision with {other}"
            );
        }
        // 0 / false / "" / null / [] / {} are all distinct.
        let zeros: Vec<Fingerprint> = ["0", "false", "\"\"", "null", "[]", "{}"]
            .iter()
            .map(|t| canonical_fingerprint(&json::parse(t).unwrap()))
            .collect();
        for i in 0..zeros.len() {
            for j in i + 1..zeros.len() {
                assert_ne!(zeros[i], zeros[j]);
            }
        }
    }

    const SPEC: &str = r#"{
        "name": "fp", "cores": 2,
        "configs": [
            {"label": "A", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
            {"label": "B", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
            {"partition": {"kind": "private", "sets": 4, "ways": 2},
             "memory": {"kind": "banked", "banks": 8}, "schedule": [0, 1]}
        ],
        "workloads": [
            {"kind": "uniform", "range_bytes": 2048, "ops": 50, "seed": 3},
            {"label": "twin", "x": 99, "kind": "uniform", "range_bytes": 2048, "ops": 50, "seed": 3}
        ]
    }"#;

    #[test]
    fn point_fingerprints_ignore_labels_but_not_physics() {
        let spec = ExperimentSpec::parse(SPEC).unwrap();
        // Same partitioning, different labels → same fingerprint.
        let a0 = point_fingerprint(spec.cores, &spec.configs[0], &spec.workloads[0], false);
        let b0 = point_fingerprint(spec.cores, &spec.configs[1], &spec.workloads[0], false);
        assert_eq!(a0, b0);
        // Same workload spec, different label and x → same fingerprint.
        let a1 = point_fingerprint(spec.cores, &spec.configs[0], &spec.workloads[1], false);
        assert_eq!(a0, a1);
        // A physically different configuration diverges.
        let c0 = point_fingerprint(spec.cores, &spec.configs[2], &spec.workloads[0], false);
        assert_ne!(a0, c0);
        // Core count participates.
        assert_ne!(
            a0,
            point_fingerprint(4, &spec.configs[0], &spec.workloads[0], false)
        );
        // Attribution-on points address a different cache slot (their
        // measurements carry extra data).
        assert_ne!(
            a0,
            point_fingerprint(spec.cores, &spec.configs[0], &spec.workloads[0], true)
        );
    }
}
