//! Schedulability-driven partition search: walk the `sets × ways`
//! design space and find the cheapest LLC carve under which a taskset
//! is schedulable.
//!
//! This mechanizes the paper's closing argument — that designers should
//! "judiciously share partitions with a subset of cores and isolate
//! others" based on each task's requirements. A candidate is an
//! [`Arrangement`] (private per core, or shared under SS/NSS) at one
//! `sets × ways` geometry. Each candidate must
//!
//! 1. **place**: build a valid [`SystemConfig`] and pack rectangularly
//!    into the physical LLC ([`predllc_core::placement::pack`]), and
//! 2. **schedule**: pass memory-aware response-time analysis
//!    ([`predllc_core::analysis::TaskSetAnalysis`]) for the given
//!    taskset.
//!
//! Candidates are evaluated in parallel on the [`Executor`] (analysis
//! only — no simulation), and the winner is the minimal schedulable
//! candidate under a deterministic order: fewest LLC lines used, then
//! fewest ways, then fewest sets, then declared arrangement order. The
//! full verdict list is returned too, so reports can show *why* smaller
//! carves lose.

use predllc_core::analysis::TaskSetAnalysis;
use predllc_core::placement::pack;
use predllc_core::{ConfigError, PartitionSpec, SystemConfig, SystemConfigBuilder};
use predllc_model::CoreId;

use crate::executor::Executor;
use crate::spec::{Arrangement, SearchSpec};
use crate::ExploreError;

/// One point of the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The partition arrangement.
    pub arrangement: Arrangement,
    /// Sets per partition.
    pub sets: u32,
    /// Ways per partition.
    pub ways: u32,
}

impl Candidate {
    /// The paper-notation label for `cores` cores (e.g. `SS(4,2,4)` or
    /// `P(4,2)x4`).
    pub fn label(&self, cores: u16) -> String {
        match self.arrangement {
            Arrangement::Private => format!("P({},{})x{cores}", self.sets, self.ways),
            Arrangement::Shared(mode) => {
                format!("{mode}({},{},{cores})", self.sets, self.ways)
            }
        }
    }

    /// Total LLC lines the candidate consumes — the cost being
    /// minimized.
    pub fn lines_used(&self, cores: u16) -> u64 {
        let per_partition = u64::from(self.sets) * u64::from(self.ways);
        match self.arrangement {
            Arrangement::Private => per_partition * u64::from(cores),
            Arrangement::Shared(_) => per_partition,
        }
    }

    /// Builds the platform this candidate proposes.
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] — an expected outcome for oversized
    /// candidates, recorded as "does not place".
    pub fn build(&self, spec: &SearchSpec, cores: u16) -> Result<SystemConfig, ConfigError> {
        let partitions = match self.arrangement {
            Arrangement::Private => CoreId::first(cores)
                .map(|c| PartitionSpec::private(self.sets, self.ways, c))
                .collect(),
            Arrangement::Shared(mode) => vec![PartitionSpec::shared(
                self.sets,
                self.ways,
                CoreId::first(cores).collect(),
                mode,
            )],
        };
        SystemConfigBuilder::new(cores)
            .partitions(partitions)
            .physical_llc(spec.physical)
            .memory(spec.memory.clone())
            .build()
    }
}

/// What the search learned about one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateVerdict {
    /// The candidate.
    pub candidate: Candidate,
    /// Its report label.
    pub label: String,
    /// LLC lines it would consume.
    pub lines_used: u64,
    /// Whether it builds and packs into the physical LLC.
    pub placed: bool,
    /// Whether the taskset is schedulable on it (always `false` when
    /// not placed).
    pub schedulable: bool,
    /// The per-task worst-case response times in task order, for placed
    /// candidates (`None` entries are tasks with no converging response).
    pub response_times: Vec<Option<u64>>,
}

/// The outcome of a search: the winner (if any candidate works) and
/// every verdict in evaluation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The minimal schedulable candidate.
    pub winner: Option<CandidateVerdict>,
    /// All verdicts, cheapest candidate first.
    pub evaluated: Vec<CandidateVerdict>,
}

impl SearchOutcome {
    /// How many candidates were schedulable.
    pub fn schedulable_count(&self) -> usize {
        self.evaluated.iter().filter(|v| v.schedulable).count()
    }
}

/// Enumerates the candidate space of a [`SearchSpec`], cheapest first:
/// sets over the powers of two up to `max_sets`, ways over
/// `1..=max_ways`, each under every declared arrangement, ordered by
/// (lines used, ways, sets, arrangement declaration index).
pub fn candidates(spec: &SearchSpec, cores: u16) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut sets = 1u32;
    loop {
        for ways in 1..=spec.max_ways {
            for &arrangement in &spec.arrangements {
                out.push(Candidate {
                    arrangement,
                    sets,
                    ways,
                });
            }
        }
        match sets.checked_mul(2) {
            Some(next) if next <= spec.max_sets => sets = next,
            _ => break,
        }
    }
    // Stable sort: equal-cost candidates keep (ways, sets, declaration)
    // order, making the winner independent of enumeration details.
    out.sort_by_key(|c| (c.lines_used(cores), c.ways, c.sets));
    out
}

/// Runs the search for `tasks` on an `exec`-parallel sweep of the
/// candidate space.
///
/// # Errors
///
/// [`ExploreError::Config`] if the response-time analysis itself is
/// invalid (e.g. a task naming a core outside the system) — candidate
/// build/pack failures are verdicts, not errors.
pub fn search_partitions(
    spec: &SearchSpec,
    cores: u16,
    tasks: &[predllc_core::analysis::TaskParams],
    exec: &Executor,
) -> Result<SearchOutcome, ExploreError> {
    let space = candidates(spec, cores);
    let evaluated = exec.try_map(
        &space,
        |_, candidate| -> Result<CandidateVerdict, ExploreError> {
            let label = candidate.label(cores);
            let lines_used = candidate.lines_used(cores);
            let unplaced = |candidate: &Candidate| CandidateVerdict {
                candidate: *candidate,
                label: label.clone(),
                lines_used,
                placed: false,
                schedulable: false,
                response_times: Vec::new(),
            };
            let Ok(config) = candidate.build(spec, cores) else {
                return Ok(unplaced(candidate));
            };
            if pack(config.partitions(), spec.physical).is_err() {
                return Ok(unplaced(candidate));
            }
            let results = TaskSetAnalysis::new(&config, tasks.to_vec())
                .analyze()
                .map_err(|source| ExploreError::Config {
                    label: label.clone(),
                    source,
                })?;
            Ok(CandidateVerdict {
                candidate: *candidate,
                label,
                lines_used,
                placed: true,
                schedulable: results.iter().all(|r| r.schedulable),
                response_times: results
                    .iter()
                    .map(|r| r.response_time.map(|c| c.as_u64()))
                    .collect(),
            })
        },
    )?;
    let winner = evaluated.iter().find(|v| v.schedulable).cloned();
    Ok(SearchOutcome { winner, evaluated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_core::analysis::TaskParams;
    use predllc_core::SharingMode;
    use predllc_dram::MemoryConfig;
    use predllc_model::{CacheGeometry, Cycles};

    fn spec(arrangements: Vec<Arrangement>, max_sets: u32, max_ways: u32) -> SearchSpec {
        SearchSpec {
            arrangements,
            max_sets,
            max_ways,
            memory: MemoryConfig::default(),
            physical: CacheGeometry::PAPER_L3,
        }
    }

    fn task(core: u16, period: u64, compute: u64, reqs: u64) -> TaskParams {
        TaskParams {
            name: format!("t{core}"),
            core: CoreId::new(core),
            period: Cycles::new(period),
            deadline: Cycles::new(period),
            compute: Cycles::new(compute),
            llc_requests: reqs,
        }
    }

    #[test]
    fn candidates_enumerate_cheapest_first() {
        let s = spec(
            vec![
                Arrangement::Private,
                Arrangement::Shared(SharingMode::SetSequencer),
            ],
            4,
            2,
        );
        let c = candidates(&s, 2);
        // 3 set values x 2 way values x 2 arrangements.
        assert_eq!(c.len(), 12);
        let costs: Vec<u64> = c.iter().map(|x| x.lines_used(2)).collect();
        let mut sorted = costs.clone();
        sorted.sort_unstable();
        assert_eq!(costs, sorted, "not cheapest-first: {costs:?}");
        // The very cheapest is the shared 1x1 (1 line vs 2 for private).
        assert_eq!(c[0].lines_used(2), 1);
        assert!(matches!(c[0].arrangement, Arrangement::Shared(_)));
    }

    #[test]
    fn search_finds_the_minimal_schedulable_carve() {
        // One 4-core task set that needs the private 250-cycle bound:
        // under SS(·,·,4) the WCL is 5000 — 2000 requests cost 10M > 5M
        // period; private partitions cost 500k and fit easily.
        let s = spec(
            vec![
                Arrangement::Shared(SharingMode::SetSequencer),
                Arrangement::Private,
            ],
            8,
            4,
        );
        let tasks: Vec<TaskParams> = (0..4).map(|c| task(c, 5_000_000, 100_000, 2_000)).collect();
        let outcome = search_partitions(&s, 4, &tasks, &Executor::new(2)).unwrap();
        let winner = outcome
            .winner
            .clone()
            .expect("private candidates are schedulable");
        assert!(matches!(winner.candidate.arrangement, Arrangement::Private));
        // Minimality: the cheapest private carve is 1x1 per core.
        assert_eq!((winner.candidate.sets, winner.candidate.ways), (1, 1));
        assert_eq!(winner.lines_used, 4);
        // Everything cheaper was evaluated and found wanting.
        for v in &outcome.evaluated {
            if v.lines_used < winner.lines_used {
                assert!(!v.schedulable, "{} is cheaper yet schedulable", v.label);
            }
        }
        assert!(outcome.schedulable_count() > 0);
    }

    #[test]
    fn infeasible_tasksets_have_no_winner() {
        let s = spec(vec![Arrangement::Private], 2, 2);
        // Pure compute overload: no cache carve can help.
        let tasks = vec![task(0, 1_000, 2_000, 0)];
        let outcome = search_partitions(&s, 1, &tasks, &Executor::new(1)).unwrap();
        assert!(outcome.winner.is_none());
        assert!(outcome.evaluated.iter().all(|v| !v.schedulable));
        assert!(outcome.evaluated.iter().all(|v| v.placed));
    }

    #[test]
    fn oversized_candidates_are_unplaced_not_errors() {
        // 64-way candidates cannot pack into the 16-way paper LLC.
        let s = spec(vec![Arrangement::Shared(SharingMode::SetSequencer)], 1, 64);
        let tasks = vec![task(0, 1_000_000, 1, 0)];
        let outcome = search_partitions(&s, 1, &tasks, &Executor::new(1)).unwrap();
        let wide = outcome
            .evaluated
            .iter()
            .find(|v| v.candidate.ways == 64)
            .unwrap();
        assert!(!wide.placed && !wide.schedulable);
        // Narrow ones still win.
        assert!(outcome.winner.is_some());
    }

    #[test]
    fn bad_tasks_surface_as_config_errors() {
        let s = spec(vec![Arrangement::Private], 1, 1);
        let tasks = vec![task(5, 1_000, 1, 0)]; // core 5 of a 1-core system
        let err = search_partitions(&s, 1, &tasks, &Executor::new(1)).unwrap_err();
        assert!(matches!(err, ExploreError::Config { .. }));
    }

    #[test]
    fn labels_follow_paper_notation() {
        let c = Candidate {
            arrangement: Arrangement::Shared(SharingMode::BestEffort),
            sets: 4,
            ways: 2,
        };
        assert_eq!(c.label(4), "NSS(4,2,4)");
        let p = Candidate {
            arrangement: Arrangement::Private,
            sets: 4,
            ways: 2,
        };
        assert_eq!(p.label(4), "P(4,2)x4");
    }
}
