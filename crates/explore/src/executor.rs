//! The work-stealing experiment executor: independent jobs scheduled
//! across OS threads with deterministic, declaration-order result
//! assembly.
//!
//! Every job is one unit of work — for an experiment grid, one
//! `(configuration × workload)` point. Workers steal the next unclaimed
//! job from a shared counter the moment they finish their previous one,
//! so a single slow job never serializes a whole row of the grid (the
//! failure mode of parallelizing per-configuration): the longest job
//! bounds the makespan, not the longest row.
//!
//! Determinism: each result is delivered tagged with its job index and
//! assembled into the output slot that index names. As long as the job
//! function is pure (same input → same output), the returned vector is
//! **bit-identical for every thread count**, including 1.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// A pool-sized executor for embarrassingly parallel job lists.
///
/// # Examples
///
/// ```
/// use predllc_explore::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
///
/// // Results are assembled in declaration order whatever the thread
/// // count, so any two executors agree bit for bit.
/// assert_eq!(squares, Executor::new(1).map(&[1u64, 2, 3, 4, 5], |_, &x| x * x));
/// ```
#[derive(Debug, Clone)]
pub struct Executor {
    threads: NonZeroUsize,
}

impl Default for Executor {
    /// An executor over all available cores.
    fn default() -> Self {
        Executor::new(0)
    }
}

impl Executor {
    /// Creates an executor with `threads` workers; `0` means one worker
    /// per available core.
    pub fn new(threads: usize) -> Self {
        let threads = match NonZeroUsize::new(threads) {
            Some(n) => n,
            None => thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        };
        Executor { threads }
    }

    /// The worker count jobs will be spread over.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Runs `job` over every item and returns the results in item order.
    ///
    /// Jobs are claimed one at a time by whichever worker is free
    /// (self-scheduling work stealing), so unequal job costs balance
    /// automatically. `job` receives the item index and the item; it
    /// must be pure for the cross-thread-count determinism guarantee to
    /// hold.
    ///
    /// # Panics
    ///
    /// Propagates a panicking job (the scope joins every worker first).
    pub fn map<T, R, F>(&self, items: &[T], job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.get().min(n);
        if workers <= 1 {
            // Inline fast path: no threads, same declaration order.
            return items.iter().enumerate().map(|(i, t)| job(i, t)).collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let job = &job;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, job(i, &items[i]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // The receive loop ends when every worker has dropped its
            // sender — i.e. all jobs are delivered (or a worker
            // panicked, which the scope re-raises on exit).
            for (i, r) in rx {
                slots[i] = Some(r);
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every claimed job delivers exactly one result"))
            .collect()
    }

    /// Like [`Executor::map`] for fallible jobs: returns all results, or
    /// the **first error in item order** (not completion order), so
    /// error reporting is as deterministic as the results.
    ///
    /// Once some job has failed, jobs at higher indices than the
    /// lowest-failed one are skipped — they cannot affect the outcome,
    /// so a big grid with an early failure does not run to completion
    /// first. Lower-indexed jobs still run: one of them may hold an
    /// even earlier error.
    ///
    /// # Errors
    ///
    /// The lowest-indexed `Err` any job produced.
    pub fn try_map<T, R, E, F>(&self, items: &[T], job: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        // The lowest failed index seen so far (usize::MAX = none yet) —
        // purely an optimization fence; correctness comes from ordered
        // assembly below.
        let min_err = AtomicUsize::new(usize::MAX);
        let results = self.map(items, |i, item| {
            if i > min_err.load(Ordering::Relaxed) {
                return None;
            }
            let r = job(i, item);
            if r.is_err() {
                min_err.fetch_min(i, Ordering::Relaxed);
            }
            Some(r)
        });
        let mut out = Vec::with_capacity(items.len());
        for r in results {
            match r {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => return Err(e),
                // A skipped slot can only sit above a recorded error, so
                // the ordered walk always hits that error first.
                None => unreachable!("job skipped with no lower-indexed error"),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_arrive_in_declaration_order() {
        let items: Vec<u64> = (0..100).collect();
        // Make early jobs the slowest so completion order inverts
        // declaration order under parallelism.
        let out = Executor::new(4).map(&items, |_, &x| {
            std::thread::sleep(std::time::Duration::from_micros(100 - x));
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_one_to_eight_threads() {
        let items: Vec<u64> = (0..57).collect();
        let reference = Executor::new(1).map(&items, |i, &x| (i as u64) * 1000 + x);
        for threads in 2..=8 {
            let got = Executor::new(threads).map(&items, |i, &x| (i as u64) * 1000 + x);
            assert_eq!(got, reference, "thread count {threads} diverged");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let items = vec![(); 500];
        Executor::new(8).map(&items, |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(Executor::new(4).map(&empty, |_, &x| x).is_empty());
        assert_eq!(Executor::new(8).map(&[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::new(3).threads(), 3);
    }

    #[test]
    fn try_map_returns_first_error_in_item_order() {
        let items: Vec<u64> = (0..64).collect();
        // Items 10 and 40 fail; whichever finishes first must not win.
        let err = Executor::new(6)
            .try_map(
                &items,
                |_, &x| {
                    if x == 10 || x == 40 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            )
            .unwrap_err();
        assert_eq!(err, 10);
        let ok = Executor::new(6)
            .try_map(&items, |_, &x| Ok::<_, ()>(x))
            .unwrap();
        assert_eq!(ok, items);
    }

    #[test]
    fn try_map_skips_jobs_past_a_known_error() {
        // Sequentially (1 thread), an error at index 0 makes every later
        // job skippable: exactly one job actually runs.
        let ran = AtomicU64::new(0);
        let items: Vec<u64> = (0..100).collect();
        let err = Executor::new(1)
            .try_map(&items, |i, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    Err("boom")
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(
            ran.load(Ordering::Relaxed),
            1,
            "later jobs were not skipped"
        );
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items = vec![1, 2, 3, 4];
        Executor::new(2).map(&items, |_, &x| {
            if x == 3 {
                panic!("job failed");
            }
            x
        });
    }
}
