//! A minimal JSON value parser for experiment specs.
//!
//! The build runs in network-isolated environments (no serde), and the
//! spec schema is open-ended enough — nested objects, optional blocks,
//! heterogeneous grids — that the fixed-schema decoder style of
//! `predllc_workload::io` would not scale. This parses any JSON document
//! into a [`Json`] tree; the spec layer then walks the tree with typed
//! accessors that produce positioned errors.
//!
//! Integers are kept as exact `u64` where possible (addresses and cycle
//! counts exceed `f64`'s 53-bit mantissa); everything else is `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Renders the value as a compact JSON document that parses back to
    /// an equal value (`parse(v.render()) == v`): object key order is
    /// preserved, strings are escaped, exact integers stay integers, and
    /// floats use the shortest representation that round-trips.
    ///
    /// Non-finite floats have no JSON representation and render as
    /// `null` (they cannot come out of [`parse`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use predllc_explore::json::{parse, Json};
    ///
    /// let doc = parse(r#"{ "b" : [1, 2.5, "x\n"] , "a" : null }"#).unwrap();
    /// assert_eq!(doc.render(), r#"{"b":[1,2.5,"x\n"],"a":null}"#);
    /// assert_eq!(parse(&doc.render()).unwrap(), doc);
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Renders the value as an indented (2-space) JSON document; same
    /// round-trip contract as [`Json::render`].
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (open_sep, item_sep, key_sep) = match indent {
            Some(_) => ("\n", ",\n", ": "),
            None => ("", ",", ":"),
        };
        let pad = |out: &mut String, level: usize| {
            if let Some(width) = indent {
                out.push_str(&" ".repeat(width * level));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) if !v.is_finite() => out.push_str("null"),
            // {:?} is the shortest round-trip form that stays a float on
            // re-parse ("2.0", not "2" — which would come back UInt).
            Json::Float(v) => out.push_str(&format!("{v:?}")),
            Json::Str(s) => out.push_str(&render_string(s)),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                out.push_str(open_sep);
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(item_sep);
                    }
                    pad(out, depth + 1);
                    item.render_into(out, indent, depth + 1);
                }
                out.push_str(open_sep);
                pad(out, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                out.push_str(open_sep);
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(item_sep);
                    }
                    pad(out, depth + 1);
                    out.push_str(&render_string(key));
                    out.push_str(key_sep);
                    value.render_into(out, indent, depth + 1);
                }
                out.push_str(open_sep);
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset of the failure in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth [`parse`] accepts.
///
/// The parser is recursive-descent, so input depth consumes call-stack
/// frames; an adversarial body of brackets (`[[[[…`) would otherwise
/// overflow the 2 MiB default stack of the connection threads that feed
/// this parser in `predllc-serve`. 128 levels is far beyond any real
/// experiment spec while keeping worst-case stack use in the tens of
/// kilobytes.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.
///
/// # Errors
///
/// [`JsonError`] with the failure offset, including for trailing data —
/// and for containers nested deeper than [`MAX_DEPTH`] levels, reported
/// at the offset of the bracket that exceeded the limit.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        buf: input.as_bytes(),
        at: 0,
        depth: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.buf.len() {
        return Err(p.fail("trailing data after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    buf: &'a [u8],
    at: usize,
    /// Current container nesting depth, bounded by [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.at,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.buf.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.buf.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected '{}'", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.buf[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            // Report at the opening bracket (peek already skipped the
            // whitespace in front of it).
            return Err(self.fail(format!("nesting exceeds the maximum depth of {MAX_DEPTH}")));
        }
        self.depth += 1;
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(format!("duplicate key '{key}'")));
            }
            members.push((key, value));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.buf.get(self.at) else {
                return Err(self.fail("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.buf.get(self.at) else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            // from_str_radix tolerates a leading '+',
                            // which JSON does not: require 4 hex digits.
                            let hex = self
                                .buf
                                .get(self.at..self.at + 4)
                                .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("invalid \\u escape"))?;
                            self.at += 4;
                            // Specs are machine-written; surrogate pairs
                            // are not supported, matching the trace codec.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.fail("invalid \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    let start = self.at - 1;
                    let len = utf8_len(b).ok_or_else(|| self.fail("invalid utf-8"))?;
                    let slice = self
                        .buf
                        .get(start..start + len)
                        .ok_or_else(|| self.fail("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.fail("invalid utf-8"))?;
                    out.push_str(s);
                    self.at = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.buf.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while self.buf.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        let mut fractional = false;
        if self.buf.get(self.at) == Some(&b'.') {
            fractional = true;
            self.at += 1;
            while self.buf.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if let Some(b'e' | b'E') = self.buf.get(self.at) {
            fractional = true;
            self.at += 1;
            if let Some(b'+' | b'-') = self.buf.get(self.at) {
                self.at += 1;
            }
            while self.buf.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.buf[start..self.at])
            .map_err(|_| self.fail("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.fail("invalid number"))
    }
}

const fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": [1, 2.5, "x", null, true], "b": {"c": -3}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_f64(), Some(-3.0));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn big_integers_stay_exact() {
        let doc = parse(&format!("{}", u64::MAX)).unwrap();
        assert_eq!(doc.as_u64(), Some(u64::MAX));
        // Fractions and negatives become floats.
        assert_eq!(parse("0.25").unwrap().as_f64(), Some(0.25));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn strings_unescape() {
        let doc = parse(r#""tab\t quote\" uA""#).unwrap();
        assert_eq!(doc.as_str(), Some("tab\t quote\" uA"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        // Sign-prefixed "hex" is not JSON, even though from_str_radix
        // would accept it.
        assert!(parse(r#""\u+041""#).is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        for (input, needle) in [
            ("{", "expected"),
            ("[1,]", "expected a value"),
            (r#"{"a":1,"a":2}"#, "duplicate"),
            ("1 2", "trailing"),
            ("nope", "expected a value"),
        ] {
            let err = parse(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "input {input:?} gave {err:?}, wanted {needle:?}"
            );
            assert!(err.to_string().contains("byte"));
        }
    }

    #[test]
    fn depth_limit_is_a_positioned_error_not_a_stack_overflow() {
        // At the limit: fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        // One past the limit: positioned error at the offending bracket.
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = parse(&over).unwrap_err();
        assert!(err.message.contains("maximum depth"), "{err:?}");
        assert_eq!(err.offset, MAX_DEPTH);
        // Mixed nesting counts objects too.
        let mixed = r#"{"a":"#.repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(parse(&mixed).unwrap_err().message.contains("maximum depth"));
        // The probe that motivated the limit: half a million brackets on
        // a 2 MiB thread stack must return an error, not blow the stack.
        let handle = std::thread::Builder::new()
            .stack_size(2 << 20)
            .spawn(|| {
                let depth = 500_000;
                let doc = "[".repeat(depth) + &"]".repeat(depth);
                parse(&doc).unwrap_err()
            })
            .expect("spawn probe thread");
        let err = handle.join().expect("no stack overflow");
        assert!(err.message.contains("maximum depth"));
        // Depth resets between sibling containers: wide is not deep.
        let wide = format!("[{}]", vec!["[[]]"; 64].join(","));
        assert!(parse(&wide).is_ok());
    }

    /// Deterministic random JSON values for the round-trip property
    /// loop (no proptest in the offline build — same pattern as the
    /// workload crate's property tests).
    fn arbitrary_json(rng: &mut predllc_workload::rng::Rng64, depth: usize) -> Json {
        let pick = if depth >= 3 {
            rng.below(5)
        } else {
            rng.below(7)
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.below(2) == 0),
            2 => Json::UInt(rng.next_u64() >> (rng.below(64) as u32)),
            3 => {
                // A mix of fractions, negatives, huge and tiny floats.
                let mantissa = rng.next_u64() as i64 as f64;
                let scale = [1.0, 0.5, 1e-9, 1e9, 1e300, 1e-300][rng.below(6) as usize];
                let v = mantissa * scale;
                // Overflow to ±inf has no JSON form; the round-trip
                // property only holds for finite values.
                Json::Float(if v.is_finite() { v } else { 0.125 })
            }
            4 => {
                let len = rng.below(12) as usize;
                let mut s = String::new();
                for _ in 0..len {
                    // Bias toward characters that exercise escaping.
                    s.push(match rng.below(8) {
                        0 => '"',
                        1 => '\\',
                        2 => '\n',
                        3 => '\u{1}',
                        4 => 'é',
                        5 => '字',
                        _ => (b'a' + rng.below(26) as u8) as char,
                    });
                }
                Json::Str(s)
            }
            5 => {
                let len = rng.below(4) as usize;
                Json::Array((0..len).map(|_| arbitrary_json(rng, depth + 1)).collect())
            }
            _ => {
                let len = rng.below(4) as usize;
                Json::Object(
                    (0..len)
                        .map(|i| {
                            (
                                format!("k{}{}", i, rng.below(100)),
                                arbitrary_json(rng, depth + 1),
                            )
                        })
                        .collect(),
                )
            }
        }
    }

    #[test]
    fn render_parse_round_trip_property() {
        let mut rng = predllc_workload::rng::Rng64::new(0x5e1f);
        for case in 0..500 {
            let value = arbitrary_json(&mut rng, 0);
            let compact = value.render();
            let reparsed = parse(&compact).unwrap_or_else(|e| {
                panic!("case {case}: render produced invalid json: {e}\n{compact}")
            });
            assert_eq!(
                reparsed, value,
                "case {case}: compact round trip\n{compact}"
            );
            let pretty = value.render_pretty();
            assert_eq!(
                parse(&pretty).unwrap(),
                value,
                "case {case}: pretty round trip\n{pretty}"
            );
        }
    }

    #[test]
    fn render_number_edge_cases() {
        // Exact integers stay integers.
        assert_eq!(Json::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(
            parse(&Json::UInt(u64::MAX).render()).unwrap().as_u64(),
            Some(u64::MAX)
        );
        // Integral floats keep their decimal point so they come back as
        // floats, not integers.
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::Float(-7.0).render(), "-7.0");
        // Shortest-form floats survive.
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX, -0.0] {
            let text = Json::Float(v).render();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(v), "{text}");
        }
        // Non-finite values degrade to null rather than invalid JSON.
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn render_preserves_key_order_and_escapes() {
        let doc =
            parse("{\"zeta\": 1, \"alpha\": {\"tab\\t\": \"\\u0001\"}, \"mid\": []}").unwrap();
        let text = doc.render();
        // Insertion order is preserved, not sorted.
        assert!(text.find("zeta").unwrap() < text.find("alpha").unwrap());
        assert!(text.find("alpha").unwrap() < text.find("mid").unwrap());
        assert!(text.contains("\\t") && text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), doc);
        // Pretty output is indented and ends with a newline.
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\n  \"zeta\""));
        assert!(pretty.ends_with('\n'));
        assert_eq!(render_string("a\"b"), r#""a\"b""#);
    }

    #[test]
    fn type_names_cover_all_variants() {
        for (text, name) in [
            ("null", "null"),
            ("true", "bool"),
            ("1", "number"),
            ("1.5", "number"),
            (r#""s""#, "string"),
            ("[]", "array"),
            ("{}", "object"),
        ] {
            assert_eq!(parse(text).unwrap().type_name(), name);
        }
    }
}
