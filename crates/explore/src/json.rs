//! A minimal JSON value parser for experiment specs.
//!
//! The build runs in network-isolated environments (no serde), and the
//! spec schema is open-ended enough — nested objects, optional blocks,
//! heterogeneous grids — that the fixed-schema decoder style of
//! `predllc_workload::io` would not scale. This parses any JSON document
//! into a [`Json`] tree; the spec layer then walks the tree with typed
//! accessors that produce positioned errors.
//!
//! Integers are kept as exact `u64` where possible (addresses and cycle
//! counts exceed `f64`'s 53-bit mantissa); everything else is `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset of the failure in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// [`JsonError`] with the failure offset, including for trailing data.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        buf: input.as_bytes(),
        at: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.buf.len() {
        return Err(p.fail("trailing data after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.at,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.buf.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.buf.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected '{}'", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.buf[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(members));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(format!("duplicate key '{key}'")));
            }
            members.push((key, value));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.buf.get(self.at) else {
                return Err(self.fail("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.buf.get(self.at) else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            // from_str_radix tolerates a leading '+',
                            // which JSON does not: require 4 hex digits.
                            let hex = self
                                .buf
                                .get(self.at..self.at + 4)
                                .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("invalid \\u escape"))?;
                            self.at += 4;
                            // Specs are machine-written; surrogate pairs
                            // are not supported, matching the trace codec.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.fail("invalid \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    let start = self.at - 1;
                    let len = utf8_len(b).ok_or_else(|| self.fail("invalid utf-8"))?;
                    let slice = self
                        .buf
                        .get(start..start + len)
                        .ok_or_else(|| self.fail("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.fail("invalid utf-8"))?;
                    out.push_str(s);
                    self.at = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.buf.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while self.buf.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        let mut fractional = false;
        if self.buf.get(self.at) == Some(&b'.') {
            fractional = true;
            self.at += 1;
            while self.buf.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if let Some(b'e' | b'E') = self.buf.get(self.at) {
            fractional = true;
            self.at += 1;
            if let Some(b'+' | b'-') = self.buf.get(self.at) {
                self.at += 1;
            }
            while self.buf.get(self.at).is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.buf[start..self.at])
            .map_err(|_| self.fail("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.fail("invalid number"))
    }
}

const fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": [1, 2.5, "x", null, true], "b": {"c": -3}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_f64(), Some(-3.0));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn big_integers_stay_exact() {
        let doc = parse(&format!("{}", u64::MAX)).unwrap();
        assert_eq!(doc.as_u64(), Some(u64::MAX));
        // Fractions and negatives become floats.
        assert_eq!(parse("0.25").unwrap().as_f64(), Some(0.25));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn strings_unescape() {
        let doc = parse(r#""tab\t quote\" uA""#).unwrap();
        assert_eq!(doc.as_str(), Some("tab\t quote\" uA"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        // Sign-prefixed "hex" is not JSON, even though from_str_radix
        // would accept it.
        assert!(parse(r#""\u+041""#).is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        for (input, needle) in [
            ("{", "expected"),
            ("[1,]", "expected a value"),
            (r#"{"a":1,"a":2}"#, "duplicate"),
            ("1 2", "trailing"),
            ("nope", "expected a value"),
        ] {
            let err = parse(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "input {input:?} gave {err:?}, wanted {needle:?}"
            );
            assert!(err.to_string().contains("byte"));
        }
    }

    #[test]
    fn type_names_cover_all_variants() {
        for (text, name) in [
            ("null", "null"),
            ("true", "bool"),
            ("1", "number"),
            ("1.5", "number"),
            (r#""s""#, "string"),
            ("[]", "array"),
            ("{}", "object"),
        ] {
            assert_eq!(parse(text).unwrap().type_name(), name);
        }
    }
}
