//! Running an experiment grid: every `(configuration × workload)` point
//! of an [`ExperimentSpec`], scheduled individually on the [`Executor`].
//!
//! Grid points — not configurations — are the unit of parallelism, so
//! one expensive configuration cannot serialize its whole row. Results
//! come back in declaration order (configuration-major, matching
//! `bench::Sweep`) and are bit-identical for every thread count.
//!
//! Physically identical points are simulated **once**: each point's
//! simulation inputs are fingerprinted
//! ([`point_fingerprint`] — labels and
//! x-axis values excluded) and duplicates reuse the first occurrence's
//! measurements, relabelled per declared point. Simulation is a pure
//! function of those inputs, so the deduped grid is bit-identical to
//! the naive one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use predllc_core::analysis::MemoryAwareWcl;
use predllc_core::SystemConfig;
use predllc_obs::{fields, TraceCtx};
use predllc_workload::Workload;

use crate::executor::Executor;
use crate::hash::point_fingerprint;
use crate::point::{measure, PointError};
use crate::spec::ExperimentSpec;
use crate::ExploreError;

/// The measured outcome of one grid point, percentiles included.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult {
    /// Configuration label.
    pub config: String,
    /// Workload label.
    pub workload: String,
    /// Memory-backend label.
    pub backend: String,
    /// The workload's numeric x-axis value.
    pub x: u64,
    /// LLC requests measured.
    pub requests: u64,
    /// Median request latency (cycles).
    pub p50: u64,
    /// 90th-percentile request latency.
    pub p90: u64,
    /// 99th-percentile request latency.
    pub p99: u64,
    /// 100th percentile of the latency distribution, computed from the
    /// histogram — always identical to [`GridResult::observed_wcl`]
    /// (the `explore` CLI verifies this on every point).
    pub p100: u64,
    /// Worst observed request latency, from the scalar per-core
    /// counters.
    pub observed_wcl: u64,
    /// Exact mean request latency.
    pub mean_latency: f64,
    /// Execution time (makespan), cycles.
    pub execution_time: u64,
    /// The analytical WCL bound, when the analysis covers the
    /// configuration.
    pub analytical_wcl: Option<u64>,
    /// DRAM row-buffer hit rate (0 under fixed-latency backends).
    pub row_hit_rate: f64,
    /// The point's attribution summary, when the spec ran with
    /// attribution on. Never rendered into the classic CSV/JSON rows —
    /// those stay byte-identical either way; see
    /// [`render_attribution_csv`](crate::report::render_attribution_csv).
    pub attribution: Option<crate::attribution::PointAttribution>,
}

/// The deduped shard plan of a spec's grid: which declared points
/// exist, which are physically distinct, and how declared points map
/// onto distinct ones. This is the unit a fleet coordinator shards —
/// only `unique` is ever simulated, locally or remotely, and
/// [`assemble_rows`] expands measurements back to declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridPlan {
    /// Every declared `(config_index, workload_index)` point,
    /// configuration-major declaration order.
    pub points: Vec<(usize, usize)>,
    /// The physically distinct points, each at its first occurrence.
    pub unique: Vec<(usize, usize)>,
    /// `assignment[i]` names `points[i]`'s slot in `unique`.
    pub assignment: Vec<usize>,
}

/// Plans the grid of `spec`: declared points in configuration-major
/// declaration order, with physically identical points (by
/// [`point_fingerprint`] — labels and x-axis values excluded) collapsed
/// onto their first occurrence.
pub fn plan_grid(spec: &ExperimentSpec) -> GridPlan {
    let points: Vec<(usize, usize)> = (0..spec.configs.len())
        .flat_map(|ci| (0..spec.workloads.len()).map(move |wi| (ci, wi)))
        .collect();
    let mut unique: Vec<(usize, usize)> = Vec::with_capacity(points.len());
    let mut assignment: Vec<usize> = Vec::with_capacity(points.len());
    let mut seen: std::collections::HashMap<crate::hash::Fingerprint, usize> =
        std::collections::HashMap::new();
    for &(ci, wi) in &points {
        let fp = point_fingerprint(
            spec.cores,
            &spec.configs[ci],
            &spec.workloads[wi],
            spec.attribution,
        );
        let slot = *seen.entry(fp).or_insert_with(|| {
            unique.push((ci, wi));
            unique.len() - 1
        });
        assignment.push(slot);
    }
    GridPlan {
        points,
        unique,
        assignment,
    }
}

/// How many physically distinct grid points `spec` will simulate —
/// exactly the number of jobs [`run_grid_observed`] schedules, and the
/// denominator of its progress fraction.
pub fn unique_point_count(spec: &ExperimentSpec) -> usize {
    plan_grid(spec).unique.len()
}

/// Builds and validates every configuration column of `spec` up front:
/// the platform plus its analytical WCL bound (when the analysis covers
/// the configuration), indexed like `spec.configs`.
///
/// # Errors
///
/// [`ExploreError::Config`] naming the first failing column.
pub fn build_platforms(
    spec: &ExperimentSpec,
) -> Result<Vec<(SystemConfig, Option<u64>)>, ExploreError> {
    let mut platforms: Vec<(SystemConfig, Option<u64>)> = Vec::with_capacity(spec.configs.len());
    for c in &spec.configs {
        let config = c
            .build(spec.cores)
            .map_err(|source| ExploreError::Config {
                label: c.label.clone(),
                source,
            })?
            .with_attribution(spec.attribution);
        let analytical = MemoryAwareWcl::from_config(&config)
            .ok()
            .and_then(|w| w.bound())
            .map(|b| b.as_u64());
        platforms.push((config, analytical));
    }
    Ok(platforms)
}

/// Expands per-unique-point measurements back to declaration order,
/// relabelling reused measurements with each declared point's own
/// labels — the merge-on-coordinator step of a sharded run, and the
/// tail of every in-process run. `measured` is indexed like
/// `plan.unique`.
pub fn assemble_rows(
    spec: &ExperimentSpec,
    plan: &GridPlan,
    measured: &[GridResult],
) -> Vec<GridResult> {
    plan.points
        .iter()
        .zip(&plan.assignment)
        .map(|(&(ci, wi), &slot)| {
            let mut row = measured[slot].clone();
            row.config = spec.configs[ci].label.clone();
            row.workload = spec.workloads[wi].label.clone();
            row.x = spec.workloads[wi].x;
            row
        })
        .collect()
}

/// A deduped grid run: the declaration-order rows plus how much
/// simulation work actually happened.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRun {
    /// One result per declared grid point, declaration order.
    pub rows: Vec<GridResult>,
    /// Physically distinct points simulated (≤ `total_points`).
    pub unique_points: usize,
    /// Declared grid points (`configs × workloads`).
    pub total_points: usize,
}

/// Runs every grid point of `spec` on `exec`.
///
/// Convenience wrapper over [`run_grid_observed`] with no progress
/// observer; returns only the rows.
///
/// # Errors
///
/// Same as [`run_grid_observed`].
pub fn run_grid(spec: &ExperimentSpec, exec: &Executor) -> Result<Vec<GridResult>, ExploreError> {
    Ok(run_grid_observed(spec, exec, &|_, _| {})?.rows)
}

/// Runs every grid point of `spec` on `exec`, reporting progress.
///
/// Each point builds its simulator from the validated per-configuration
/// platform and streams the workload; nothing is shared between points,
/// so results are pure functions of the spec and therefore identical
/// across thread counts. Points with identical simulation inputs
/// (platform + workload; labels excluded) are simulated **once** and
/// the measurements reused — declaration order and per-point labels in
/// the returned rows are unaffected.
///
/// `observe(done, unique_total)` is called after each unique point
/// completes (from worker threads, possibly concurrently) — the hook
/// job-progress reporting hangs off.
///
/// # Errors
///
/// [`ExploreError::Config`] for a configuration that fails to build
/// (reported before any simulation starts), or [`ExploreError::Sim`]
/// for the first failing unique grid point in declaration order.
pub fn run_grid_observed(
    spec: &ExperimentSpec,
    exec: &Executor,
    observe: &(dyn Fn(usize, usize) + Sync),
) -> Result<GridRun, ExploreError> {
    run_grid_traced(spec, exec, observe, None)
}

/// Like [`run_grid_observed`], recording one `explore.point` span per
/// unique grid point under `ctx` (when given): the span's
/// `queue_wait_ns` field is the wall-clock delay between the grid
/// starting and a worker claiming the point, and its duration is the
/// point's compute time. Tracing reads the clock and nothing else —
/// the rows are bit-identical with or without it.
///
/// # Errors
///
/// Same as [`run_grid_observed`].
pub fn run_grid_traced(
    spec: &ExperimentSpec,
    exec: &Executor,
    observe: &(dyn Fn(usize, usize) + Sync),
    ctx: Option<TraceCtx<'_>>,
) -> Result<GridRun, ExploreError> {
    // Build and validate every platform and workload once, up front.
    let platforms = build_platforms(spec)?;
    let workloads: Vec<Box<dyn Workload>> = spec
        .workloads
        .iter()
        .map(|w| w.spec.build(spec.cores))
        .collect();

    // Configuration-major declaration order, one job per point — then
    // collapse physically identical points onto their first occurrence.
    let plan = plan_grid(spec);

    let done = AtomicUsize::new(0);
    let unique_total = plan.unique.len();
    let grid_start = Instant::now();
    let measured = exec.try_map(
        &plan.unique,
        |i, &(ci, wi)| -> Result<GridResult, ExploreError> {
            let (config, analytical) = &platforms[ci];
            let entry = &spec.workloads[wi];
            // Queue wait: grid start to a worker claiming this point.
            // The span stays open across the measurement, so its
            // duration is the point's compute time.
            let queue_wait = grid_start.elapsed();
            let mut span = ctx.map(|c| {
                let mut s = c.span(
                    "explore.point",
                    fields(&[
                        ("point", (i as u64).into()),
                        ("config", spec.configs[ci].label.clone().into()),
                        ("workload", entry.label.clone().into()),
                    ]),
                );
                s.field(
                    "queue_wait_ns",
                    u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX),
                );
                s
            });
            let result = measure(config, &workloads[wi])
                .map_err(|e| match e {
                    PointError::Config(source) => ExploreError::Config {
                        label: spec.configs[ci].label.clone(),
                        source,
                    },
                    PointError::Sim(source) => ExploreError::Sim {
                        config: spec.configs[ci].label.clone(),
                        workload: entry.label.clone(),
                        source,
                    },
                })?
                .to_grid_result(
                    &spec.configs[ci].label,
                    &entry.label,
                    &config.memory().label(),
                    entry.x,
                    *analytical,
                );
            // Dropping the guard stamps the span's compute duration.
            drop(span.take());
            observe(done.fetch_add(1, Ordering::Relaxed) + 1, unique_total);
            Ok(result)
        },
    )?;

    // Expand back to declaration order, relabelling reused measurements
    // with each declared point's own labels.
    let total_points = plan.points.len();
    Ok(GridRun {
        rows: assemble_rows(spec, &plan, &measured),
        unique_points: unique_total,
        total_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    const SPEC: &str = r#"{
        "name": "grid-test",
        "cores": 2,
        "configs": [
            {"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
            {"partition": {"kind": "private", "sets": 4, "ways": 2},
             "memory": {"kind": "banked", "banks": 8}}
        ],
        "workloads": [
            {"kind": "uniform", "range_bytes": 2048, "ops": 120, "seed": 3,
             "write_fraction": 0.25},
            {"kind": "stride", "range_bytes": 2048, "stride": 64, "ops": 120}
        ]
    }"#;

    #[test]
    fn grid_runs_in_declaration_order_with_consistent_percentiles() {
        let spec = ExperimentSpec::parse(SPEC).unwrap();
        let rows = run_grid(&spec, &Executor::new(2)).unwrap();
        assert_eq!(rows.len(), 4);
        let order: Vec<(&str, &str)> = rows
            .iter()
            .map(|r| (r.config.as_str(), r.workload.as_str()))
            .collect();
        assert_eq!(
            order,
            [
                ("SS(1,4)", "uniform/2048B"),
                ("SS(1,4)", "stride/2048B"),
                ("P(4,2)", "uniform/2048B"),
                ("P(4,2)", "stride/2048B"),
            ]
        );
        for r in &rows {
            assert!(
                r.requests > 0,
                "{}/{} measured nothing",
                r.config,
                r.workload
            );
            // The ordering invariant of a latency distribution, and the
            // exactness contract: the histogram's p100 is the scalar max.
            assert!(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.p100);
            assert_eq!(r.p100, r.observed_wcl);
            if let Some(bound) = r.analytical_wcl {
                assert!(r.observed_wcl <= bound);
            }
        }
        // The banked configuration reports its backend and row hits.
        assert_eq!(rows[2].backend, "banked(1x8,interleaved)");
        assert!(rows[2].row_hit_rate >= 0.0);
        assert_eq!(rows[0].backend, "fixed(30)");
    }

    #[test]
    fn attribution_rides_along_without_changing_rows() {
        let off = ExperimentSpec::parse(SPEC).unwrap();
        let on_text = SPEC.replacen(
            "\"name\": \"grid-test\",",
            "\"name\": \"grid-test\", \"attribution\": true,",
            1,
        );
        let on = ExperimentSpec::parse(&on_text).unwrap();
        let rows_off = run_grid(&off, &Executor::new(2)).unwrap();
        let rows_on = run_grid(&on, &Executor::new(2)).unwrap();
        // The classic artifacts are byte-identical with attribution on.
        assert_eq!(
            crate::report::render_csv(&rows_on),
            crate::report::render_csv(&rows_off)
        );
        assert_eq!(
            crate::report::render_json("g", 2, None, &rows_on, None),
            crate::report::render_json("g", 2, None, &rows_off, None)
        );
        for (a, b) in rows_on.iter().zip(&rows_off) {
            assert!(b.attribution.is_none());
            let attr = a.attribution.as_ref().expect("attribution was on");
            // The witness is the row's observed WCL, exactly.
            let witness = attr.witness.as_ref().expect("requests completed");
            assert_eq!(witness.latency.as_u64(), a.observed_wcl);
            // Everything but the attribution matches field for field.
            let mut stripped = a.clone();
            stripped.attribution = None;
            assert_eq!(&stripped, b);
        }
    }

    #[test]
    fn grids_are_bit_identical_across_thread_counts() {
        let spec = ExperimentSpec::parse(SPEC).unwrap();
        let reference = run_grid(&spec, &Executor::new(1)).unwrap();
        for threads in [2, 4, 8] {
            let got = run_grid(&spec, &Executor::new(threads)).unwrap();
            assert_eq!(got, reference, "{threads} threads diverged");
        }
    }

    #[test]
    fn duplicated_axes_simulate_each_unique_point_once() {
        // Two configuration columns and two workload rows are pairwise
        // physically identical (labels differ): a 4x4 declared grid with
        // only 1 unique point per (partitioning, workload) pair = 4.
        let spec = ExperimentSpec::parse(
            r#"{
            "name": "dup", "cores": 2,
            "configs": [
                {"label": "A", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
                {"label": "A-again", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
                {"partition": {"kind": "private", "sets": 4, "ways": 2}}
            ],
            "workloads": [
                {"kind": "uniform", "range_bytes": 2048, "ops": 80, "seed": 3},
                {"label": "twin", "x": 7, "kind": "uniform", "range_bytes": 2048, "ops": 80, "seed": 3}
            ]
        }"#,
        )
        .unwrap();
        let ran = AtomicUsize::new(0);
        let run = run_grid_observed(&spec, &Executor::new(2), &|_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        // 3 configs x 2 workloads declared, but only 2 distinct
        // platforms x 1 distinct workload actually simulate.
        assert_eq!(run.total_points, 6);
        assert_eq!(run.unique_points, 2);
        // The standalone counter agrees with the run's actual dedup.
        assert_eq!(unique_point_count(&spec), 2);
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        assert_eq!(run.rows.len(), 6);
        // Declaration order and declared labels are preserved...
        let order: Vec<(&str, &str, u64)> = run
            .rows
            .iter()
            .map(|r| (r.config.as_str(), r.workload.as_str(), r.x))
            .collect();
        assert_eq!(
            order,
            [
                ("A", "uniform/2048B", 2048),
                ("A", "twin", 7),
                ("A-again", "uniform/2048B", 2048),
                ("A-again", "twin", 7),
                ("P(4,2)", "uniform/2048B", 2048),
                ("P(4,2)", "twin", 7),
            ]
        );
        // ...and reused measurements are bit-identical to their source.
        for i in [1, 2, 3] {
            assert_eq!(run.rows[i].observed_wcl, run.rows[0].observed_wcl);
            assert_eq!(run.rows[i].execution_time, run.rows[0].execution_time);
            assert_eq!(run.rows[i].p50, run.rows[0].p50);
        }
        // The private column really is a different point, not a reused
        // measurement of the shared one.
        assert_ne!(run.rows[4].analytical_wcl, run.rows[0].analytical_wcl);
        assert_ne!(run.rows[4].config, run.rows[0].config);
    }

    #[test]
    fn deduped_grid_matches_the_naive_grid() {
        // The dedup must be invisible in the output: compare against a
        // spec with the duplicates removed, row by row.
        let dup = ExperimentSpec::parse(
            r#"{
            "name": "dup", "cores": 2,
            "configs": [
                {"label": "A", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
                {"label": "B", "partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}}
            ],
            "workloads": [{"kind": "stride", "range_bytes": 2048, "stride": 64, "ops": 100}]
        }"#,
        )
        .unwrap();
        let rows = run_grid(&dup, &Executor::new(2)).unwrap();
        assert_eq!(rows.len(), 2);
        let a = &rows[0];
        let b = &rows[1];
        assert_eq!(a.config, "A");
        assert_eq!(b.config, "B");
        assert_eq!(
            (a.requests, a.p50, a.p90, a.p99, a.p100, a.execution_time),
            (b.requests, b.p50, b.p90, b.p99, b.p100, b.execution_time)
        );
        // Progress reporting saw every unique completion exactly once.
        let calls = std::sync::Mutex::new(Vec::new());
        let run = run_grid_observed(&dup, &Executor::new(1), &|done, total| {
            calls.lock().unwrap().push((done, total));
        })
        .unwrap();
        assert_eq!(run.unique_points, 1);
        assert_eq!(*calls.lock().unwrap(), vec![(1, 1)]);
    }

    #[test]
    fn config_errors_name_the_failing_column() {
        let bad = r#"{
            "name": "bad", "cores": 2,
            "configs": [{"label": "huge",
                         "partition": {"kind": "private", "sets": 32, "ways": 16}}],
            "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 10}]
        }"#;
        let spec = ExperimentSpec::parse(bad).unwrap();
        match run_grid(&spec, &Executor::new(1)).unwrap_err() {
            ExploreError::Config { label, .. } => assert_eq!(label, "huge"),
            other => panic!("expected Config, got {other:?}"),
        }
    }
}
