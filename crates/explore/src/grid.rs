//! Running an experiment grid: every `(configuration × workload)` point
//! of an [`ExperimentSpec`], scheduled individually on the [`Executor`].
//!
//! Grid points — not configurations — are the unit of parallelism, so
//! one expensive configuration cannot serialize its whole row. Results
//! come back in declaration order (configuration-major, matching
//! `bench::Sweep`) and are bit-identical for every thread count.

use predllc_core::analysis::MemoryAwareWcl;
use predllc_core::{Simulator, SystemConfig};
use predllc_workload::Workload;

use crate::executor::Executor;
use crate::spec::ExperimentSpec;
use crate::ExploreError;

/// The measured outcome of one grid point, percentiles included.
#[derive(Debug, Clone, PartialEq)]
pub struct GridResult {
    /// Configuration label.
    pub config: String,
    /// Workload label.
    pub workload: String,
    /// Memory-backend label.
    pub backend: String,
    /// The workload's numeric x-axis value.
    pub x: u64,
    /// LLC requests measured.
    pub requests: u64,
    /// Median request latency (cycles).
    pub p50: u64,
    /// 90th-percentile request latency.
    pub p90: u64,
    /// 99th-percentile request latency.
    pub p99: u64,
    /// 100th percentile of the latency distribution, computed from the
    /// histogram — always identical to [`GridResult::observed_wcl`]
    /// (the `explore` CLI verifies this on every point).
    pub p100: u64,
    /// Worst observed request latency, from the scalar per-core
    /// counters.
    pub observed_wcl: u64,
    /// Exact mean request latency.
    pub mean_latency: f64,
    /// Execution time (makespan), cycles.
    pub execution_time: u64,
    /// The analytical WCL bound, when the analysis covers the
    /// configuration.
    pub analytical_wcl: Option<u64>,
    /// DRAM row-buffer hit rate (0 under fixed-latency backends).
    pub row_hit_rate: f64,
}

/// Runs every grid point of `spec` on `exec`.
///
/// Each point builds its simulator from the validated per-configuration
/// platform and streams the workload; nothing is shared between points,
/// so results are pure functions of the spec and therefore identical
/// across thread counts.
///
/// # Errors
///
/// [`ExploreError::Config`] for a configuration that fails to build
/// (reported before any simulation starts), or [`ExploreError::Sim`]
/// for the first failing grid point in declaration order.
pub fn run_grid(spec: &ExperimentSpec, exec: &Executor) -> Result<Vec<GridResult>, ExploreError> {
    // Build and validate every platform and workload once, up front.
    let mut platforms: Vec<(SystemConfig, Option<u64>)> = Vec::with_capacity(spec.configs.len());
    for c in &spec.configs {
        let config = c.build(spec.cores).map_err(|source| ExploreError::Config {
            label: c.label.clone(),
            source,
        })?;
        let analytical = MemoryAwareWcl::from_config(&config)
            .ok()
            .and_then(|w| w.bound())
            .map(|b| b.as_u64());
        platforms.push((config, analytical));
    }
    let workloads: Vec<Box<dyn Workload>> = spec
        .workloads
        .iter()
        .map(|w| w.spec.build(spec.cores))
        .collect();

    // Configuration-major declaration order, one job per point.
    let points: Vec<(usize, usize)> = (0..spec.configs.len())
        .flat_map(|ci| (0..spec.workloads.len()).map(move |wi| (ci, wi)))
        .collect();
    exec.try_map(&points, |_, &(ci, wi)| {
        let (config, analytical) = &platforms[ci];
        let entry = &spec.workloads[wi];
        let sim = Simulator::new(config.clone()).map_err(|source| ExploreError::Config {
            label: spec.configs[ci].label.clone(),
            source,
        })?;
        let report = sim
            .run(&workloads[wi])
            .map_err(|source| ExploreError::Sim {
                config: spec.configs[ci].label.clone(),
                workload: entry.label.clone(),
                source,
            })?;
        let latencies = report.latency_histogram();
        Ok(GridResult {
            config: spec.configs[ci].label.clone(),
            workload: entry.label.clone(),
            backend: config.memory().label(),
            x: entry.x,
            requests: latencies.count(),
            p50: latencies.percentile(50.0).as_u64(),
            p90: latencies.percentile(90.0).as_u64(),
            p99: latencies.percentile(99.0).as_u64(),
            p100: latencies.percentile(100.0).as_u64(),
            observed_wcl: report.max_request_latency().as_u64(),
            mean_latency: latencies.mean(),
            execution_time: report.execution_time().as_u64(),
            analytical_wcl: *analytical,
            row_hit_rate: report.stats.dram_row_hit_rate(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    const SPEC: &str = r#"{
        "name": "grid-test",
        "cores": 2,
        "configs": [
            {"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
            {"partition": {"kind": "private", "sets": 4, "ways": 2},
             "memory": {"kind": "banked", "banks": 8}}
        ],
        "workloads": [
            {"kind": "uniform", "range_bytes": 2048, "ops": 120, "seed": 3,
             "write_fraction": 0.25},
            {"kind": "stride", "range_bytes": 2048, "stride": 64, "ops": 120}
        ]
    }"#;

    #[test]
    fn grid_runs_in_declaration_order_with_consistent_percentiles() {
        let spec = ExperimentSpec::parse(SPEC).unwrap();
        let rows = run_grid(&spec, &Executor::new(2)).unwrap();
        assert_eq!(rows.len(), 4);
        let order: Vec<(&str, &str)> = rows
            .iter()
            .map(|r| (r.config.as_str(), r.workload.as_str()))
            .collect();
        assert_eq!(
            order,
            [
                ("SS(1,4)", "uniform/2048B"),
                ("SS(1,4)", "stride/2048B"),
                ("P(4,2)", "uniform/2048B"),
                ("P(4,2)", "stride/2048B"),
            ]
        );
        for r in &rows {
            assert!(
                r.requests > 0,
                "{}/{} measured nothing",
                r.config,
                r.workload
            );
            // The ordering invariant of a latency distribution, and the
            // exactness contract: the histogram's p100 is the scalar max.
            assert!(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.p100);
            assert_eq!(r.p100, r.observed_wcl);
            if let Some(bound) = r.analytical_wcl {
                assert!(r.observed_wcl <= bound);
            }
        }
        // The banked configuration reports its backend and row hits.
        assert_eq!(rows[2].backend, "banked(1x8,interleaved)");
        assert!(rows[2].row_hit_rate >= 0.0);
        assert_eq!(rows[0].backend, "fixed(30)");
    }

    #[test]
    fn grids_are_bit_identical_across_thread_counts() {
        let spec = ExperimentSpec::parse(SPEC).unwrap();
        let reference = run_grid(&spec, &Executor::new(1)).unwrap();
        for threads in [2, 4, 8] {
            let got = run_grid(&spec, &Executor::new(threads)).unwrap();
            assert_eq!(got, reference, "{threads} threads diverged");
        }
    }

    #[test]
    fn config_errors_name_the_failing_column() {
        let bad = r#"{
            "name": "bad", "cores": 2,
            "configs": [{"label": "huge",
                         "partition": {"kind": "private", "sets": 32, "ways": 16}}],
            "workloads": [{"kind": "uniform", "range_bytes": 1024, "ops": 10}]
        }"#;
        let spec = ExperimentSpec::parse(bad).unwrap();
        match run_grid(&spec, &Executor::new(1)).unwrap_err() {
            ExploreError::Config { label, .. } => assert_eq!(label, "huge"),
            other => panic!("expected Config, got {other:?}"),
        }
    }
}
