//! `predllc-explore` — design-space exploration for the predictable-LLC
//! platform: turn the WCL analysis, the response-time analysis and the
//! pluggable memory backends into an automated co-design tool.
//!
//! The paper's closing argument is that designers should "judiciously
//! share partitions with a subset of cores, and isolate others"
//! depending on each task's performance and real-time requirements.
//! Doing that by hand means running one configuration at a time and
//! eyeballing a single max-latency scalar. This crate automates the
//! loop:
//!
//! * [`Executor`] — a work-stealing job executor (`std::thread` +
//!   channels, no dependencies) that schedules individual grid points
//!   across all cores with **deterministic declaration-order results**,
//!   bit-identical for every thread count.
//! * [`spec`] — the JSON experiment-spec layer: grids of partition
//!   geometries, sharing modes, TDM schedules, memory backends and
//!   workloads, parsed with positioned errors ([`ExperimentSpec`]).
//! * [`grid`] — runs every `(configuration × workload)` point and
//!   reports full latency distributions (p50/p90/p99/p100 from
//!   [`predllc_core::LatencyHistogram`]), not just the max.
//! * [`search`] — the schedulability-driven partition search: walk the
//!   `sets × ways` space via [`predllc_core::placement::pack`] and
//!   [`predllc_core::analysis::TaskSetAnalysis`] to find the minimal
//!   carve under which a taskset is schedulable.
//! * [`report`] — CSV and JSON renderers (the `BENCH_explore.json`
//!   artifact format).
//!
//! The `explore` binary in `predllc-bench` drives all of this from a
//! spec file.
//!
//! # Examples
//!
//! ```
//! use predllc_explore::{run_spec, Executor, ExperimentSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ExperimentSpec::parse(r#"{
//!     "name": "quick",
//!     "cores": 2,
//!     "configs": [
//!         {"partition": {"kind": "shared", "sets": 1, "ways": 4, "mode": "SS"}},
//!         {"partition": {"kind": "private", "sets": 4, "ways": 2}}
//!     ],
//!     "workloads": [
//!         {"kind": "uniform", "range_bytes": 2048, "ops": 100, "seed": 7}
//!     ],
//!     "tasks": [
//!         {"name": "control", "core": 0, "period": 1000000,
//!          "compute": 100000, "llc_requests": 500},
//!         {"name": "vision", "core": 1, "period": 1000000,
//!          "compute": 100000, "llc_requests": 500}
//!     ],
//!     "search": {"arrangements": ["SS", "private"], "max_sets": 8, "max_ways": 8}
//! }"#)?;
//! let report = run_spec(&spec, &Executor::new(2))?;
//! assert_eq!(report.grid.len(), 2);
//! // Every grid point's p100 is exactly its observed WCL.
//! assert!(report.grid.iter().all(|r| r.p99 <= r.observed_wcl));
//! // The search found a minimal schedulable carve.
//! assert!(report.search.unwrap().winner.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod attribution;
pub mod executor;
pub mod grid;
pub mod hash;
pub mod json;
pub mod point;
pub mod report;
pub mod search;
pub mod spec;

pub use attribution::{PointAttribution, PointGap};
pub use executor::Executor;
pub use grid::{
    assemble_rows, build_platforms, plan_grid, run_grid, run_grid_observed, run_grid_traced,
    unique_point_count, GridPlan, GridResult, GridRun,
};
pub use hash::{canonical_fingerprint, point_fingerprint, Fingerprint, Fnv1a};
pub use point::{measure, PointError, PointMeasurement, PointRequest};
pub use search::{search_partitions, Candidate, CandidateVerdict, SearchOutcome};
pub use spec::{Arrangement, ConfigSpec, ExperimentSpec, SearchSpec, SpecError, WorkloadEntry};

use predllc_core::{ConfigError, SimError};

/// Any failure of a design-space exploration run.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreError {
    /// The spec file was malformed.
    Spec(SpecError),
    /// A declared configuration failed to build.
    Config {
        /// The configuration's label.
        label: String,
        /// The underlying validation failure.
        source: ConfigError,
    },
    /// A grid point failed to simulate.
    Sim {
        /// The configuration's label.
        config: String,
        /// The workload's label.
        workload: String,
        /// The underlying simulation failure.
        source: SimError,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Spec(e) => write!(f, "{e}"),
            ExploreError::Config { label, source } => {
                write!(f, "configuration '{label}' is invalid: {source}")
            }
            ExploreError::Sim {
                config,
                workload,
                source,
            } => write!(f, "grid point '{config}' x '{workload}' failed: {source}"),
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::Spec(e) => Some(e),
            ExploreError::Config { source, .. } => Some(source),
            ExploreError::Sim { source, .. } => Some(source),
        }
    }
}

impl From<SpecError> for ExploreError {
    fn from(e: SpecError) -> Self {
        ExploreError::Spec(e)
    }
}

/// The full outcome of one spec run: the measured grid and, when the
/// spec declares a taskset + search block, the partition search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// One result per grid point, declaration order.
    pub grid: Vec<GridResult>,
    /// The search outcome, when the spec asked for one.
    pub search: Option<SearchOutcome>,
    /// Physically distinct grid points actually simulated (identical
    /// points are simulated once; see [`run_grid_observed`]).
    pub unique_points: usize,
    /// Declared grid points (`configs × workloads`).
    pub total_points: usize,
}

/// Runs an experiment spec end to end: the measurement grid, then the
/// schedulability-driven search (when declared).
///
/// # Errors
///
/// Propagates [`run_grid`] and [`search_partitions`] failures.
pub fn run_spec(spec: &ExperimentSpec, exec: &Executor) -> Result<ExploreReport, ExploreError> {
    run_spec_observed(spec, exec, &|_, _| {})
}

/// Like [`run_spec`], with a grid-progress observer: `observe(done,
/// unique_total)` fires after each unique grid point completes (from
/// worker threads) — the hook a long-running service reports per-job
/// progress through.
///
/// # Errors
///
/// Propagates [`run_grid_observed`] and [`search_partitions`] failures.
pub fn run_spec_observed(
    spec: &ExperimentSpec,
    exec: &Executor,
    observe: &(dyn Fn(usize, usize) + Sync),
) -> Result<ExploreReport, ExploreError> {
    run_spec_traced(spec, exec, observe, None)
}

/// Like [`run_spec_observed`], recording per-point `explore.point`
/// spans (queue wait and compute time) under `ctx` when one is given —
/// see [`run_grid_traced`]. The report is bit-identical with or
/// without tracing.
///
/// # Errors
///
/// Propagates [`run_grid_traced`] and [`search_partitions`] failures.
pub fn run_spec_traced(
    spec: &ExperimentSpec,
    exec: &Executor,
    observe: &(dyn Fn(usize, usize) + Sync),
    ctx: Option<predllc_obs::TraceCtx<'_>>,
) -> Result<ExploreReport, ExploreError> {
    let run = run_grid_traced(spec, exec, observe, ctx)?;
    let search = match &spec.search {
        Some(s) => Some(search_partitions(s, spec.cores, &spec.tasks, exec)?),
        None => None,
    };
    Ok(ExploreReport {
        grid: run.rows,
        search,
        unique_points: run.unique_points,
        total_points: run.total_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<ExploreError>();
        let e = ExploreError::Sim {
            config: "SS".into(),
            workload: "u".into(),
            source: SimError::CoreCountMismatch {
                workload_cores: 1,
                system_cores: 2,
            },
        };
        assert!(e.to_string().contains("SS") && e.to_string().contains("u"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
