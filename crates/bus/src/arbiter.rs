//! The intra-slot arbiter between a core's PRB and PWB.
//!
//! "There is a predictable arbitration such as round-robin between PRB and
//! PWB to choose from a request or a write-back to send on the bus at the
//! beginning of the core's slot" (§3). The paper's worst-case figures
//! (Fig. 4, slot 5) have the core under analysis forced to spend its slot
//! on an eviction write-back instead of collecting its response, so the
//! simulator defaults to [`ArbiterPolicy::WritebackFirst`], the
//! conservative choice that realizes exactly that behaviour; plain
//! round-robin and request-first are provided for ablation.

use std::fmt;

/// What the arbiter granted the bus to this slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusGrant {
    /// Transmit the front entry of the PWB.
    WriteBack,
    /// Transmit (or continue) the PRB request.
    Request,
}

/// The selectable PRB/PWB arbitration policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ArbiterPolicy {
    /// Pending write-backs drain before the request is serviced. This is
    /// the policy the paper's worst-case scenarios exhibit: an inclusive
    /// eviction ack always preempts the core's own response.
    #[default]
    WritebackFirst,
    /// The request goes first whenever one is pending.
    RequestFirst,
    /// Strict alternation whenever both are pending.
    RoundRobin,
}

impl fmt::Display for ArbiterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterPolicy::WritebackFirst => f.write_str("writeback-first"),
            ArbiterPolicy::RequestFirst => f.write_str("request-first"),
            ArbiterPolicy::RoundRobin => f.write_str("round-robin"),
        }
    }
}

/// Per-core arbiter state.
///
/// # Examples
///
/// ```
/// use predllc_bus::{ArbiterPolicy, BusGrant, SlotArbiter};
///
/// let mut arb = SlotArbiter::new(ArbiterPolicy::RoundRobin);
/// // Both pending: alternates starting with the write-back.
/// assert_eq!(arb.choose(true, true), Some(BusGrant::WriteBack));
/// assert_eq!(arb.choose(true, true), Some(BusGrant::Request));
/// assert_eq!(arb.choose(true, true), Some(BusGrant::WriteBack));
/// // Only one side pending: no choice to make.
/// assert_eq!(arb.choose(false, true), Some(BusGrant::Request));
/// assert_eq!(arb.choose(false, false), None);
/// ```
#[derive(Debug, Clone)]
pub struct SlotArbiter {
    policy: ArbiterPolicy,
    /// For round-robin: what was granted last time both were pending.
    last: BusGrant,
}

impl SlotArbiter {
    /// Creates an arbiter with the given policy.
    pub fn new(policy: ArbiterPolicy) -> Self {
        SlotArbiter {
            policy,
            // Round-robin starts with the write-back, matching the
            // conservative default.
            last: BusGrant::Request,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// Chooses what to put on the bus given which buffers are non-empty.
    ///
    /// Returns `None` when the core has nothing to transmit (its slot goes
    /// idle).
    pub fn choose(&mut self, has_writeback: bool, has_request: bool) -> Option<BusGrant> {
        let grant = match (has_writeback, has_request) {
            (false, false) => return None,
            (true, false) => BusGrant::WriteBack,
            (false, true) => BusGrant::Request,
            (true, true) => match self.policy {
                ArbiterPolicy::WritebackFirst => BusGrant::WriteBack,
                ArbiterPolicy::RequestFirst => BusGrant::Request,
                ArbiterPolicy::RoundRobin => match self.last {
                    BusGrant::WriteBack => BusGrant::Request,
                    BusGrant::Request => BusGrant::WriteBack,
                },
            },
        };
        if has_writeback && has_request {
            self.last = grant;
        }
        Some(grant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writeback_first_always_prefers_writeback() {
        let mut arb = SlotArbiter::new(ArbiterPolicy::WritebackFirst);
        for _ in 0..4 {
            assert_eq!(arb.choose(true, true), Some(BusGrant::WriteBack));
        }
        assert_eq!(arb.choose(false, true), Some(BusGrant::Request));
    }

    #[test]
    fn request_first_always_prefers_request() {
        let mut arb = SlotArbiter::new(ArbiterPolicy::RequestFirst);
        for _ in 0..4 {
            assert_eq!(arb.choose(true, true), Some(BusGrant::Request));
        }
        assert_eq!(arb.choose(true, false), Some(BusGrant::WriteBack));
    }

    #[test]
    fn round_robin_alternates_only_under_contention() {
        let mut arb = SlotArbiter::new(ArbiterPolicy::RoundRobin);
        assert_eq!(arb.choose(true, true), Some(BusGrant::WriteBack));
        // Uncontended grants do not flip the round-robin state.
        assert_eq!(arb.choose(true, false), Some(BusGrant::WriteBack));
        assert_eq!(arb.choose(true, true), Some(BusGrant::Request));
        assert_eq!(arb.choose(true, true), Some(BusGrant::WriteBack));
    }

    #[test]
    fn idle_slot_returns_none() {
        let mut arb = SlotArbiter::new(ArbiterPolicy::default());
        assert_eq!(arb.choose(false, false), None);
    }

    #[test]
    fn default_policy_is_writeback_first() {
        assert_eq!(ArbiterPolicy::default(), ArbiterPolicy::WritebackFirst);
    }

    #[test]
    fn display_names() {
        assert_eq!(ArbiterPolicy::WritebackFirst.to_string(), "writeback-first");
        assert_eq!(ArbiterPolicy::RequestFirst.to_string(), "request-first");
        assert_eq!(ArbiterPolicy::RoundRobin.to_string(), "round-robin");
    }
}
