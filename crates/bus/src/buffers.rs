//! Per-core pending-request (PRB) and pending-write-back (PWB) buffers.
//!
//! The system model (§3) buffers a core's single outstanding request in a
//! *pending request buffer* and its write-backs in a *pending write-back
//! buffer*; a predictable arbitration between the two picks what goes on
//! the bus at the start of the core's slot (see [`crate::arbiter`]).

use std::collections::VecDeque;
use std::fmt;

use predllc_model::{Cycles, LineAddr, MemOp};

/// The single outstanding LLC request of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest {
    /// The memory operation that missed in the private hierarchy.
    pub op: MemOp,
    /// Cycle at which the request entered the PRB (latency measurement
    /// starts here).
    pub issued_at: Cycles,
    /// Whether the request has already been transmitted on the bus at
    /// least once (i.e. the LLC knows about it; for the set sequencer this
    /// is the broadcast that fixes queue order).
    pub broadcast: bool,
}

/// Why a write-back is queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WbKind {
    /// The LLC evicted a line this core caches privately; the core must
    /// evict it from L1/L2 and acknowledge over the bus (with data if
    /// dirty). This is the `Evict l → WB l` pattern of Figs. 2–4.
    BackInvalAck,
    /// The core's own L2 evicted a dirty line on refill; the data must be
    /// written back to the (still-valid) LLC copy.
    CapacityEviction,
}

/// One queued write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteBack {
    /// The line being written back / acknowledged.
    pub line: LineAddr,
    /// Whether the private copy was dirty (the transaction carries data).
    pub dirty: bool,
    /// Why the write-back exists.
    pub kind: WbKind,
    /// Cycle at which it was enqueued.
    pub enqueued_at: Cycles,
}

/// The pending request buffer: capacity one, per the one-outstanding-
/// request system model.
///
/// # Examples
///
/// ```
/// use predllc_bus::Prb;
/// use predllc_model::{Address, Cycles, MemOp};
///
/// let mut prb = Prb::new();
/// assert!(prb.is_empty());
/// prb.insert(MemOp::read(Address::new(0x40)), Cycles::new(10));
/// assert!(prb.peek().is_some());
/// let done = prb.take().unwrap();
/// assert_eq!(done.issued_at, Cycles::new(10));
/// assert!(prb.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Prb {
    entry: Option<PendingRequest>,
}

impl Prb {
    /// Creates an empty PRB.
    pub fn new() -> Self {
        Prb::default()
    }

    /// Whether no request is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entry.is_none()
    }

    /// Inserts the core's next request.
    ///
    /// # Panics
    ///
    /// Panics if a request is already outstanding — the system model
    /// allows at most one, and the core model must not violate it.
    pub fn insert(&mut self, op: MemOp, now: Cycles) {
        assert!(
            self.entry.is_none(),
            "core model violated the one-outstanding-request rule"
        );
        self.entry = Some(PendingRequest {
            op,
            issued_at: now,
            broadcast: false,
        });
    }

    /// The outstanding request, if any.
    pub fn peek(&self) -> Option<&PendingRequest> {
        self.entry.as_ref()
    }

    /// Marks the outstanding request as broadcast on the bus.
    pub fn mark_broadcast(&mut self) {
        if let Some(e) = &mut self.entry {
            e.broadcast = true;
        }
    }

    /// Removes and returns the outstanding request (on LLC response).
    pub fn take(&mut self) -> Option<PendingRequest> {
        self.entry.take()
    }
}

/// The pending write-back buffer: a FIFO of write-backs awaiting bus
/// slots.
///
/// The paper bounds its occupancy analytically (at most `n−1` pending
/// back-invalidation acks, Corollary 4.5's proof); structurally it is
/// unbounded and [`Pwb::max_depth`] lets tests check the analytical bound
/// actually holds in simulation.
#[derive(Debug, Default, Clone)]
pub struct Pwb {
    queue: VecDeque<WriteBack>,
    max_depth: usize,
}

impl Pwb {
    /// Creates an empty PWB.
    pub fn new() -> Self {
        Pwb::default()
    }

    /// Whether no write-back is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending write-backs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// The deepest the buffer has ever been.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Enqueues a write-back.
    pub fn push(&mut self, wb: WriteBack) {
        self.queue.push_back(wb);
        self.max_depth = self.max_depth.max(self.queue.len());
    }

    /// The write-back that would go on the bus next.
    pub fn peek(&self) -> Option<&WriteBack> {
        self.queue.front()
    }

    /// Dequeues the front write-back (it was transmitted).
    pub fn pop(&mut self) -> Option<WriteBack> {
        self.queue.pop_front()
    }

    /// Whether a write-back for `line` is queued.
    pub fn contains_line(&self, line: LineAddr) -> bool {
        self.queue.iter().any(|w| w.line == line)
    }
}

impl fmt::Display for WbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WbKind::BackInvalAck => f.write_str("back-invalidation ack"),
            WbKind::CapacityEviction => f.write_str("capacity eviction"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predllc_model::Address;

    fn wb(line: u64) -> WriteBack {
        WriteBack {
            line: LineAddr::new(line),
            dirty: true,
            kind: WbKind::BackInvalAck,
            enqueued_at: Cycles::ZERO,
        }
    }

    #[test]
    fn prb_lifecycle() {
        let mut prb = Prb::new();
        assert!(prb.is_empty());
        assert!(prb.take().is_none());
        prb.insert(MemOp::read(Address::new(0)), Cycles::new(5));
        assert!(!prb.is_empty());
        assert!(!prb.peek().unwrap().broadcast);
        prb.mark_broadcast();
        assert!(prb.peek().unwrap().broadcast);
        let r = prb.take().unwrap();
        assert_eq!(r.issued_at, Cycles::new(5));
        assert!(prb.is_empty());
    }

    #[test]
    #[should_panic(expected = "one-outstanding-request")]
    fn prb_rejects_second_outstanding_request() {
        let mut prb = Prb::new();
        prb.insert(MemOp::read(Address::new(0)), Cycles::ZERO);
        prb.insert(MemOp::read(Address::new(64)), Cycles::ZERO);
    }

    #[test]
    fn pwb_is_fifo() {
        let mut pwb = Pwb::new();
        pwb.push(wb(1));
        pwb.push(wb(2));
        pwb.push(wb(3));
        assert_eq!(pwb.len(), 3);
        assert_eq!(pwb.pop().unwrap().line, LineAddr::new(1));
        assert_eq!(pwb.pop().unwrap().line, LineAddr::new(2));
        assert_eq!(pwb.pop().unwrap().line, LineAddr::new(3));
        assert!(pwb.pop().is_none());
    }

    #[test]
    fn pwb_tracks_max_depth() {
        let mut pwb = Pwb::new();
        pwb.push(wb(1));
        pwb.push(wb(2));
        pwb.pop();
        pwb.push(wb(3));
        assert_eq!(pwb.max_depth(), 2);
    }

    #[test]
    fn pwb_contains_line() {
        let mut pwb = Pwb::new();
        pwb.push(wb(7));
        assert!(pwb.contains_line(LineAddr::new(7)));
        assert!(!pwb.contains_line(LineAddr::new(8)));
    }

    #[test]
    fn wb_kind_display() {
        assert_eq!(WbKind::BackInvalAck.to_string(), "back-invalidation ack");
        assert_eq!(WbKind::CapacityEviction.to_string(), "capacity eviction");
    }
}
