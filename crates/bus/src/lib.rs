//! The shared TDM bus substrate: schedules, the 1S-TDM restriction, slot
//! *distance* (Definition 4.2 of the paper), per-core pending-request and
//! pending-write-back buffers, and the intra-slot arbiter between them.
//!
//! The paper's system model (§3) puts a time-division-multiplexed bus
//! between the private L2 caches and the shared LLC: equally sized slots,
//! each owned by one core; the LLC only answers a core within that core's
//! slot. §4.2 then restricts schedules to **1S-TDM** — exactly one slot per
//! core per period — because anything looser lets another core re-occupy a
//! freed LLC entry before the core under analysis gets back on the bus,
//! making the WCL unbounded (§4.1).
//!
//! # Examples
//!
//! ```
//! use predllc_bus::TdmSchedule;
//! use predllc_model::CoreId;
//!
//! # fn main() -> Result<(), predllc_bus::ScheduleError> {
//! let s = TdmSchedule::one_slot(4); // {c0, c1, c2, c3}
//! assert!(s.is_one_slot());
//! // Fig. 3 of the paper: with schedule {cua, c2, c3, c4},
//! // d_{c3}^{cua} = 2 and d_{c4}^{cua} = 1.
//! assert_eq!(s.distance(CoreId::new(2), CoreId::new(0))?, 2);
//! assert_eq!(s.distance(CoreId::new(3), CoreId::new(0))?, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod buffers;
pub mod schedule;

pub use arbiter::{ArbiterPolicy, BusGrant, SlotArbiter};
pub use buffers::{PendingRequest, Prb, Pwb, WbKind, WriteBack};
pub use schedule::{ScheduleError, TdmSchedule};
