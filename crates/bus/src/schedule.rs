//! TDM schedules, the 1S-TDM restriction, and slot distance.

use std::error::Error;
use std::fmt;

use predllc_model::CoreId;

/// Errors raised while constructing or querying a [`TdmSchedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The slot list was empty.
    Empty,
    /// A core never appears in the schedule, so it could never issue a
    /// request and any analysis involving it is meaningless.
    CoreWithoutSlot {
        /// The absent core.
        core: CoreId,
    },
    /// A distance query (Definition 4.2) was made on a schedule that is
    /// not 1S-TDM; distance is only well-defined when each core has
    /// exactly one slot per period.
    NotOneSlot,
    /// A query referenced a core outside the schedule.
    UnknownCore {
        /// The unknown core.
        core: CoreId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Empty => write!(f, "schedule must contain at least one slot"),
            ScheduleError::CoreWithoutSlot { core } => {
                write!(f, "core {core} below the schedule's maximum has no slot")
            }
            ScheduleError::NotOneSlot => {
                write!(f, "distance is only defined for 1S-TDM schedules")
            }
            ScheduleError::UnknownCore { core } => {
                write!(f, "core {core} does not appear in the schedule")
            }
        }
    }
}

impl Error for ScheduleError {}

/// A time-division-multiplexing bus schedule: the cyclic list of slot
/// owners within one period.
///
/// Slots are equally sized (the width lives in the simulator
/// configuration, not here); global slot `k` is owned by
/// `slots[k mod period]`.
///
/// # Examples
///
/// ```
/// use predllc_bus::TdmSchedule;
/// use predllc_model::CoreId;
///
/// # fn main() -> Result<(), predllc_bus::ScheduleError> {
/// // The unbounded-WCL scenario of Fig. 2: cua has one slot, ci two.
/// let cua = CoreId::new(0);
/// let ci = CoreId::new(1);
/// let s = TdmSchedule::new(vec![cua, ci, ci])?;
/// assert!(!s.is_one_slot());
/// assert_eq!(s.owner(0), cua);
/// assert_eq!(s.owner(5), ci); // slot 5 = index 2 of period 3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TdmSchedule {
    slots: Vec<CoreId>,
    num_cores: u16,
}

impl TdmSchedule {
    /// Creates a schedule from an explicit slot-owner list.
    ///
    /// Cores are identified densely: the schedule covers cores
    /// `c0 ..= c_max` where `c_max` is the largest index appearing in
    /// `slots`, and every one of those cores must own at least one slot.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Empty`] for an empty list;
    /// [`ScheduleError::CoreWithoutSlot`] if some core below the maximum
    /// never appears.
    pub fn new(slots: Vec<CoreId>) -> Result<Self, ScheduleError> {
        if slots.is_empty() {
            return Err(ScheduleError::Empty);
        }
        let num_cores = slots.iter().map(|c| c.index()).max().unwrap() + 1;
        for core in CoreId::first(num_cores) {
            if !slots.contains(&core) {
                return Err(ScheduleError::CoreWithoutSlot { core });
            }
        }
        Ok(TdmSchedule { slots, num_cores })
    }

    /// Creates the canonical 1S-TDM schedule `{c0, c1, …, c(n-1)}`.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn one_slot(num_cores: u16) -> Self {
        assert!(num_cores > 0, "a schedule needs at least one core");
        TdmSchedule {
            slots: CoreId::first(num_cores).collect(),
            num_cores,
        }
    }

    /// The period length in slots.
    pub fn period(&self) -> u64 {
        self.slots.len() as u64
    }

    /// The number of cores covered (`max index + 1`).
    pub fn num_cores(&self) -> u16 {
        self.num_cores
    }

    /// The slot owners within one period.
    pub fn slot_owners(&self) -> &[CoreId] {
        &self.slots
    }

    /// The owner of global slot `global_slot`.
    pub fn owner(&self, global_slot: u64) -> CoreId {
        self.slots[(global_slot % self.period()) as usize]
    }

    /// Whether this is a 1S-TDM schedule (Definition 4.1): exactly one
    /// slot per core per period.
    pub fn is_one_slot(&self) -> bool {
        self.period() == u64::from(self.num_cores)
    }

    /// How many slots `core` owns per period.
    pub fn slots_per_period(&self, core: CoreId) -> u64 {
        self.slots.iter().filter(|&&c| c == core).count() as u64
    }

    /// The first global slot owned by `core` at or after `from`.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::UnknownCore`] if `core` owns no slot.
    pub fn next_slot_of(&self, core: CoreId, from: u64) -> Result<u64, ScheduleError> {
        if self.slots_per_period(core) == 0 {
            return Err(ScheduleError::UnknownCore { core });
        }
        let period = self.period();
        for k in from..from + period {
            if self.owner(k) == core {
                return Ok(k);
            }
        }
        unreachable!("core owns a slot, so one period must contain it")
    }

    /// The *distance* `d_{ci}^{cj}` of Definition 4.2: the number of slots
    /// between the start of `ci`'s slot and the start of `cj`'s next slot.
    ///
    /// By Corollary 4.3 the result is in `1..=N`; in particular the
    /// distance of a core to itself is `N` (a full period).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::NotOneSlot`] if the schedule is not 1S-TDM (the
    /// definition presumes a unique slot per core);
    /// [`ScheduleError::UnknownCore`] for out-of-range cores.
    ///
    /// # Examples
    ///
    /// ```
    /// use predllc_bus::TdmSchedule;
    /// use predllc_model::CoreId;
    ///
    /// # fn main() -> Result<(), predllc_bus::ScheduleError> {
    /// let s = TdmSchedule::one_slot(4);
    /// assert_eq!(s.distance(CoreId::new(0), CoreId::new(0))?, 4);
    /// assert_eq!(s.distance(CoreId::new(0), CoreId::new(1))?, 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn distance(&self, ci: CoreId, cj: CoreId) -> Result<u64, ScheduleError> {
        if !self.is_one_slot() {
            return Err(ScheduleError::NotOneSlot);
        }
        let pos = |c: CoreId| -> Result<u64, ScheduleError> {
            self.slots
                .iter()
                .position(|&x| x == c)
                .map(|p| p as u64)
                .ok_or(ScheduleError::UnknownCore { core: c })
        };
        let pi = pos(ci)?;
        let pj = pos(cj)?;
        let n = self.period();
        // Slots strictly after ci's up to and including cj's next slot.
        Ok(((pj + n - pi - 1) % n) + 1)
    }
}

impl fmt::Display for TdmSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(TdmSchedule::new(vec![]), Err(ScheduleError::Empty));
    }

    #[test]
    fn rejects_missing_core() {
        // c1 never appears but c2 does.
        assert_eq!(
            TdmSchedule::new(vec![c(0), c(2)]),
            Err(ScheduleError::CoreWithoutSlot { core: c(1) })
        );
    }

    #[test]
    fn one_slot_schedule_properties() {
        let s = TdmSchedule::one_slot(4);
        assert!(s.is_one_slot());
        assert_eq!(s.period(), 4);
        assert_eq!(s.num_cores(), 4);
        for i in 0..4 {
            assert_eq!(s.owner(i), c(i as u16));
            assert_eq!(s.owner(i + 4), c(i as u16));
            assert_eq!(s.slots_per_period(c(i as u16)), 1);
        }
    }

    #[test]
    fn fig2_schedule_is_not_one_slot() {
        let s = TdmSchedule::new(vec![c(0), c(1), c(1)]).unwrap();
        assert!(!s.is_one_slot());
        assert_eq!(s.slots_per_period(c(1)), 2);
        assert_eq!(s.distance(c(0), c(1)), Err(ScheduleError::NotOneSlot));
    }

    #[test]
    fn distance_matches_paper_examples() {
        // Schedule {cua, c2, c3, c4} with cua = c0.
        let s = TdmSchedule::one_slot(4);
        assert_eq!(s.distance(c(2), c(0)).unwrap(), 2); // d_{c3}^{cua} = 2
        assert_eq!(s.distance(c(3), c(0)).unwrap(), 1); // d_{c4}^{cua} = 1
        assert_eq!(s.distance(c(1), c(0)).unwrap(), 3); // d_{c2}^{cua} = 3
        assert_eq!(s.distance(c(0), c(0)).unwrap(), 4); // self = N
    }

    #[test]
    fn distance_within_corollary_bounds() {
        // Corollary 4.3: 1 <= d <= N for every pair.
        for n in 1..=8u16 {
            let s = TdmSchedule::one_slot(n);
            for i in 0..n {
                for j in 0..n {
                    let d = s.distance(c(i), c(j)).unwrap();
                    assert!(d >= 1 && d <= u64::from(n), "d(c{i},c{j}) = {d}");
                }
            }
        }
    }

    #[test]
    fn next_slot_of_walks_forward() {
        let s = TdmSchedule::new(vec![c(0), c(1), c(1), c(2)]).unwrap();
        assert_eq!(s.next_slot_of(c(1), 0).unwrap(), 1);
        assert_eq!(s.next_slot_of(c(1), 2).unwrap(), 2);
        assert_eq!(s.next_slot_of(c(1), 3).unwrap(), 5);
        assert_eq!(s.next_slot_of(c(0), 1).unwrap(), 4);
        assert_eq!(
            s.next_slot_of(c(9), 0),
            Err(ScheduleError::UnknownCore { core: c(9) })
        );
    }

    #[test]
    fn display_lists_slots() {
        let s = TdmSchedule::one_slot(3);
        assert_eq!(s.to_string(), "{c0, c1, c2}");
    }

    #[test]
    fn clone_roundtrip() {
        let s = TdmSchedule::new(vec![c(0), c(1), c(1)]).unwrap();
        let back = s.clone();
        assert_eq!(back, s);
    }
}
