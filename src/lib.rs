//! # predllc — predictable sharing of last-level cache partitions
//!
//! A Rust reproduction of Wu & Patel, *"Predictable Sharing of Last-level
//! Cache Partitions for Multi-core Safety-critical Systems"* (DAC 2022,
//! arXiv:2204.01679): a cycle-accurate multicore cache-hierarchy
//! simulator with TDM bus arbitration, shared/private LLC partitions, the
//! **set sequencer** micro-architecture, and the paper's worst-case
//! latency (WCL) analysis.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] ([`predllc_model`]) — core vocabulary: addresses, cycles,
//!   cache geometry, memory operations.
//! * [`cache`] ([`predllc_cache`]) — set-associative caches, replacement
//!   policies, private L1/L2 hierarchies.
//! * [`dram`] ([`predllc_dram`]) — pluggable memory backends behind the
//!   LLC: the default fixed-latency model, the bank/row-buffer-aware
//!   [`BankedDram`], and the [`WorstCase`] adapter, all behind
//!   [`MemoryBackend`].
//! * [`bus`] ([`predllc_bus`]) — TDM schedules, 1S-TDM, slot distance,
//!   PRB/PWB buffers.
//! * [`sim`] ([`predllc_core`]) — partitions, the set sequencer, the LLC
//!   controller, the simulator and the WCL analysis.
//! * [`workload`] ([`predllc_workload`]) — the streaming [`Workload`]
//!   trait and deterministic synthetic generators.
//! * [`explore`] ([`predllc_explore`]) — design-space exploration: the
//!   work-stealing experiment [`Executor`], JSON experiment specs, and
//!   the schedulability-driven partition search.
//! * [`obs`] ([`predllc_obs`]) — zero-dependency observability: a
//!   metric registry with Prometheus text exposition (validator *and*
//!   parser), structured tracing with 128-bit trace IDs, log-bucketed
//!   wall-clock timing histograms, ring-buffered metric time-series
//!   with declarative SLO alerting, and a self-contained HTML
//!   dashboard, threaded through every layer above.
//! * [`serve`] ([`predllc_serve`]) — the multi-tenant experiment
//!   service: an HTTP/1.1 API over `std::net` with a content-addressed
//!   result cache, so the same spec is never simulated twice; with
//!   monitoring on it also serves `/v1/metrics/history`, `/v1/alerts`
//!   and `/dashboard`.
//! * [`fleet`] ([`predllc_fleet`]) — the distributed experiment fleet:
//!   a coordinator shards grid points across worker services with a
//!   shared point-level cache and worker-loss recovery, producing
//!   results bit-identical to an in-process run — and scrapes every
//!   worker's metrics into one fleet-wide registry.
//!
//! # Quickstart
//!
//! Workloads are **streams**: the engine pulls per-core operations on
//! demand through the [`Workload`] trait, so memory use is independent
//! of trace length. [`Simulator::run`] borrows the simulator, so one
//! validated configuration serves any number of runs.
//!
//! ```
//! use predllc::analysis::WclParams;
//! use predllc::{SharingMode, Simulator, SystemConfig, Workload};
//! use predllc::workload_gen::UniformGen;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four cores share one 8-set x 4-way LLC partition, ordered by the
//! // set sequencer, on a 1S-TDM bus.
//! let config = SystemConfig::shared_partition(8, 4, 4, SharingMode::SetSequencer)?;
//!
//! // The analytical WCL bound for any request (Theorem 4.8).
//! let bound = WclParams::from_config(&config)?.wcl_set_sequencer();
//!
//! // Simulate the paper's uniform-random workload, streamed — no trace
//! // is ever materialized — and compare.
//! let workload = UniformGen::new(8192, 500).with_cores(4);
//! let sim = Simulator::new(config)?;
//! let report = sim.run(&workload)?;
//! assert!(report.max_request_latency() <= bound);
//!
//! // The simulator is reusable: replay the same workload, or stream a
//! // different one, without rebuilding anything.
//! let replay = sim.run(&workload)?;
//! assert_eq!(replay.stats, report.stats);
//!
//! // Materialized traces remain first-class (`Vec<Vec<MemOp>>` and
//! // `TraceSet` implement `Workload`), and are byte-identical to their
//! // streamed twins by construction.
//! let twin = sim.run(workload.materialize())?;
//! assert_eq!(twin.stats, report.stats);
//! println!("observed {} <= bound {}", report.max_request_latency(), bound);
//! # Ok(())
//! # }
//! ```
//!
//! ## Choosing a memory backend
//!
//! The LLC sits in front of a pluggable [`MemoryBackend`]. The default
//! is the paper's fixed 30-cycle DRAM; [`MemoryConfig`] selects the
//! bank/row-buffer-aware model (interleaved or bank-privatized per-core
//! mapping) or pins every access to the analytical worst case. The
//! builder rejects any backend whose worst-case access latency does not
//! fit the TDM slot — the system model's slot-budget invariant.
//!
//! ```
//! use predllc::{MemoryConfig, SharingMode, Simulator, SystemConfig, PartitionSpec, CoreId};
//! use predllc::workload_gen::UniformGen;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystemConfig::builder(4)
//!     .partitions(vec![PartitionSpec::shared(
//!         8, 4,
//!         (0..4).map(CoreId::new).collect(),
//!         SharingMode::SetSequencer,
//!     )])
//!     .memory(MemoryConfig::bank_private()) // banked DRAM, per-core bank slices
//!     .build()?;
//! let report = Simulator::new(config)?.run(&UniformGen::new(8192, 500).with_cores(4))?;
//! assert!(report.stats.dram_row_hits + report.stats.dram_row_empties
//!     + report.stats.dram_row_conflicts > 0);
//! # Ok(())
//! # }
//! ```
//!
//! Migrating from the consuming `Simulator::run(self, Vec<Vec<MemOp>>)`
//! API? See `MIGRATION.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use predllc_bus as bus;
pub use predllc_cache as cache;
pub use predllc_core as sim;
pub use predllc_dram as dram;
pub use predllc_explore as explore;
pub use predllc_fleet as fleet;
pub use predllc_model as model;
pub use predllc_obs as obs;
pub use predllc_serve as serve;
pub use predllc_workload as workload;

pub use predllc_bus::{ArbiterPolicy, ScheduleError, TdmSchedule};
pub use predllc_cache::ReplacementKind;
pub use predllc_core::analysis;
pub use predllc_core::{
    AttributionReport, Component, ComponentSet, ConfigError, EngineMode, Event, EventKind,
    EventLog, LatencyHistogram, LatencySummary, PartitionMap, PartitionSpec, RunReport,
    SharingMode, SimError, Simulator, SystemConfig, SystemConfigBuilder, WclWitness,
};
pub use predllc_dram::{
    BankMapping, BankedDram, DramTiming, FixedLatency, MemoryBackend, MemoryConfig, RowOutcome,
    WorstCase,
};
pub use predllc_explore::{Executor, ExperimentSpec, ExploreReport, Fingerprint};
pub use predllc_fleet::{Coordinator, CoordinatorConfig, FleetError};
pub use predllc_model::{
    AccessKind, Address, BankId, CacheGeometry, CoreId, Cycles, DramGeometry, LineAddr, MemOp,
    RowAddr, SlotWidth,
};
pub use predllc_serve::{Client, MonitorConfig, Server, ServerConfig, ServerHandle};
pub use predllc_workload::{MultiCore, OpStream, TraceSet, Workload, WorkloadSpec};

/// Re-export of the workload generators module for ergonomic paths in
/// examples (`predllc::workload_gen::UniformGen`).
pub use predllc_workload::gen as workload_gen;
