//! The deployment scenario the paper's introduction motivates: a
//! mixed-criticality consolidation where some tasks need hard, tight
//! latency bounds (own partition) and others can share a partition —
//! trading a looser (but still hard, thanks to the set sequencer) bound
//! for better capacity utilization.
//!
//! The planner enumerates candidate partitionings of the paper's 32-set
//! x 16-way LLC for four tasks, checks each task's WCL requirement
//! against the analysis, and simulates the workload to compare
//! average-case performance of the feasible plans.
//!
//! Run with: `cargo run --release --example partition_tuning`

use predllc::analysis::classify_schedule;
use predllc::workload_gen::{HotColdGen, PointerChaseGen, StrideGen, UniformGen};
use predllc::{CoreId, Cycles, MemOp, PartitionSpec, SharingMode, Simulator, SystemConfig};

/// One task: its workload and its per-request latency requirement.
struct Task {
    name: &'static str,
    /// Hard per-request latency requirement in cycles (ASIL-style).
    wcl_requirement: u64,
    trace: Vec<MemOp>,
}

fn tasks() -> Vec<Task> {
    // Disjoint 16 KiB address ranges per task (base = core * 16 KiB).
    vec![
        Task {
            // Control task: tiny working set, hard 500-cycle requirement
            // — only a private partition satisfies it.
            name: "brake-control",
            wcl_requirement: 500,
            trace: StrideGen::new(0, 2048, 3_000).trace(),
        },
        Task {
            // Sensor fusion: 8 KiB set with a hot kernel.
            name: "sensor-fusion",
            wcl_requirement: 8_000,
            trace: HotColdGen::new(16_384, 8_192, 3_000).with_seed(1).trace(),
        },
        Task {
            // Telemetry: small working set.
            name: "telemetry",
            wcl_requirement: 8_000,
            trace: UniformGen::new(2_048, 3_000)
                .with_seed(2)
                .with_write_fraction(0.2)
                .core_trace(CoreId::new(16)), // base offset 16 * 2048 = 32 KiB
        },
        Task {
            // Logging: a 4 KiB chase, soft requirement. An inclusive
            // 2 KiB private partition caps its effective L2 at half the
            // working set; the shared partition lets it keep everything.
            name: "diagnostics-log",
            wcl_requirement: u64::MAX,
            trace: PointerChaseGen::new(49_152, 4_096, 3_000)
                .with_seed(3)
                .trace(),
        },
    ]
}

/// A candidate partitioning plan.
struct Plan {
    name: &'static str,
    partitions: Vec<PartitionSpec>,
}

fn plans() -> Vec<Plan> {
    let c = CoreId::new;
    vec![
        Plan {
            // Traditional: everyone isolated in a 2 KiB partition (the
            // consolidation budget is 4 of the LLC's 16 ways).
            name: "all-private P(8,4) x4",
            partitions: (0..4).map(|i| PartitionSpec::private(8, 4, c(i))).collect(),
        },
        Plan {
            // The paper's proposal: the hard task keeps a private
            // partition; the other three share the rest via the
            // sequencer.
            name: "private P(8,4) + shared SS(24,4,3)",
            partitions: vec![
                PartitionSpec::private(8, 4, c(0)),
                PartitionSpec::shared(24, 4, vec![c(1), c(2), c(3)], SharingMode::SetSequencer),
            ],
        },
        Plan {
            // Same sharing but best effort: the shared bound balloons
            // past the 8000-cycle requirements.
            name: "private P(8,4) + shared NSS(24,4,3)",
            partitions: vec![
                PartitionSpec::private(8, 4, c(0)),
                PartitionSpec::shared(24, 4, vec![c(1), c(2), c(3)], SharingMode::BestEffort),
            ],
        },
        Plan {
            // Everything shared: even the hard task, whose 500-cycle
            // requirement no shared bound can meet.
            name: "all-shared SS(32,4,4)",
            partitions: vec![PartitionSpec::shared(
                32,
                4,
                (0..4).map(c).collect(),
                SharingMode::SetSequencer,
            )],
        },
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = tasks();
    println!("tasks:");
    for (i, t) in tasks.iter().enumerate() {
        let req = if t.wcl_requirement == u64::MAX {
            "none".to_string()
        } else {
            format!("{} cycles", t.wcl_requirement)
        };
        println!("  c{i} {:<16} requirement: {req}", t.name);
    }

    println!(
        "\n{:<40} {:>10} {:>14} {:>12}",
        "plan", "feasible", "exec (cycles)", "worst obs."
    );
    // One workload, reused verbatim across every candidate plan (the
    // materialized per-task traces are a `Workload` as-is).
    let workload: Vec<Vec<MemOp>> = tasks.iter().map(|t| t.trace.clone()).collect();
    let mut best: Option<(String, Cycles)> = None;
    for plan in plans() {
        let cfg = SystemConfig::builder(4)
            .partitions(plan.partitions.clone())
            .build()?;
        // Feasibility: every task's analytical bound within requirement.
        let mut feasible = true;
        for (i, t) in tasks.iter().enumerate() {
            let bound = classify_schedule(&cfg, CoreId::new(i as u16))?;
            match bound.cycles() {
                Some(b) if b.as_u64() <= t.wcl_requirement => {}
                _ => {
                    feasible = false;
                }
            }
        }
        // Average-case performance of the actual workload.
        let report = Simulator::new(cfg)?.run(&workload)?;
        println!(
            "{:<40} {:>10} {:>14} {:>12}",
            plan.name,
            if feasible { "yes" } else { "NO" },
            report.execution_time().as_u64(),
            report.max_request_latency().as_u64(),
        );
        if feasible {
            let better = best
                .as_ref()
                .is_none_or(|(_, t)| report.execution_time() < *t);
            if better {
                best = Some((plan.name.to_string(), report.execution_time()));
            }
        }
    }
    let (name, t) = best.expect("at least one feasible plan");
    println!("\nrecommended plan: {name} (finishes in {t})");
    if name.contains("SS(24,4,3)") {
        println!(
            "— sharing the non-critical tasks' partitions keeps the hard task's\n\
             450-cycle private bound while using the LLC better than isolation."
        );
    }
    Ok(())
}
