//! Bank-aware DRAM in action: the same streaming workload over the
//! fixed-latency seed model, the banked model with interleaved banks,
//! bank-privatized per-core slices, and the worst-case adapter.
//!
//! Run with: `cargo run --release --example banked_memory`

use predllc::analysis::SlotBudget;
use predllc::workload_gen::StrideGen;
use predllc::{CoreId, MemoryConfig, MultiCore, PartitionSpec, Simulator, SystemConfig};

const CORES: u16 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each core streams its own 64 KiB window, 1 MiB apart — maximal
    // row-buffer locality per core, zero sharing between cores.
    let workload = {
        let mut w = MultiCore::new();
        for core in 0..CORES {
            w = w.core(StrideGen::new(u64::from(core) << 20, 64 << 10, 2_000));
        }
        w
    };

    println!(
        "{:<28} {:>9} {:>9} {:>10} {:>8} {:>8}",
        "backend", "row-hits", "conflicts", "hit-rate", "max-lat", "slack"
    );
    for memory in [
        MemoryConfig::default(),
        MemoryConfig::banked(),
        MemoryConfig::bank_private(),
        MemoryConfig::bank_private().worst_case(),
    ] {
        let config = SystemConfig::builder(CORES)
            .partitions(
                CoreId::first(CORES)
                    .map(|c| PartitionSpec::private(4, 2, c))
                    .collect(),
            )
            .memory(memory.clone())
            .build()?;
        let slack = SlotBudget::from_config(&config).slack();
        let report = Simulator::new(config)?.run(&workload)?;
        println!(
            "{:<28} {:>9} {:>9} {:>9.1}% {:>8} {:>8}",
            memory.label(),
            report.stats.dram_row_hits,
            report.stats.dram_row_conflicts,
            100.0 * report.stats.dram_row_hit_rate(),
            report.stats.max_dram_latency.as_u64(),
            slack.as_u64(),
        );
    }
    println!();
    println!(
        "Interleaved banks destroy per-core row locality under TDM \
         interleaving;\nbank privatization preserves it — same addresses, \
         same LLC, different DRAM."
    );
    Ok(())
}
