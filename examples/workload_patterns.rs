//! Compare how different access patterns behave on the same shared
//! partition: the sharing penalty is not one number, it depends on the
//! workload's locality and write mix.
//!
//! Each pattern is a streaming `Workload` built once and replayed
//! against both sharing modes — same addresses in both runs, no traces
//! materialized.
//!
//! Run with: `cargo run --release --example workload_patterns`

use predllc::workload_gen::{HotColdGen, PointerChaseGen, StrideGen, UniformGen};
use predllc::{CoreId, MultiCore, SharingMode, Simulator, SystemConfig, Workload};

fn report_line(
    name: &str,
    mode: SharingMode,
    sim: &Simulator,
    workload: &dyn Workload,
) -> Result<(), predllc::SimError> {
    let report = sim.run(workload)?;
    let s0 = report.stats.core(CoreId::new(0));
    println!(
        "  {name:<16} {mode}: exec {:>9}, core0 hit-rate {:>5.1}%, LLC {:>4} hits / {:>4} fills, worst {:>5}",
        report.execution_time().as_u64(),
        100.0 * s0.private_hit_rate(),
        s0.llc_hits,
        s0.llc_fills,
        report.max_request_latency().as_u64(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const OPS: usize = 4_000;
    const RANGE: u64 = 16_384; // 16 KiB per core, disjoint

    // One simulator per sharing mode, reused across all four patterns.
    let ss = Simulator::new(SystemConfig::shared_partition(
        16,
        8,
        4,
        SharingMode::SetSequencer,
    )?)?;
    let nss = Simulator::new(SystemConfig::shared_partition(
        16,
        8,
        4,
        SharingMode::BestEffort,
    )?)?;

    // Four cores each run the *same kind* of pattern in disjoint ranges.
    let base = |i: u64| i * RANGE;
    let patterns: Vec<(&str, Box<dyn Workload>)> = vec![
        (
            "uniform",
            Box::new(
                UniformGen::new(RANGE, OPS)
                    .with_write_fraction(0.2)
                    .with_cores(4),
            ),
        ),
        (
            "stride",
            Box::new(
                (0..4)
                    .map(|i| StrideGen::new(base(i), RANGE, OPS))
                    .fold(MultiCore::new(), MultiCore::core),
            ),
        ),
        (
            "pointer-chase",
            Box::new(
                (0..4)
                    .map(|i| PointerChaseGen::new(base(i), RANGE, OPS).with_seed(i))
                    .fold(MultiCore::new(), MultiCore::core),
            ),
        ),
        (
            "hot-cold",
            Box::new(
                (0..4)
                    .map(|i| HotColdGen::new(base(i), RANGE, OPS).with_seed(i))
                    .fold(MultiCore::new(), MultiCore::core),
            ),
        ),
    ];

    println!("4 cores sharing SS/NSS(16,8) — same addresses in both modes:\n");
    for (name, workload) in &patterns {
        report_line(name, SharingMode::SetSequencer, &ss, workload.as_ref())?;
        report_line(name, SharingMode::BestEffort, &nss, workload.as_ref())?;
        println!();
    }
    println!(
        "hot-cold and stride keep their working sets private (high hit rates),\n\
         so sharing costs them almost nothing; pointer-chase misses constantly\n\
         and feels the full contention."
    );
    Ok(())
}
