//! Compare how different access patterns behave on the same shared
//! partition: the sharing penalty is not one number, it depends on the
//! workload's locality and write mix.
//!
//! Run with: `cargo run --release --example workload_patterns`

use predllc::workload_gen::{HotColdGen, PointerChaseGen, StrideGen, UniformGen};
use predllc::{CoreId, MemOp, SharingMode, Simulator, SystemConfig};

fn run(name: &str, mode: SharingMode, traces: Vec<Vec<MemOp>>) -> Result<(), predllc::ConfigError> {
    let cfg = SystemConfig::shared_partition(16, 8, 4, mode)?;
    let report = Simulator::new(cfg)?.run(traces)?;
    let s0 = report.stats.core(CoreId::new(0));
    println!(
        "  {name:<16} {mode}: exec {:>9}, core0 hit-rate {:>5.1}%, LLC {:>4} hits / {:>4} fills, worst {:>5}",
        report.execution_time().as_u64(),
        100.0 * s0.private_hit_rate(),
        s0.llc_hits,
        s0.llc_fills,
        report.max_request_latency().as_u64(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const OPS: usize = 4_000;
    const RANGE: u64 = 16_384; // 16 KiB per core, disjoint

    // Four cores each run the *same kind* of pattern in disjoint ranges.
    let base = |i: u64| i * RANGE;
    let patterns: Vec<(&str, Vec<Vec<MemOp>>)> = vec![
        (
            "uniform",
            UniformGen::new(RANGE, OPS).with_write_fraction(0.2).traces(4),
        ),
        (
            "stride",
            (0..4).map(|i| StrideGen::new(base(i), RANGE, OPS).trace()).collect(),
        ),
        (
            "pointer-chase",
            (0..4)
                .map(|i| PointerChaseGen::new(base(i), RANGE, OPS).with_seed(i).trace())
                .collect(),
        ),
        (
            "hot-cold",
            (0..4)
                .map(|i| HotColdGen::new(base(i), RANGE, OPS).with_seed(i).trace())
                .collect(),
        ),
    ];

    println!("4 cores sharing SS/NSS(16,8) — same addresses in both modes:\n");
    for (name, traces) in patterns {
        run(name, SharingMode::SetSequencer, traces.clone())?;
        run(name, SharingMode::BestEffort, traces)?;
        println!();
    }
    println!(
        "hot-cold and stride keep their working sets private (high hit rates),\n\
         so sharing costs them almost nothing; pointer-chase misses constantly\n\
         and feels the full contention."
    );
    Ok(())
}
