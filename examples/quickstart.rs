//! Quickstart: configure a shared LLC partition, run the paper's
//! synthetic workload, and compare the observed worst-case latency
//! against the analytical bound.
//!
//! Run with: `cargo run --release --example quickstart`

use predllc::analysis::WclParams;
use predllc::workload_gen::UniformGen;
use predllc::{SharingMode, Simulator, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's platform: four cores, 50-cycle TDM slots, private
    // L1/L2 per core, one shared 8-set x 4-way LLC partition ordered by
    // the set sequencer.
    let config = SystemConfig::shared_partition(8, 4, 4, SharingMode::SetSequencer)?;

    // The WCL analysis gives a hard bound before we simulate anything.
    let params = WclParams::from_config(&config)?;
    println!("platform: 4 cores sharing SS(8,4) on a 1S-TDM bus");
    println!(
        "analytical WCL (Theorem 4.8): {} ({} slots)",
        params.wcl_set_sequencer(),
        params.wcl_set_sequencer_slots()
    );
    println!(
        "for comparison, without the sequencer (Theorem 4.7): {}",
        params.wcl_one_slot_tdm()
    );

    // The paper's workload: uniform random line-aligned addresses in
    // disjoint 8 KiB ranges per core, 20% writes — streamed straight
    // into the engine, no traces materialized.
    let workload = UniformGen::new(8192, 2_000)
        .with_write_fraction(0.2)
        .with_seed(42)
        .with_cores(config.num_cores());

    let sim = Simulator::new(config)?;
    let report = sim.run(&workload)?;

    println!("\nsimulation finished in {}", report.execution_time());
    println!(
        "observed worst request latency: {}",
        report.max_request_latency()
    );
    assert!(
        report.max_request_latency() <= params.wcl_set_sequencer(),
        "the observed WCL must respect the analytical bound"
    );
    println!("bound respected: observed <= analytical");

    for (i, cs) in report.stats.cores.iter().enumerate() {
        println!(
            "core {i}: {} ops, {:.1}% private hits, {} LLC hits, {} fills, \
             mean request latency {:.0} cycles",
            cs.ops_completed,
            100.0 * cs.private_hit_rate(),
            cs.llc_hits,
            cs.llc_fills,
            cs.mean_request_latency()
        );
    }
    println!(
        "bus utilization: {:.1}%  |  sequencer pressure: {} sets, depth {}",
        100.0 * report.stats.bus_utilization(),
        report.stats.max_sequencer_sets,
        report.stats.max_sequencer_depth
    );
    Ok(())
}
