//! Design-space exploration: run a configs × workloads grid with full
//! latency percentiles, then let the schedulability-driven search pick
//! the minimal LLC carve for a taskset — the paper's "isolate or
//! share?" decision, automated.
//!
//! Run with `cargo run --release --example design_space`.

use predllc::analysis::TaskParams;
use predllc::explore::report::{render_csv, render_search};
use predllc::explore::{run_spec, Executor, ExperimentSpec};
use predllc::{CoreId, Cycles};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An experiment spec is plain JSON — normally a file next to your
    // plots, inlined here. Four platforms x three workload families,
    // plus a taskset and a search block.
    let spec = ExperimentSpec::parse(
        r#"{
        "name": "design-space-demo",
        "cores": 4,
        "configs": [
            {"label": "SS(1,16,4)",
             "partition": {"kind": "shared", "sets": 1, "ways": 16, "mode": "SS"}},
            {"label": "NSS(1,16,4)",
             "partition": {"kind": "shared", "sets": 1, "ways": 16, "mode": "NSS"}},
            {"label": "P(8,4)",
             "partition": {"kind": "private", "sets": 8, "ways": 4}},
            {"label": "P(8,4)/banked",
             "partition": {"kind": "private", "sets": 8, "ways": 4},
             "memory": {"kind": "banked", "banks": 8, "mapping": "bank-private"}}
        ],
        "workloads": [
            {"kind": "uniform", "range_bytes": 8192, "ops": 1000, "seed": 7,
             "write_fraction": 0.2},
            {"kind": "stride", "range_bytes": 8192, "stride": 64, "ops": 1000},
            {"kind": "hotcold", "range_bytes": 8192, "ops": 1000, "seed": 11}
        ],
        "tasks": [
            {"name": "control", "core": 0, "period": 1000000,
             "compute": 100000, "llc_requests": 900},
            {"name": "vision", "core": 1, "period": 2000000,
             "compute": 300000, "llc_requests": 1500},
            {"name": "logging", "core": 2, "period": 4000000,
             "compute": 200000, "llc_requests": 2000},
            {"name": "comms", "core": 3, "period": 2000000,
             "compute": 150000, "llc_requests": 1200}
        ],
        "search": {"arrangements": ["SS", "NSS", "private"],
                   "max_sets": 32, "max_ways": 16}
    }"#,
    )?;

    // Grid points are scheduled individually on the work-stealing
    // executor; results are bit-identical for any thread count.
    let exec = Executor::new(0);
    println!(
        "running {} grid points on {} threads...\n",
        spec.grid_len(),
        exec.threads()
    );
    let report = run_spec(&spec, &exec)?;

    // The full-distribution view: p50/p90/p99/p100 per point, where the
    // old API reported only the max.
    print!("{}", render_csv(&report.grid));

    // The co-design answer: the cheapest carve that keeps every task
    // schedulable, and why the cheaper candidates lose.
    let outcome = report.search.expect("the spec declares a search block");
    println!();
    print!("{}", render_search(&outcome));

    // The same verdict is available programmatically, e.g. to feed a
    // follow-up sweep. TaskParams/TaskSetAnalysis remain usable directly
    // for one-off questions:
    let winner = outcome.winner.expect("this taskset is schedulable");
    let config = winner
        .candidate
        .build(spec.search.as_ref().unwrap(), spec.cores)?;
    let one_more_task = TaskParams {
        name: "diagnostics".into(),
        core: CoreId::new(0),
        period: Cycles::new(4_000_000),
        deadline: Cycles::new(4_000_000),
        compute: Cycles::new(50_000),
        llc_requests: 100,
    };
    let mut tasks = spec.tasks.clone();
    tasks.push(one_more_task);
    let still_ok = predllc::analysis::TaskSetAnalysis::new(&config, tasks).is_schedulable()?;
    println!(
        "\nadding a low-priority diagnostics task to {}: {}",
        winner.label,
        if still_ok {
            "still schedulable"
        } else {
            "no longer schedulable"
        }
    );
    Ok(())
}
