//! Explore the WCL analysis without running a single simulation:
//! Theorems 4.7 and 4.8 across parameter sweeps, plus schedule
//! classification (bounded / unbounded / not covered).
//!
//! Run with: `cargo run --release --example wcl_analysis`

use predllc::analysis::{classify_schedule, WclParams};
use predllc::{CoreId, PartitionSpec, SharingMode, SlotWidth, SystemConfig, TdmSchedule};

fn params(n: u16, ways: u32, partition_lines: u64) -> WclParams {
    WclParams {
        total_cores: n,
        sharers: n,
        ways,
        partition_lines,
        core_capacity_lines: 64,
        slot_width: SlotWidth::PAPER,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== WCL vs sharer count (1-set x 4-way partition, N = n, SW = 50) ==");
    println!(
        "{:>3} {:>16} {:>14} {:>12} {:>8}",
        "n", "NSS (Thm 4.7)", "SS (Thm 4.8)", "P (private)", "NSS/SS"
    );
    for n in 2..=16 {
        let p = params(n, 4, 4);
        println!(
            "{:>3} {:>16} {:>14} {:>12} {:>8.1}",
            n,
            p.wcl_one_slot_tdm().as_u64(),
            p.wcl_set_sequencer().as_u64(),
            p.wcl_private().as_u64(),
            p.improvement_ratio(),
        );
    }

    println!("\n== WCL vs partition size (4 cores, 16 ways): SS is size-independent ==");
    println!(
        "{:>10} {:>16} {:>14}",
        "M (lines)", "NSS (Thm 4.7)", "SS (Thm 4.8)"
    );
    for m in [16u64, 64, 128, 256, 512, 2048] {
        let p = params(4, 16, m);
        println!(
            "{:>10} {:>16} {:>14}",
            m,
            p.wcl_one_slot_tdm().as_u64(),
            p.wcl_set_sequencer().as_u64()
        );
    }
    println!("(NSS saturates once M exceeds the private capacity m_cua = 64: m = min(m_cua, M))");

    println!("\n== Schedule classification ==");
    let cua = CoreId::new(0);
    let shared = |mode| vec![PartitionSpec::shared(1, 2, vec![cua, CoreId::new(1)], mode)];
    let cases: Vec<(&str, SystemConfig)> = vec![
        (
            "1S-TDM {c0, c1}, set sequencer",
            SystemConfig::builder(2)
                .partitions(shared(SharingMode::SetSequencer))
                .build()?,
        ),
        (
            "1S-TDM {c0, c1}, best effort",
            SystemConfig::builder(2)
                .partitions(shared(SharingMode::BestEffort))
                .build()?,
        ),
        (
            "{c0, c1, c1}, best effort (Fig. 2)",
            SystemConfig::builder(2)
                .schedule(TdmSchedule::new(vec![cua, CoreId::new(1), CoreId::new(1)])?)
                .partitions(shared(SharingMode::BestEffort))
                .build()?,
        ),
        (
            "1S-TDM, private partitions",
            SystemConfig::private_partitions(8, 2, 2)?,
        ),
    ];
    for (name, cfg) in cases {
        println!("  {name:<38} -> {:?}", classify_schedule(&cfg, cua)?);
    }

    println!("\n== The headline number ==");
    // The paper's 128-line partition claim presumes the core can cache
    // all of it (m = min(m_cua, M) = 128).
    let p = WclParams {
        core_capacity_lines: 128,
        ..params(4, 16, 128)
    };
    println!(
        "16-way, 128-line shared partition, 4 cores: {} -> {} cycles ({:.0}x lower; paper: 2048x)",
        p.wcl_one_slot_tdm().as_u64(),
        p.wcl_set_sequencer().as_u64(),
        p.improvement_ratio(),
    );
    Ok(())
}
