//! Watch the paper's *distance* metric (Definition 4.2) evolve during a
//! live simulation: Observation 1 (distances drain while the core under
//! analysis waits without write-backs) made visible.
//!
//! Run with: `cargo run --release --example distance_observations`

use predllc::analysis::distance::DistanceTracker;
use predllc::{
    Address, CoreId, EventKind, MemOp, PartitionSpec, SharingMode, Simulator, SystemConfig,
};

fn c(i: u16) -> CoreId {
    CoreId::new(i)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Fig. 3 setting: 4 cores, shared 1-set x 2-way partition, best
    // effort. cua (c0) wants one line; c2 pre-warmed the set dirty; c3
    // keeps stealing freed entries.
    let cfg = SystemConfig::builder(4)
        .partitions(vec![PartitionSpec::shared(
            1,
            2,
            (0..4).map(c).collect(),
            SharingMode::BestEffort,
        )])
        .record_events(true)
        .max_cycles(10_000_000)
        .build()?;
    let spec = cfg.partitions().spec_of(c(0)).clone();
    let schedule = cfg.schedule().clone();

    let write = |l: u64| MemOp::write(Address::new(l * 64));
    let traces = vec![
        vec![MemOp::read(Address::new(0))],
        vec![],
        vec![write(10), write(11)],
        (0..40).map(|i| write(20 + (i % 6))).collect(),
    ];
    let report = Simulator::new(cfg)?.run(traces)?;

    let broadcast = report
        .events
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::RequestBroadcast { core, .. } if core == c(0)))
        .map(|e| e.slot)
        .expect("cua broadcasts");
    let fill = report
        .events
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::Fill { core, .. } if core == c(0)))
        .map(|e| e.slot)
        .expect("cua completes (Observation 2)");

    println!(
        "cua broadcast its request in slot {broadcast}; response in slot {fill} \
         ({} periods of waiting)\n",
        (fill - broadcast) / 4
    );
    println!("distance profile of the contended set (schedule {{c0,c1,c2,c3}}, cua = c0):");
    println!(
        "{:>5} {:>30} {:>7}",
        "slot", "resident lines (line: d)", "total"
    );

    let tracker = DistanceTracker::new(&schedule, &spec, 0, c(0));
    for s in tracker.samples(&report.events) {
        if s.slot > fill + 2 {
            break;
        }
        let desc: Vec<String> = s
            .lines
            .iter()
            .map(|(l, d)| match d {
                Some(d) => format!("{}:d{}", l.as_u64(), d),
                None => format!("{}:-", l.as_u64()),
            })
            .collect();
        let marker = if s.slot == broadcast {
            "  <- cua requests"
        } else if s.slot == fill {
            "  <- cua fills"
        } else {
            ""
        };
        println!(
            "{:>5} {:>30} {:>7}{marker}",
            s.slot,
            desc.join("  "),
            s.total_distance()
        );
    }
    println!(
        "\nWhile cua waits (and writes nothing back), the total distance only\n\
         drains — Observation 1 — until an entry frees with no closer core\n\
         to steal it, and cua's request completes — Observation 2."
    );
    Ok(())
}
