//! Quickstart for the experiment service: start a server on an
//! ephemeral port, submit an experiment spec over HTTP, poll it to
//! completion, fetch the CSV — then submit the same experiment again
//! and watch the content-addressed cache answer without simulating.
//!
//! Run with `cargo run --example serve_quickstart`.

use std::time::Duration;

use predllc::serve::{Client, Format, Server, ServerConfig};

const SPEC: &str = r#"{
    "name": "quickstart",
    "cores": 4,
    "configs": [
        {"partition": {"kind": "shared", "sets": 1, "ways": 16, "mode": "SS"}},
        {"partition": {"kind": "shared", "sets": 1, "ways": 16, "mode": "NSS"}},
        {"partition": {"kind": "private", "sets": 8, "ways": 4}}
    ],
    "workloads": [
        {"kind": "uniform", "range_bytes": 8192, "ops": 500, "seed": 7, "write_fraction": 0.2},
        {"kind": "stride", "range_bytes": 8192, "stride": 64, "ops": 500}
    ]
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bind port 0 for an ephemeral port; `run` serves until `shutdown`.
    let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());
    println!("service listening on http://{}", handle.addr());

    // Submit. The id is the canonical content hash of the spec, so it
    // is the same on every machine and for every formatting of this
    // document.
    let mut client = Client::new(handle.addr());
    let submitted = client.submit(SPEC)?;
    println!(
        "submitted experiment {} ({} unique grid point(s))",
        submitted.id, submitted.points_total
    );

    // Poll to completion (tiny grid: this is quick).
    let status = client.wait_done(&submitted.id, Duration::from_secs(120))?;
    println!(
        "status: {} — {}/{} points",
        status.status, status.points_done, status.points_total
    );

    // Fetch the rendered results: streamed chunk by chunk off the
    // wire, byte-identical to what `run_spec` would produce in-process.
    let csv = client.results(&submitted.id, Format::Csv)?.text()?;
    println!("\n{csv}");

    // Resubmit: a cache hit, answered instantly from the stored bytes.
    let again = client.submit(SPEC)?;
    assert!(again.cached && again.id == submitted.id);
    println!("resubmission was a cache hit (no second simulation)");
    println!(
        "cache hits so far: {}",
        client.metric("predllc_cache_hits")?
    );

    // Graceful shutdown: in-flight work drains before `run` returns.
    handle.shutdown();
    server_thread.join().expect("server thread")?;
    Ok(())
}
