//! The Figure 2 demonstration: under a TDM schedule that gives an
//! interfering core two slots per period, a core sharing the partition
//! can be starved **forever** — its worst-case latency is unbounded.
//! Restricting the schedule to 1S-TDM (one slot per core per period)
//! restores a finite bound, and the set sequencer makes it small.
//!
//! Run with: `cargo run --release --example unbounded_scenario`

use predllc::analysis::{classify_schedule, critical, WclBound};
use predllc::{CoreId, PartitionSpec, SharingMode, Simulator, SystemConfig, TdmSchedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cua = CoreId::new(0);
    let ci = CoreId::new(1);
    let spec = |mode| PartitionSpec::shared(1, 1, vec![cua, ci], mode);

    // --- The unbounded configuration: schedule {cua, ci, ci}. ---
    let schedule = TdmSchedule::new(vec![cua, ci, ci])?;
    println!("schedule {schedule}, shared 1-set x 1-way partition, best effort");

    let build = |cap: u64| -> Result<SystemConfig, predllc::ConfigError> {
        SystemConfig::builder(2)
            .schedule(TdmSchedule::new(vec![cua, ci, ci]).expect("valid"))
            .partitions(vec![spec(SharingMode::BestEffort)])
            .max_cycles(cap)
            .build()
    };

    // The analysis spots the §4.1 witness without simulating.
    match classify_schedule(&build(1)?, cua)? {
        WclBound::Unbounded {
            interferer,
            slots_in_gap,
        } => println!(
            "analysis: UNBOUNDED — {interferer} holds {slots_in_gap} slots \
             between consecutive {cua} slots (the free-then-reoccupy loop of Fig. 2)"
        ),
        other => println!("analysis: {other:?}"),
    }

    // Empirically: however long we let it run, cua never completes.
    println!("\nempirically (cua requests one line; ci ping-pongs the set):");
    for cap in [10_000u64, 100_000, 1_000_000] {
        let cfg = build(cap)?;
        let part = cfg.partitions().spec_of(cua).clone();
        let (t_cua, t_ci) = critical::fig2_traces(&part, 4_000_000);
        let report = Simulator::new(cfg)?.run(vec![t_cua, t_ci])?;
        println!(
            "  cap {:>9} cycles: cua completed {} of 1 ops (timed out: {})",
            cap,
            report.stats.core(cua).ops_completed,
            report.timed_out
        );
        assert_eq!(report.stats.core(cua).ops_completed, 0);
    }

    // --- The fix: 1S-TDM. Same workload, cua completes quickly. ---
    println!("\nwith a 1S-TDM schedule {{cua, ci}} (same partition, same workload):");
    for (mode, name) in [
        (SharingMode::BestEffort, "NSS (Theorem 4.7 bound)"),
        (SharingMode::SetSequencer, "SS  (Theorem 4.8 bound)"),
    ] {
        let cfg = SystemConfig::builder(2)
            .partitions(vec![spec(mode)])
            .max_cycles(10_000_000)
            .build()?;
        let bound = classify_schedule(&cfg, cua)?;
        let part = cfg.partitions().spec_of(cua).clone();
        let (t_cua, t_ci) = critical::fig2_traces(&part, 2_000);
        let report = Simulator::new(cfg)?.run(vec![t_cua, t_ci])?;
        println!(
            "  {name}: cua finished with latency {} (bound {})",
            report.stats.core(cua).max_request_latency,
            bound.cycles().map_or("-".to_string(), |c| c.to_string())
        );
        assert_eq!(report.stats.core(cua).ops_completed, 1);
        if let Some(b) = bound.cycles() {
            assert!(report.stats.core(cua).max_request_latency <= b);
        }
    }
    println!("\n1S-TDM turns starvation into a hard bound; the sequencer shrinks it.");
    Ok(())
}
